//! Property-based tests: every All-to-All variant must implement the
//! same exchange, and Flexible All-to-All must be self-inverse.

use proptest::prelude::*;
use tutel_comm::{
    flex::flex_all_to_all, linear_all_to_all, naive_local_agg_all_to_all, stride_memcpy,
    two_dh_all_to_all, AllToAllAlgo, RankBuffers,
};
use tutel_simgpu::Topology;
use tutel_tensor::Tensor;

/// Random per-rank buffers for an (nnodes × gpn) topology with `chunk`
/// elements per destination.
fn rank_buffers(nnodes: usize, gpn: usize, chunk: usize, seed: u64) -> RankBuffers {
    let n = nnodes * gpn;
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f32 / 10.0
    };
    (0..n)
        .map(|_| (0..n * chunk).map(|_| next()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_dh_equals_linear(
        nnodes in 1usize..5,
        gpn in 1usize..5,
        chunk in 1usize..6,
        seed in any::<u64>(),
    ) {
        let topo = Topology::new(nnodes, gpn);
        let bufs = rank_buffers(nnodes, gpn, chunk, seed);
        prop_assert_eq!(two_dh_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
    }

    #[test]
    fn naive_agg_equals_linear(
        nnodes in 1usize..5,
        gpn in 1usize..5,
        chunk in 1usize..6,
        seed in any::<u64>(),
    ) {
        let topo = Topology::new(nnodes, gpn);
        let bufs = rank_buffers(nnodes, gpn, chunk, seed);
        prop_assert_eq!(naive_local_agg_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
    }

    #[test]
    fn linear_all_to_all_is_involutive(
        n in 1usize..9,
        chunk in 1usize..5,
        seed in any::<u64>(),
    ) {
        let bufs = rank_buffers(1, n, chunk, seed);
        let back = linear_all_to_all(&linear_all_to_all(&bufs));
        prop_assert_eq!(back, bufs);
    }

    #[test]
    fn flex_dispatch_then_combine_roundtrips(
        nnodes in 1usize..4,
        gpn in 1usize..4,
        experts_per_rank in 1usize..3,
        dc in 1usize..4,
        m in 1usize..4,
        seed in any::<u64>(),
    ) {
        let topo = Topology::new(nnodes, gpn);
        let w = topo.world_size();
        let e = experts_per_rank * w;
        let mut sd = seed;
        let ins: Vec<Tensor> = (0..w).map(|_| {
            sd = sd.wrapping_mul(6364136223846793005).wrapping_add(1);
            let data: Vec<f32> = (0..e * dc * m)
                .map(|i| ((sd.wrapping_add(i as u64) % 997) as f32) / 31.0)
                .collect();
            Tensor::from_vec(data, &[e, dc, m]).unwrap()
        }).collect();
        let dispatched = flex_all_to_all(&ins, 1, 0, AllToAllAlgo::TwoDh, &topo).unwrap();
        // Dispatch output shape is W-independent: (ΔE, C, M).
        prop_assert_eq!(dispatched[0].dims(), &[experts_per_rank, w * dc, m]);
        let combined = flex_all_to_all(&dispatched, 0, 1, AllToAllAlgo::Linear, &topo).unwrap();
        prop_assert_eq!(&combined, &ins);
    }

    #[test]
    fn stride_align_unalign_is_identity_permutation(
        row in 1usize..9,
        col in 1usize..9,
        chunk in 1usize..8,
        seed in any::<u64>(),
    ) {
        // 2DH's align (phase 1/3) composed with its unalign (the same
        // transpose with row/col swapped) must be the identity — in
        // particular on *non-uniform* shapes where row ≠ col (a world
        // size not divisible by the local world), where a wrong index
        // formula would still pass square-shape tests.
        let mut state = seed | 1;
        let buf: Vec<f32> = (0..row * col * chunk).map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 4096) as f32 / 16.0
        }).collect();
        let aligned = stride_memcpy(&buf, chunk, row, col);
        let back = stride_memcpy(&aligned, chunk, col, row);
        let same_bits = back.iter().zip(&buf).all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert!(same_bits, "round-trip is not the identity at row={row} col={col} chunk={chunk}");
        // And the forward pass alone is a permutation (no chunk lost).
        let mut before: Vec<u32> = buf.iter().map(|v| v.to_bits()).collect();
        let mut after: Vec<u32> = aligned.iter().map(|v| v.to_bits()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn exchange_conserves_multiset_of_values(
        nnodes in 1usize..4,
        gpn in 1usize..4,
        chunk in 1usize..4,
        seed in any::<u64>(),
    ) {
        let topo = Topology::new(nnodes, gpn);
        let bufs = rank_buffers(nnodes, gpn, chunk, seed);
        let out = two_dh_all_to_all(&bufs, &topo);
        let mut before: Vec<u32> = bufs.iter().flatten().map(|v| v.to_bits()).collect();
        let mut after: Vec<u32> = out.iter().flatten().map(|v| v.to_bits()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }
}
