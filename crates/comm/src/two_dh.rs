//! Two-Dimensional Hierarchical (2DH) All-to-All — Algorithm 3 and
//! Figure 15 of the paper.
//!
//! The linear algorithm sends `n − m` tiny `S/n` messages per GPU over
//! InfiniBand; 2DH first aggregates, inside each node, all chunks that
//! share a remote destination, so only `nnodes − 1` messages of size
//! `S·m/n` cross the fabric. The aggregation is kept cheap by aligning
//! chunks with contiguous stride copies before each exchange.

use tutel_simgpu::Topology;

use crate::{stride_memcpy, RankBuffers};

/// Functional 2DH All-to-All over `topology`.
///
/// Produces exactly the same exchange as [`crate::linear_all_to_all`] (a unit
/// test and a property test assert this), via the four phases of
/// Figure 15:
///
/// 1. stride-align chunks sharing a local destination GPU,
/// 2. intra-node All-to-All of `nnodes·chunk` blocks,
/// 3. stride-align chunks sharing a remote destination node,
/// 4. inter-node All-to-All of `m·chunk` blocks.
///
/// # Panics
///
/// Panics if the number of buffers differs from the topology's world
/// size, buffers are ragged, or not divisible into `n` chunks.
///
/// # Example
///
/// ```
/// use tutel_comm::{linear_all_to_all, two_dh_all_to_all};
/// use tutel_simgpu::Topology;
///
/// let topo = Topology::new(2, 2);
/// let bufs: Vec<Vec<f32>> = (0..4).map(|r| (0..8).map(|i| (r * 8 + i) as f32).collect()).collect();
/// assert_eq!(two_dh_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
/// ```
#[allow(clippy::needless_range_loop)]
pub fn two_dh_all_to_all(bufs: &RankBuffers, topology: &Topology) -> RankBuffers {
    let n = topology.world_size();
    let m = topology.gpus_per_node();
    let nnodes = topology.nnodes();
    assert_eq!(bufs.len(), n, "buffer count must equal world size");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    assert!(
        len.is_multiple_of(n),
        "buffer of {len} elements not divisible into {n} chunks"
    );
    let chunk = len / n;

    // Phase 1: align chunks sharing the same local destination GPU.
    let phase1: RankBuffers = bufs
        .iter()
        .map(|b| stride_memcpy(b, chunk, m, nnodes))
        .collect();

    // Phase 2: intra-node All-to-All of blocks of nnodes·chunk elements.
    let mut phase2: RankBuffers = vec![vec![0.0; len]; n];
    let block = nnodes * chunk;
    for node in 0..nnodes {
        for src_local in 0..m {
            let src = node * m + src_local;
            for dst_local in 0..m {
                let dst = node * m + dst_local;
                // Block dst_local of src goes to block src_local of dst.
                phase2[dst][src_local * block..(src_local + 1) * block]
                    .copy_from_slice(&phase1[src][dst_local * block..(dst_local + 1) * block]);
            }
        }
    }

    // Phase 3: align chunks sharing the same remote destination node.
    let phase3: RankBuffers = phase2
        .iter()
        .map(|b| stride_memcpy(b, chunk, nnodes, m))
        .collect();

    // Phase 4: inter-node All-to-All of blocks of m·chunk elements among
    // same-local-rank peers.
    let mut out: RankBuffers = vec![vec![0.0; len]; n];
    let nblock = m * chunk;
    for local in 0..m {
        for src_node in 0..nnodes {
            let src = src_node * m + local;
            for dst_node in 0..nnodes {
                let dst = dst_node * m + local;
                out[dst][src_node * nblock..(src_node + 1) * nblock]
                    .copy_from_slice(&phase3[src][dst_node * nblock..(dst_node + 1) * nblock]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_all_to_all;

    fn labeled(n: usize, chunk: usize) -> RankBuffers {
        (0..n)
            .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn figure15_example_two_nodes_of_four() {
        let topo = Topology::new(2, 4);
        // Chunk value = src*10 + dst, one element per chunk.
        let bufs: RankBuffers = (0..8)
            .map(|s| (0..8).map(|d| (s * 10 + d) as f32).collect())
            .collect();
        let out = two_dh_all_to_all(&bufs, &topo);
        // Final row of GPU d must be [0d, 1d, ..., 7d] (Figure 15).
        for d in 0..8 {
            let expect: Vec<f32> = (0..8).map(|s| (s * 10 + d) as f32).collect();
            assert_eq!(out[d], expect, "GPU {d}");
        }
    }

    #[test]
    fn equivalent_to_linear_multi_chunk() {
        let topo = Topology::new(2, 4);
        let bufs = labeled(8, 5);
        assert_eq!(two_dh_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
    }

    #[test]
    fn equivalent_to_linear_single_node() {
        let topo = Topology::single_node(4);
        let bufs = labeled(4, 3);
        assert_eq!(two_dh_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
    }

    #[test]
    fn equivalent_to_linear_single_gpu_nodes() {
        // Degenerate: 4 nodes of 1 GPU — everything is inter-node.
        let topo = Topology::new(4, 1);
        let bufs = labeled(4, 2);
        assert_eq!(two_dh_all_to_all(&bufs, &topo), linear_all_to_all(&bufs));
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn rejects_wrong_world_size() {
        two_dh_all_to_all(&labeled(4, 1), &Topology::new(2, 4));
    }
}
