//! Typed errors for the threaded runtime.
//!
//! The collectives in [`crate::runtime`] used to panic on every
//! failure mode (dead peer, indivisible buffer, torn-down run); they
//! now surface these as [`CommError`] values so callers — and the
//! deterministic concurrency checker — can observe and report them
//! instead of unwinding a rank thread mid-collective.

use std::fmt;

/// Everything that can go wrong inside a [`crate::runtime`] collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank is out of range for the current world.
    PeerOutOfRange {
        /// The offending peer id.
        peer: usize,
        /// The world size it was checked against.
        world: usize,
    },
    /// A point-to-point channel is closed: the peer's thread exited
    /// (normally or by panic) while this rank still needed it.
    Disconnected {
        /// The rank whose operation failed.
        rank: usize,
    },
    /// A collective's input buffer is not divisible into the per-peer
    /// chunks the algorithm requires.
    Indivisible {
        /// Buffer length in elements.
        len: usize,
        /// Required divisor (world size or shard count).
        chunks: usize,
    },
    /// The deterministic scheduler proved the current schedule can
    /// make no further progress (see `runtime::sched`).
    Deadlock {
        /// The schedule seed that reproduces the deadlock.
        seed: u64,
        /// Human-readable wait-state summary at the point of quiesce.
        detail: String,
    },
    /// A reliable collective exhausted its retry budget waiting for a
    /// peer: the message (or its acknowledgement) never arrived within
    /// the configured timeouts. Surfaced instead of hanging.
    Timeout {
        /// The rank whose wait expired.
        rank: usize,
        /// The peer it was waiting on.
        peer: usize,
        /// The message tag it was waiting for (0 for an ack wait).
        tag: u64,
        /// Receive attempts made (1 initial + retries) before giving up.
        attempts: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerOutOfRange { peer, world } => {
                write!(f, "peer rank {peer} out of range for world of {world}")
            }
            CommError::Disconnected { rank } => {
                write!(f, "rank {rank}: channel disconnected (peer thread exited)")
            }
            CommError::Indivisible { len, chunks } => {
                write!(
                    f,
                    "buffer of {len} elements not divisible into {chunks} chunks"
                )
            }
            CommError::Deadlock { seed, detail } => {
                write!(f, "deadlock under schedule seed {seed}: {detail}")
            }
            CommError::Timeout {
                rank,
                peer,
                tag,
                attempts,
            } => {
                write!(
                    f,
                    "rank {rank}: timed out waiting on rank {peer} (tag {tag}) \
                     after {attempts} attempt(s)"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = CommError::Indivisible { len: 7, chunks: 4 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("4"));
        let e = CommError::Deadlock {
            seed: 42,
            detail: "rank 1 waiting on (0, 3)".into(),
        };
        assert!(e.to_string().contains("seed 42"));
        let e = CommError::Timeout {
            rank: 1,
            peer: 3,
            tag: 5,
            attempts: 4,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("4 attempt"));
    }
}
