//! Linear All-to-All (Algorithm 1 of the paper): the NCCL
//! `ncclSend`/`ncclRecv` loop every mainstream framework uses.

use crate::RankBuffers;

/// Functional linear All-to-All.
///
/// Each rank `r` splits its buffer into `n` equal chunks; chunk `d` of
/// rank `r` is delivered to rank `d` at chunk position `r`. This is the
/// exchange every variant in this crate must be equivalent to.
///
/// # Panics
///
/// Panics if buffers have unequal sizes or are not divisible into `n`
/// chunks.
///
/// # Example
///
/// ```
/// let bufs = vec![vec![0.0, 1.0], vec![10.0, 11.0]];
/// let out = tutel_comm::linear_all_to_all(&bufs);
/// assert_eq!(out[0], vec![0.0, 10.0]);
/// assert_eq!(out[1], vec![1.0, 11.0]);
/// ```
#[allow(clippy::needless_range_loop)]
pub fn linear_all_to_all(bufs: &RankBuffers) -> RankBuffers {
    let n = bufs.len();
    assert!(n > 0, "all-to-all over zero ranks");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    assert!(
        len.is_multiple_of(n),
        "buffer of {len} elements not divisible into {n} chunks"
    );
    let chunk = len / n;
    let mut out = vec![vec![0.0f32; len]; n];
    for (src, buf) in bufs.iter().enumerate() {
        for dst in 0..n {
            out[dst][src * chunk..(src + 1) * chunk]
                .copy_from_slice(&buf[dst * chunk..(dst + 1) * chunk]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(n: usize, chunk: usize) -> RankBuffers {
        // Value encodes (src, dst, offset) uniquely.
        (0..n)
            .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn exchange_is_a_transpose_of_chunks() {
        let n = 4;
        let chunk = 3;
        let out = linear_all_to_all(&labeled(n, chunk));
        for dst in 0..n {
            for src in 0..n {
                for o in 0..chunk {
                    let expect = (src * n * chunk + dst * chunk + o) as f32;
                    assert_eq!(out[dst][src * chunk + o], expect);
                }
            }
        }
    }

    #[test]
    fn involution_for_symmetric_world() {
        let bufs = labeled(3, 2);
        let once = linear_all_to_all(&bufs);
        let twice = linear_all_to_all(&once);
        assert_eq!(twice, bufs);
    }

    #[test]
    fn single_rank_is_identity() {
        let bufs = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(linear_all_to_all(&bufs), bufs);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_buffers() {
        linear_all_to_all(&vec![vec![0.0; 3]; 2]);
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn rejects_ragged_buffers() {
        linear_all_to_all(&vec![vec![0.0; 4], vec![0.0; 2]]);
    }
}
