//! A threaded message-passing runtime: the NCCL-equivalent substrate.
//!
//! The sequential functions in this crate ([`crate::linear_all_to_all`]
//! etc.) compute collectives over all ranks at once — convenient for
//! tests, but nothing like how a real cluster executes. This module
//! runs every simulated rank on its **own OS thread** with only
//! point-to-point channels between them (MPMC channels), and
//! implements the collectives as each rank's local program — exactly
//! the structure of Algorithm 1 and Algorithm 3 in the paper:
//!
//! * [`Communicator::all_to_all`] — the linear send/recv loop;
//! * [`Communicator::all_to_all_2dh`] — stride-align, intra-node
//!   exchange, align, inter-node exchange (Figure 15), with each rank
//!   only ever touching its own buffers;
//! * ring [`Communicator::all_gather`] and
//!   [`Communicator::all_reduce_sum`].
//!
//! Every operation returns `Result<_, CommError>` instead of
//! panicking, so rank programs can surface failures (and the
//! `check-sched` deterministic scheduler can inject them) without
//! unwinding across threads.
//!
//! The transport is pluggable: production runs use MPMC channels via
//! [`run_threaded`]; under `feature = "check-sched"` the same
//! `Communicator` can instead be backed by the adversarial
//! deterministic scheduler in [`crate::sched`].
//!
//! # Reliability layer
//!
//! [`run_threaded_reliable`] arms an optional end-to-end reliability
//! protocol on top of the same collectives, used by the conformance
//! harness to prove graceful degradation under injected faults
//! ([`crate::fault::FaultPlan`]):
//!
//! * every data send is kept in a per-collective **retransmit log**;
//! * a receiver whose wait exceeds the [`RetryPolicy`] timeout sends a
//!   `Retry` request to the expected source and backs off
//!   exponentially; the source re-serves the payload from its log;
//! * receivers **dedupe** data messages by `(src, tag)` (tags are
//!   never reused within a run), so duplicated or late-plus-
//!   retransmitted deliveries collapse to one;
//! * each collective ends with an **ack phase**: a rank announces
//!   completion to every peer and waits for all peers' announcements,
//!   serving retry requests meanwhile — so a sender stays reachable
//!   until every receiver has recovered;
//! * exhausted retries surface [`CommError::Timeout`] — never a hang
//!   (every wait is bounded) and never a corrupted tensor (a failed
//!   collective returns no buffer at all and drains its mailbox).
//!
//! When no reliability config is armed, none of this state exists and
//! the hot path is exactly the plain channel send/recv.
//!
//! Unit tests assert bit-equality against the sequential reference
//! implementations.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use tutel_obs::trace::{FlowKind, TraceHub, Tracer, TRACK_COMM};
use tutel_obs::Telemetry;
use tutel_simgpu::Topology;

use crate::error::CommError;
use crate::fault::{FaultAction, FaultPlan};
use crate::stride_memcpy;

/// Message class on the wire. Control traffic (`Retry`, `Ack`) exists
/// only under the reliability layer and is handled inline by the
/// reliable receive loop — it is never parked in the mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    /// Collective payload.
    Data,
    /// "Re-send me your message under `tag`" (payload empty).
    Retry,
    /// "I have completed the current collective" (payload empty).
    Ack,
}

impl MsgKind {
    /// The trace-layer class of this message.
    fn flow_kind(self) -> FlowKind {
        match self {
            MsgKind::Data => FlowKind::Data,
            MsgKind::Retry => FlowKind::Retry,
            MsgKind::Ack => FlowKind::Ack,
        }
    }
}

/// A tagged point-to-point message. `seq` numbers the transmission
/// attempt for `(src → dst, tag, kind)` — `0` for the first physical
/// send, incrementing for duplicates and retransmits — so the causal
/// tracer can bind every wire transmission to exactly one receive
/// even when the reliability layer re-sends. It is `0` (and unused)
/// when tracing is disabled.
struct Message {
    src: usize,
    tag: u64,
    kind: MsgKind,
    seq: u32,
    payload: Vec<f32>,
}

/// Timeout/retry schedule for the reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Initial wait before the first retry request.
    pub timeout: Duration,
    /// Retry requests per receive before giving up with
    /// [`CommError::Timeout`]. `0` means fail on the first timeout.
    pub max_retries: u32,
    /// Multiplier applied to the wait after each timeout
    /// (exponential backoff).
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Duration::from_millis(50),
            max_retries: 3,
            backoff: 2,
        }
    }
}

/// Configuration for [`run_threaded_reliable`].
#[derive(Clone, Default)]
pub struct ReliableConfig {
    /// Timeout/retry schedule.
    pub policy: RetryPolicy,
    /// Optional fault injection applied to data sends.
    pub plan: Option<FaultPlan>,
    /// Sink for `comm.retry.*` counters and gauges (shared across
    /// ranks; pass [`Telemetry::disabled`] to opt out).
    pub telemetry: Telemetry,
}

/// Mutable reliability bookkeeping (interior-mutable so `send` can
/// stay `&self`).
#[derive(Default)]
struct RelState {
    /// Retransmit log for the current collective: `(peer, tag)` →
    /// payload. Cleared when the ack phase completes — after which no
    /// peer can still request a retry for this collective (its retry
    /// requests order before its ack on the same FIFO channel).
    log: HashMap<(usize, u64), Vec<f32>>,
    /// Data identities already accepted, for dedupe. Kept for the
    /// communicator's lifetime: tags are monotone per pair, so the set
    /// grows with total traffic, bounded by the run length.
    seen: HashSet<(usize, u64)>,
    /// `(peer, epoch)` acknowledgements received. Epoch-tagged so a
    /// fast peer's ack for collective `k+1` (which FIFO ordering
    /// guarantees arrives after its ack for `k`) can never satisfy the
    /// wait for collective `k`.
    acks: HashSet<(usize, u64)>,
    /// Sends held back by [`FaultAction::Delay`], flushed (late) at
    /// the start of the ack phase. The transmission number was
    /// assigned (and the flow edge stamped) at logical send time, so
    /// the trace shows the whole in-flight window.
    delayed: Vec<(usize, u64, u32, Vec<f32>)>,
    /// Completed-collective count; the tag under which this rank's
    /// acks are sent.
    epoch: u64,
}

/// The armed reliability layer of one communicator.
struct Reliability {
    policy: RetryPolicy,
    plan: Option<FaultPlan>,
    obs: Telemetry,
    state: RefCell<RelState>,
}

/// The `comm.retry.*` counter names the reliability layer maintains;
/// the ack phase mirrors each as a gauge of the same name.
const RETRY_COUNTERS: &[&str] = &[
    "comm.retry.requests",
    "comm.retry.retransmits",
    "comm.retry.timeouts",
    "comm.retry.dup_discards",
    "comm.retry.injected_drops",
    "comm.retry.injected_dups",
    "comm.retry.injected_delays",
];

/// The wire under a [`Communicator`]: real channels for production
/// runs, or the deterministic scheduler when model checking.
enum Endpoint {
    /// One MPMC channel per rank plus a shared barrier.
    Channel {
        senders: Vec<Sender<Message>>,
        receiver: Receiver<Message>,
        barrier: Arc<Barrier>,
    },
    /// Scheduler-mediated transport (see [`crate::sched`]).
    #[cfg(feature = "check-sched")]
    Sched(Arc<crate::sched::SchedNet>),
}

/// One rank's endpoint in a [`run_threaded`] run: point-to-point
/// sends/receives plus the collectives built on them.
///
/// Not `Clone`: exactly one communicator exists per rank per run.
/// When dropped at the end of a healthy run, it audits that its
/// mailbox is empty — a parked message at join means some collective
/// sent under a tag nobody consumed.
pub struct Communicator {
    rank: usize,
    topology: Topology,
    endpoint: Endpoint,
    /// Out-of-order arrivals parked until requested, keyed by
    /// `(src, tag)`. Entries are removed as soon as they drain so the
    /// map stays empty across healthy collectives.
    mailbox: HashMap<(usize, u64), Vec<Vec<f32>>>,
    /// Monotone per-collective tag so concurrent collectives on the
    /// same communicator pair never mix messages.
    next_tag: u64,
    /// Set once any operation errored; disables the drop-time mailbox
    /// audit (a failed run legitimately strands messages).
    poisoned: Cell<bool>,
    /// Armed by [`run_threaded_reliable`]; `None` keeps the plain
    /// fast path (and is always `None` on the sched endpoint, whose
    /// delivery faults live in the scheduler itself).
    reliability: Option<Reliability>,
    /// Causal tracer for this rank; disabled (one branch per call, no
    /// clock or allocation) unless the run was started via a traced
    /// runner with a [`TraceHub`].
    tracer: Tracer,
    /// Transmission-attempt counters per `(peer, tag, kind)`, backing
    /// the `seq` stamp on [`Message`]. Only touched when the tracer is
    /// enabled.
    send_seqs: RefCell<HashMap<(usize, u64, u8), u32>>,
    /// Total `f32` elements this rank has physically transmitted as
    /// collective payload (`Data` messages only; duplicates and
    /// retransmits count each wire copy). Serving layers read this to
    /// attribute per-step All-to-All volume without touching the hot
    /// path — it is a plain counter bump on an already-owned cell.
    sent_elems: Cell<u64>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Builds a scheduler-backed communicator for one rank of a
    /// [`crate::sched::run_sched`] run.
    #[cfg(feature = "check-sched")]
    pub(crate) fn with_sched(
        rank: usize,
        topology: Topology,
        net: Arc<crate::sched::SchedNet>,
    ) -> Self {
        Communicator {
            rank,
            topology,
            endpoint: Endpoint::Sched(net),
            mailbox: HashMap::new(),
            next_tag: 0,
            poisoned: Cell::new(false),
            reliability: None,
            tracer: Tracer::disabled(),
            send_seqs: RefCell::new(HashMap::new()),
            sent_elems: Cell::new(0),
        }
    }

    /// Total `f32` elements transmitted on the wire as collective
    /// payload so far (control traffic excluded). Monotone within a
    /// run; the serve engine samples it around each micro-batch step
    /// to report per-step communication volume.
    pub fn sent_payload_elems(&self) -> u64 {
        self.sent_elems.get()
    }

    /// This rank's causal tracer (disabled unless the run was started
    /// through a traced runner). Layers above the communicator — the
    /// overlap engine, the harness — record their own tracks on it so
    /// all of a rank's activity shares one timeline.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Messages currently parked in the mailbox: nonzero after a
    /// collective means a send was never matched by a recv.
    pub fn parked_messages(&self) -> usize {
        self.mailbox.values().map(Vec::len).sum()
    }

    /// Discards parked messages (the `check-sched` harness reports
    /// them itself and must suppress the drop-time audit).
    #[cfg(feature = "check-sched")]
    pub(crate) fn clear_mailbox(&mut self) {
        self.mailbox.clear();
    }

    fn fail<T>(&self, err: CommError) -> Result<T, CommError> {
        self.poisoned.set(true);
        Err(err)
    }

    /// Sends `payload` to `peer` under `tag`.
    ///
    /// Under the reliability layer the payload is first recorded in
    /// the retransmit log, then the [`FaultPlan`] (if any) decides how
    /// the wire transmission happens; a dropped or delayed first
    /// transmission is still recoverable from the log.
    ///
    /// # Errors
    ///
    /// [`CommError::PeerOutOfRange`] for a bad `peer`;
    /// [`CommError::Disconnected`] if the run has been torn down.
    pub fn send(&self, peer: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        if peer >= self.world_size() {
            return self.fail(CommError::PeerOutOfRange {
                peer,
                world: self.world_size(),
            });
        }
        let Some(rel) = &self.reliability else {
            return self.send_raw(peer, tag, MsgKind::Data, payload);
        };
        rel.state
            .borrow_mut()
            .log
            .insert((peer, tag), payload.clone());
        let action = match rel.plan {
            Some(plan) => plan.action(self.rank, peer, tag),
            None => FaultAction::Deliver,
        };
        match action {
            FaultAction::Deliver => self.send_raw(peer, tag, MsgKind::Data, payload),
            FaultAction::Drop => {
                // Withhold the first transmission; the peer recovers
                // it from the log via a Retry request.
                rel.obs.add_counter("comm.retry.injected_drops", 1);
                Ok(())
            }
            FaultAction::Duplicate => {
                rel.obs.add_counter("comm.retry.injected_dups", 1);
                self.send_raw(peer, tag, MsgKind::Data, payload.clone())?;
                self.send_raw(peer, tag, MsgKind::Data, payload)
            }
            FaultAction::Delay(_) => {
                rel.obs.add_counter("comm.retry.injected_delays", 1);
                // The sender logically transmits *now*; only the wire
                // delivers late. Stamping the flow send here (and
                // reusing the seq at the flush) puts the full in-flight
                // time on this edge, so the analyzer can attribute the
                // delivery latency to this rank.
                let seq = self.next_seq(peer, tag, MsgKind::Data);
                self.tracer
                    .flow_send(peer, tag, seq, FlowKind::Data, payload.len() as u64 * 4);
                rel.state
                    .borrow_mut()
                    .delayed
                    .push((peer, tag, seq, payload));
                Ok(())
            }
        }
    }

    /// Transmits directly on the endpoint, bypassing the fault plan
    /// and retransmit log — used for control traffic and retransmits.
    /// (The sched endpoint carries no `kind`: reliability is never
    /// armed there, so only `Data` ever reaches it.)
    fn send_raw(
        &self,
        peer: usize,
        tag: u64,
        kind: MsgKind,
        payload: Vec<f32>,
    ) -> Result<(), CommError> {
        let seq = self.next_seq(peer, tag, kind);
        // Stamped before the wire hands the message over, so a flow
        // edge's send timestamp always precedes its receive.
        self.tracer
            .flow_send(peer, tag, seq, kind.flow_kind(), payload.len() as u64 * 4);
        self.send_wire(peer, tag, kind, seq, payload)
    }

    /// The physical handover under an already-assigned (and already
    /// flow-stamped) transmission number — the tail of [`send_raw`],
    /// called directly when flushing delayed sends whose flow edge was
    /// stamped at logical send time.
    fn send_wire(
        &self,
        peer: usize,
        tag: u64,
        kind: MsgKind,
        seq: u32,
        payload: Vec<f32>,
    ) -> Result<(), CommError> {
        if kind == MsgKind::Data {
            self.sent_elems
                .set(self.sent_elems.get() + payload.len() as u64);
        }
        match &self.endpoint {
            Endpoint::Channel { senders, .. } => {
                let msg = Message {
                    src: self.rank,
                    tag,
                    kind,
                    seq,
                    payload,
                };
                match senders[peer].send(msg) {
                    Ok(()) => Ok(()),
                    Err(_) => self.fail(CommError::Disconnected { rank: self.rank }),
                }
            }
            #[cfg(feature = "check-sched")]
            Endpoint::Sched(net) => match net.send(self.rank, peer, tag, payload) {
                Ok(()) => Ok(()),
                Err(e) => self.fail(e),
            },
        }
    }

    /// Next transmission-attempt number for `(peer, tag, kind)` —
    /// always `0` when tracing is off, so untraced runs never touch
    /// the counter map.
    fn next_seq(&self, peer: usize, tag: u64, kind: MsgKind) -> u32 {
        if !self.tracer.is_enabled() {
            return 0;
        }
        let mut seqs = self.send_seqs.borrow_mut();
        let slot = seqs.entry((peer, tag, kind as u8)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Blocks for the next raw arrival, whatever its source or tag.
    fn recv_any(&mut self) -> Result<Message, CommError> {
        match &mut self.endpoint {
            Endpoint::Channel { receiver, .. } => match receiver.recv() {
                Ok(m) => Ok(m),
                Err(_) => {
                    self.poisoned.set(true);
                    Err(CommError::Disconnected { rank: self.rank })
                }
            },
            #[cfg(feature = "check-sched")]
            Endpoint::Sched(net) => match net.recv(self.rank) {
                Ok((src, tag, payload)) => Ok(Message {
                    src,
                    tag,
                    kind: MsgKind::Data,
                    seq: 0,
                    payload,
                }),
                Err(e) => {
                    self.poisoned.set(true);
                    Err(e)
                }
            },
        }
    }

    /// Pops a parked message for `(src, tag)` if one is waiting.
    fn take_parked(&mut self, src: usize, tag: u64) -> Option<Vec<f32>> {
        let queue = self.mailbox.get_mut(&(src, tag))?;
        // Queues are created non-empty and removed when drained, so a
        // present entry always yields a message.
        let payload = queue.remove(0);
        if queue.is_empty() {
            self.mailbox.remove(&(src, tag));
        }
        Some(payload)
    }

    /// Receives the next message from `src` under `tag`, parking any
    /// other arrivals. Under the reliability layer the wait is bounded
    /// by the [`RetryPolicy`] and retry requests are issued on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`CommError::Disconnected`] if a peer exited mid-collective;
    /// [`CommError::Deadlock`] under the deterministic scheduler;
    /// [`CommError::Timeout`] when an armed retry budget is exhausted.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        if let Some(payload) = self.take_parked(src, tag) {
            return Ok(payload);
        }
        if self.reliability.is_some() {
            return self.recv_reliable(src, tag);
        }
        loop {
            let msg = self.recv_any()?;
            self.tracer
                .flow_recv(msg.src, msg.tag, msg.seq, msg.kind.flow_kind(), true);
            if msg.src == src && msg.tag == tag {
                return Ok(msg.payload);
            }
            self.mailbox
                .entry((msg.src, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }

    /// Blocks up to `timeout` for the next raw arrival; `Ok(None)` on
    /// timeout. Channel endpoint only in practice (the sched endpoint
    /// has no clock and falls back to its own blocking recv).
    fn recv_any_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, CommError> {
        match &mut self.endpoint {
            Endpoint::Channel { receiver, .. } => match receiver.recv_timeout(timeout) {
                Ok(m) => Ok(Some(m)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => {
                    self.poisoned.set(true);
                    Err(CommError::Disconnected { rank: self.rank })
                }
            },
            #[cfg(feature = "check-sched")]
            Endpoint::Sched(net) => match net.recv(self.rank) {
                Ok((src, tag, payload)) => Ok(Some(Message {
                    src,
                    tag,
                    kind: MsgKind::Data,
                    seq: 0,
                    payload,
                })),
                Err(e) => {
                    self.poisoned.set(true);
                    Err(e)
                }
            },
        }
    }

    /// Returns the next raw arrival if one is already queued, without
    /// blocking. The sched endpoint always reports `None`: its
    /// deliveries only happen at quiescence, so polling can make no
    /// progress there — handle waits fall back to the blocking path,
    /// which the scheduler mediates deterministically.
    fn try_recv_any(&mut self) -> Option<Message> {
        match &mut self.endpoint {
            Endpoint::Channel { receiver, .. } => receiver.try_recv(),
            #[cfg(feature = "check-sched")]
            Endpoint::Sched(_) => None,
        }
    }

    /// Drains every arrival already queued on the endpoint into the
    /// mailbox without blocking. Under the reliability layer, control
    /// traffic (`Retry`/`Ack`) is handled inline and data is deduped —
    /// exactly as the blocking receive loop would.
    fn drain_incoming(&mut self) -> Result<(), CommError> {
        while let Some(msg) = self.try_recv_any() {
            if self.reliability.is_some() {
                self.handle_reliable_arrival(msg, None)?;
            } else {
                self.tracer
                    .flow_recv(msg.src, msg.tag, msg.seq, msg.kind.flow_kind(), true);
                self.mailbox
                    .entry((msg.src, msg.tag))
                    .or_default()
                    .push(msg.payload);
            }
        }
        Ok(())
    }

    /// Processes one arrival under the reliability layer: dedupes and
    /// parks data (returning it instead if it matches `want`), serves
    /// `Retry` requests from the retransmit log, and records acks.
    fn handle_reliable_arrival(
        &mut self,
        msg: Message,
        want: Option<(usize, u64)>,
    ) -> Result<Option<Vec<f32>>, CommError> {
        let Some(rel) = &self.reliability else {
            return Ok(None);
        };
        match msg.kind {
            MsgKind::Data => {
                let fresh = rel.state.borrow_mut().seen.insert((msg.src, msg.tag));
                // `accepted: false` marks the duplicate edge: a
                // retransmit that raced the original (or an injected
                // duplicate) still binds to its own send, so the
                // timeline shows the redundant transmission.
                self.tracer
                    .flow_recv(msg.src, msg.tag, msg.seq, FlowKind::Data, fresh);
                if !fresh {
                    // A duplicate or a retransmit that raced the
                    // original (or a delayed copy we already
                    // recovered): drop it.
                    rel.obs.add_counter("comm.retry.dup_discards", 1);
                    return Ok(None);
                }
                if want == Some((msg.src, msg.tag)) {
                    return Ok(Some(msg.payload));
                }
                self.mailbox
                    .entry((msg.src, msg.tag))
                    .or_default()
                    .push(msg.payload);
                Ok(None)
            }
            MsgKind::Retry => {
                // The peer timed out waiting for our `msg.tag`; serve
                // it from the log. An unknown tag means we have not
                // sent it yet — ignore; the regular send (or the
                // peer's next retry) will satisfy it.
                self.tracer
                    .flow_recv(msg.src, msg.tag, msg.seq, FlowKind::Retry, true);
                let logged = rel.state.borrow().log.get(&(msg.src, msg.tag)).cloned();
                if let Some(payload) = logged {
                    rel.obs.add_counter("comm.retry.retransmits", 1);
                    self.tracer.instant(TRACK_COMM, "retransmit");
                    // send_raw bumps the Data seq, so the retransmit
                    // becomes a flow edge distinct from the original.
                    self.send_raw(msg.src, msg.tag, MsgKind::Data, payload)?;
                }
                Ok(None)
            }
            MsgKind::Ack => {
                self.tracer
                    .flow_recv(msg.src, msg.tag, msg.seq, FlowKind::Ack, true);
                rel.state.borrow_mut().acks.insert((msg.src, msg.tag));
                Ok(None)
            }
        }
    }

    /// The bounded receive loop used when reliability is armed.
    fn recv_reliable(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        let policy = match &self.reliability {
            Some(rel) => rel.policy,
            // recv() dispatches here only when armed.
            None => RetryPolicy::default(),
        };
        let mut wait = policy.timeout;
        let mut attempts: u32 = 0;
        loop {
            // A retransmit may have been parked while other traffic
            // was being serviced.
            if let Some(payload) = self.take_parked(src, tag) {
                return Ok(payload);
            }
            match self.recv_any_timeout(wait)? {
                Some(msg) => {
                    if let Some(payload) = self.handle_reliable_arrival(msg, Some((src, tag)))? {
                        return Ok(payload);
                    }
                }
                None => {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        if let Some(rel) = &self.reliability {
                            rel.obs.add_counter("comm.retry.timeouts", 1);
                        }
                        // A failed collective must not strand parked
                        // messages: drain them so the join-time audit
                        // sees a clean (if poisoned) mailbox.
                        self.mailbox.clear();
                        return self.fail(CommError::Timeout {
                            rank: self.rank,
                            peer: src,
                            tag,
                            attempts,
                        });
                    }
                    if let Some(rel) = &self.reliability {
                        rel.obs.add_counter("comm.retry.requests", 1);
                    }
                    self.send_raw(src, tag, MsgKind::Retry, Vec::new())?;
                    wait = wait.saturating_mul(policy.backoff.max(1));
                }
            }
        }
    }

    /// Closes a collective under the reliability layer: flushes
    /// delayed sends, announces completion to every peer, and waits
    /// for every peer's announcement while serving their retry
    /// requests — so this rank stays reachable until all receivers
    /// have recovered. Drops the `finished` tags from the retransmit
    /// log afterwards (FIFO ordering puts a peer's last possible retry
    /// before its ack) and mirrors the `comm.retry.*` counters as
    /// gauges. Only the finished tags are dropped — with non-blocking
    /// handles, another collective's sends may already be logged and
    /// must stay recoverable until *its* epilogue runs.
    fn collective_epilogue(&mut self, finished: &[u64]) -> Result<(), CommError> {
        if self.reliability.is_none() {
            return Ok(());
        }
        let _span = self.tracer.span(TRACK_COMM, "ack_phase");
        let delayed: Vec<(usize, u64, u32, Vec<f32>)> = match &self.reliability {
            Some(rel) => rel.state.borrow_mut().delayed.drain(..).collect(),
            None => Vec::new(),
        };
        for (peer, tag, seq, payload) in delayed {
            self.send_wire(peer, tag, MsgKind::Data, seq, payload)?;
        }
        let (policy, epoch) = match &self.reliability {
            Some(rel) => (rel.policy, rel.state.borrow().epoch),
            None => return Ok(()),
        };
        let n = self.world_size();
        if n > 1 {
            for peer in 0..n {
                if peer != self.rank {
                    self.send_raw(peer, epoch, MsgKind::Ack, Vec::new())?;
                }
            }
            let mut wait = policy.timeout;
            let mut attempts: u32 = 0;
            loop {
                let missing = match &self.reliability {
                    Some(rel) => {
                        let st = rel.state.borrow();
                        (0..n).find(|p| *p != self.rank && !st.acks.contains(&(*p, epoch)))
                    }
                    None => None,
                };
                let Some(peer) = missing else { break };
                match self.recv_any_timeout(wait)? {
                    Some(msg) => {
                        self.handle_reliable_arrival(msg, None)?;
                    }
                    None => {
                        // Acks ride the raw channel (never faulted),
                        // so a missing ack means the peer died or
                        // failed — keep the wait bounded.
                        attempts += 1;
                        if attempts > policy.max_retries {
                            if let Some(rel) = &self.reliability {
                                rel.obs.add_counter("comm.retry.timeouts", 1);
                            }
                            self.mailbox.clear();
                            return self.fail(CommError::Timeout {
                                rank: self.rank,
                                peer,
                                tag: 0,
                                attempts,
                            });
                        }
                        wait = wait.saturating_mul(policy.backoff.max(1));
                    }
                }
            }
        }
        if let Some(rel) = &self.reliability {
            let mut st = rel.state.borrow_mut();
            st.log.retain(|(_, t), _| !finished.contains(t));
            st.acks.retain(|(_, e)| *e > epoch);
            st.epoch += 1;
            drop(st);
            for name in RETRY_COUNTERS {
                let v = rel.obs.counter_value(name).unwrap_or(0);
                rel.obs.set_gauge(name, v as f64);
            }
        }
        Ok(())
    }

    /// Blocks until every rank reaches the same barrier call.
    ///
    /// # Errors
    ///
    /// [`CommError::Deadlock`] under the deterministic scheduler when
    /// the barrier can never trip; infallible on the channel endpoint.
    pub fn barrier(&self) -> Result<(), CommError> {
        match &self.endpoint {
            Endpoint::Channel { barrier, .. } => {
                barrier.wait();
                Ok(())
            }
            #[cfg(feature = "check-sched")]
            Endpoint::Sched(net) => match net.barrier(self.rank) {
                Ok(()) => Ok(()),
                Err(e) => self.fail(e),
            },
        }
    }

    fn fresh_tag(&mut self) -> u64 {
        self.next_tag += 1;
        self.next_tag
    }

    fn require_divisible(&self, len: usize, chunks: usize) -> Result<usize, CommError> {
        if chunks == 0 || !len.is_multiple_of(chunks) {
            self.poisoned.set(true);
            return Err(CommError::Indivisible { len, chunks });
        }
        Ok(len / chunks)
    }

    /// Linear All-to-All (Algorithm 1): splits `input` into `W` equal
    /// chunks laid out as `(W, chunk)`, sends chunk `d` to rank `d`,
    /// returns the received chunks in source order.
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `input.len()` is not divisible by
    /// the world size, plus any transport error.
    pub fn all_to_all(&mut self, input: &[f32]) -> Result<Vec<f32>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_to_all");
        let n = self.world_size();
        let chunk = self.require_divisible(input.len(), n)?;
        let tag = self.fresh_tag();
        for peer in 0..n {
            if peer != self.rank {
                self.send(peer, tag, input[peer * chunk..(peer + 1) * chunk].to_vec())?;
            }
        }
        let mut out = vec![0.0f32; input.len()];
        out[self.rank * chunk..(self.rank + 1) * chunk]
            .copy_from_slice(&input[self.rank * chunk..(self.rank + 1) * chunk]);
        for src in 0..n {
            if src != self.rank {
                let payload = self.recv(src, tag)?;
                out[src * chunk..(src + 1) * chunk].copy_from_slice(&payload);
            }
        }
        self.collective_epilogue(&[tag])?;
        Ok(out)
    }

    /// Flexible (ragged) linear All-to-All: sends `sends[d]` to rank
    /// `d` verbatim and returns the received buffers in source order,
    /// with no equal-chunk requirement — peers' payload lengths ride
    /// the message itself, so no count pre-exchange is needed. Empty
    /// buffers are legal (an expert that received no tokens). Runs
    /// under the reliability layer and fault injection exactly like
    /// [`Communicator::all_to_all`].
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `sends.len()` is not the world
    /// size, plus any transport error.
    pub fn all_to_all_v(&mut self, sends: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_to_all_v");
        let n = self.world_size();
        if sends.len() != n {
            self.poisoned.set(true);
            return Err(CommError::Indivisible {
                len: sends.len(),
                chunks: n,
            });
        }
        let tag = self.fresh_tag();
        for (peer, buf) in sends.iter().enumerate() {
            if peer != self.rank {
                self.send(peer, tag, buf.clone())?;
            }
        }
        let me = self.rank;
        let mut out = vec![Vec::new(); n];
        out[me] = sends[me].clone();
        for src in (0..n).filter(|&s| s != me) {
            let buf = self.recv(src, tag)?;
            out[src] = buf;
        }
        self.collective_epilogue(&[tag])?;
        Ok(out)
    }

    /// Flexible (ragged) 2DH All-to-All: the hierarchical phases of
    /// [`Communicator::all_to_all_2dh`] generalized to per-destination
    /// buffer lengths. Because the intermediate hop must re-bucket a
    /// concatenation of variable-length messages, each wire payload
    /// carries an in-band header of per-segment lengths encoded as
    /// f32 — exact below 2^24 elements per segment, far above any
    /// routed bin this simulator produces.
    ///
    /// Bitwise-identical result to [`Communicator::all_to_all_v`]: both
    /// deliver every source buffer verbatim, only the route differs.
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `sends.len()` is not the world
    /// size, plus any transport error.
    pub fn all_to_all_v_2dh(&mut self, sends: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_to_all_v_2dh");
        let n = self.world_size();
        if sends.len() != n {
            self.poisoned.set(true);
            return Err(CommError::Indivisible {
                len: sends.len(),
                chunks: n,
            });
        }
        let m = self.topology.gpus_per_node();
        let nnodes = self.topology.nnodes();
        let node = self.topology.node_of(self.rank);
        let local = self.topology.local_rank(self.rank);

        // Phase 1+2: bucket by destination *local rank* and exchange
        // intra-node. Segment order inside a bucket is destination
        // node order; the header block holds the nnodes lengths.
        let pack = |segs: Vec<&[f32]>| -> Vec<f32> {
            let mut buf =
                Vec::with_capacity(segs.len() + segs.iter().map(|s| s.len()).sum::<usize>());
            buf.extend(segs.iter().map(|s| s.len() as f32));
            for s in &segs {
                buf.extend_from_slice(s);
            }
            buf
        };
        let unpack = |buf: &[f32], nseg: usize| -> Vec<Vec<f32>> {
            let mut segs = Vec::with_capacity(nseg);
            let mut at = nseg;
            for i in 0..nseg {
                let len = buf[i] as usize;
                segs.push(buf[at..at + len].to_vec());
                at += len;
            }
            segs
        };
        let tag = self.fresh_tag();
        for dst_local in 0..m {
            let payload = pack(
                (0..nnodes)
                    .map(|dst_node| sends[dst_node * m + dst_local].as_slice())
                    .collect(),
            );
            if dst_local != local {
                self.send(node * m + dst_local, tag, payload)?;
            }
        }
        // phase2[src_local][dst_node] = message from (node, src_local)
        // bound for (dst_node, local).
        let mut phase2: Vec<Vec<Vec<f32>>> = vec![Vec::new(); m];
        phase2[local] = (0..nnodes)
            .map(|dst_node| sends[dst_node * m + local].clone())
            .collect();
        for src_local in (0..m).filter(|&s| s != local) {
            let payload = self.recv(node * m + src_local, tag)?;
            phase2[src_local] = unpack(&payload, nnodes);
        }

        // Phase 3+4: re-bucket by destination node and exchange
        // inter-node among same-local-rank peers. Segment order is
        // source local-rank order.
        let tag_inter = self.fresh_tag();
        for dst_node in (0..nnodes).filter(|&d| d != node) {
            let payload = pack(
                phase2
                    .iter()
                    .map(|bucket| bucket[dst_node].as_slice())
                    .collect(),
            );
            self.send(dst_node * m + local, tag_inter, payload)?;
        }
        let mut out = vec![Vec::new(); n];
        for (src_local, bucket) in phase2.iter().enumerate() {
            out[node * m + src_local] = bucket[node].clone();
        }
        for src_node in 0..nnodes {
            if src_node != node {
                let payload = self.recv(src_node * m + local, tag_inter)?;
                for (src_local, seg) in unpack(&payload, m).into_iter().enumerate() {
                    out[src_node * m + src_local] = seg;
                }
            }
        }
        self.collective_epilogue(&[tag, tag_inter])?;
        Ok(out)
    }

    /// 2DH All-to-All (Algorithm 3): each rank runs the four phases of
    /// Figure 15 locally over its `(W, chunk)` buffer, exchanging only
    /// intra-node blocks in phase 2 and inter-node blocks in phase 4.
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `input.len()` is not divisible by
    /// the world size, plus any transport error.
    pub fn all_to_all_2dh(&mut self, input: &[f32]) -> Result<Vec<f32>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_to_all_2dh");
        let n = self.world_size();
        let m = self.topology.gpus_per_node();
        let nnodes = self.topology.nnodes();
        let chunk = self.require_divisible(input.len(), n)?;
        let node = self.topology.node_of(self.rank);
        let local = self.topology.local_rank(self.rank);

        // Phase 1: align chunks sharing a local destination GPU.
        let aligned = stride_memcpy(input, chunk, m, nnodes);

        // Phase 2: intra-node All-to-All of nnodes·chunk blocks.
        let tag = self.fresh_tag();
        let block = nnodes * chunk;
        for dst_local in 0..m {
            if dst_local != local {
                let dst = node * m + dst_local;
                self.send(
                    dst,
                    tag,
                    aligned[dst_local * block..(dst_local + 1) * block].to_vec(),
                )?;
            }
        }
        let mut phase2 = vec![0.0f32; input.len()];
        phase2[local * block..(local + 1) * block]
            .copy_from_slice(&aligned[local * block..(local + 1) * block]);
        for src_local in 0..m {
            if src_local != local {
                let src = node * m + src_local;
                let payload = self.recv(src, tag)?;
                phase2[src_local * block..(src_local + 1) * block].copy_from_slice(&payload);
            }
        }

        // Phase 3: align chunks sharing a remote destination node.
        let phase3 = stride_memcpy(&phase2, chunk, nnodes, m);

        // Phase 4: inter-node All-to-All among same-local-rank peers.
        let tag_inter = self.fresh_tag();
        let nblock = m * chunk;
        for dst_node in 0..nnodes {
            if dst_node != node {
                let dst = dst_node * m + local;
                self.send(
                    dst,
                    tag_inter,
                    phase3[dst_node * nblock..(dst_node + 1) * nblock].to_vec(),
                )?;
            }
        }
        let mut out = vec![0.0f32; input.len()];
        out[node * nblock..(node + 1) * nblock]
            .copy_from_slice(&phase3[node * nblock..(node + 1) * nblock]);
        for src_node in 0..nnodes {
            if src_node != node {
                let src = src_node * m + local;
                let payload = self.recv(src, tag_inter)?;
                out[src_node * nblock..(src_node + 1) * nblock].copy_from_slice(&payload);
            }
        }
        self.collective_epilogue(&[tag, tag_inter])?;
        Ok(out)
    }

    /// Non-blocking linear All-to-All: issues every send eagerly and
    /// returns a [`CommHandle`] that completes as peers' chunks
    /// arrive. Same wire layout and bitwise-identical result as
    /// [`Communicator::all_to_all`].
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `input.len()` is not divisible by
    /// the world size, plus any transport error during issue.
    pub fn ialltoall(&mut self, input: &[f32]) -> Result<CommHandle, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "ialltoall.issue");
        let n = self.world_size();
        let chunk = self.require_divisible(input.len(), n)?;
        let tag = self.fresh_tag();
        for peer in 0..n {
            if peer != self.rank {
                self.send(peer, tag, input[peer * chunk..(peer + 1) * chunk].to_vec())?;
            }
        }
        let mut out = vec![0.0f32; input.len()];
        out[self.rank * chunk..(self.rank + 1) * chunk]
            .copy_from_slice(&input[self.rank * chunk..(self.rank + 1) * chunk]);
        let pending: Vec<usize> = (0..n).filter(|&s| s != self.rank).collect();
        let mut handle = CommHandle {
            op: "ialltoall",
            tags: vec![tag],
            state: if pending.is_empty() {
                HandleState::Done { out }
            } else {
                HandleState::Linear {
                    tag,
                    chunk,
                    pending,
                    out,
                }
            },
        };
        // Early arrivals may already be parked (a faster peer's sends
        // land before we issue); absorb them now.
        handle.absorb(self)?;
        Ok(handle)
    }

    /// Non-blocking 2DH All-to-All: phases 1–2 are issued eagerly;
    /// phases 3–4 are issued automatically once every intra-node block
    /// has arrived (during `poll` or `wait`). Both phase tags are
    /// allocated up front so every rank's tag counter advances by the
    /// same amount at issue time — tag lockstep across ranks must not
    /// depend on *when* each rank's poll observes the phase
    /// transition.
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `input.len()` is not divisible by
    /// the world size, plus any transport error during issue.
    pub fn ialltoall_2dh(&mut self, input: &[f32]) -> Result<CommHandle, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "ialltoall_2dh.issue");
        let n = self.world_size();
        let m = self.topology.gpus_per_node();
        let nnodes = self.topology.nnodes();
        let chunk = self.require_divisible(input.len(), n)?;
        let node = self.topology.node_of(self.rank);
        let local = self.topology.local_rank(self.rank);
        let tag_intra = self.fresh_tag();
        let tag_inter = self.fresh_tag();

        // Phases 1–2: align and issue the intra-node exchange.
        let aligned = stride_memcpy(input, chunk, m, nnodes);
        let block = nnodes * chunk;
        for dst_local in 0..m {
            if dst_local != local {
                let dst = node * m + dst_local;
                self.send(
                    dst,
                    tag_intra,
                    aligned[dst_local * block..(dst_local + 1) * block].to_vec(),
                )?;
            }
        }
        let mut phase2 = vec![0.0f32; input.len()];
        phase2[local * block..(local + 1) * block]
            .copy_from_slice(&aligned[local * block..(local + 1) * block]);
        let pending_intra: Vec<usize> = (0..m).filter(|&l| l != local).collect();
        let mut handle = CommHandle {
            op: "ialltoall_2dh",
            tags: vec![tag_intra, tag_inter],
            state: HandleState::TwoDh {
                tag_intra,
                tag_inter,
                chunk,
                m,
                nnodes,
                node,
                local,
                phase2,
                pending_intra,
                inter_issued: false,
                out: vec![0.0f32; input.len()],
                pending_inter: (0..nnodes).filter(|&nd| nd != node).collect(),
            },
        };
        // Degenerate topologies (m == 1, nnodes == 1) and early
        // arrivals can already make progress — including issuing the
        // inter-node phase — so absorb before handing the handle back.
        handle.absorb(self)?;
        Ok(handle)
    }

    /// Ring all-gather: returns the concatenation of every rank's
    /// `input` in rank order (layout `(W, shard)`), moving one shard
    /// per ring step.
    ///
    /// # Errors
    ///
    /// Propagates any transport error.
    pub fn all_gather(&mut self, input: &[f32]) -> Result<Vec<f32>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_gather");
        let n = self.world_size();
        let shard = input.len();
        let tag = self.fresh_tag();
        let mut out = vec![0.0f32; n * shard];
        out[self.rank * shard..(self.rank + 1) * shard].copy_from_slice(input);
        let next = (self.rank + 1) % n;
        let prev = (self.rank + n - 1) % n;
        // At step s, forward the shard that originated at rank - s.
        let mut carry = input.to_vec();
        for s in 0..n.saturating_sub(1) {
            self.send(next, tag + s as u64 * 0x10000, carry)?;
            carry = self.recv(prev, tag + s as u64 * 0x10000)?;
            let origin = (self.rank + n - 1 - s) % n;
            out[origin * shard..(origin + 1) * shard].copy_from_slice(&carry);
        }
        let tags: Vec<u64> = (0..n.saturating_sub(1))
            .map(|s| tag + s as u64 * 0x10000)
            .collect();
        self.collective_epilogue(&tags)?;
        Ok(out)
    }

    /// Ring all-reduce (sum): reduce-scatter pass followed by an
    /// all-gather pass over the `(W, shard)` split, each moving
    /// `input.len()/n` per step.
    ///
    /// # Errors
    ///
    /// [`CommError::Indivisible`] if `input.len()` is not divisible by
    /// the world size, plus any transport error.
    pub fn all_reduce_sum(&mut self, input: &[f32]) -> Result<Vec<f32>, CommError> {
        let _span = self.tracer.span(TRACK_COMM, "all_reduce_sum");
        let n = self.world_size();
        if n == 1 {
            return Ok(input.to_vec());
        }
        let shard = self.require_divisible(input.len(), n)?;
        let next = (self.rank + 1) % n;
        let prev = (self.rank + n - 1) % n;
        let mut buf = input.to_vec();
        let tag = self.fresh_tag();
        // Reduce-scatter: after n−1 steps, rank r owns the full sum of
        // shard (r+1) mod n.
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - 1 - s) % n;
            self.send(
                next,
                tag + s as u64 * 0x10000,
                buf[send_idx * shard..(send_idx + 1) * shard].to_vec(),
            )?;
            let payload = self.recv(prev, tag + s as u64 * 0x10000)?;
            for (o, v) in buf[recv_idx * shard..(recv_idx + 1) * shard]
                .iter_mut()
                .zip(payload)
            {
                *o += v;
            }
        }
        // All-gather the reduced shards around the ring.
        let tag_ag = self.fresh_tag();
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            self.send(
                next,
                tag_ag + s as u64 * 0x10000,
                buf[send_idx * shard..(send_idx + 1) * shard].to_vec(),
            )?;
            let payload = self.recv(prev, tag_ag + s as u64 * 0x10000)?;
            buf[recv_idx * shard..(recv_idx + 1) * shard].copy_from_slice(&payload);
        }
        let tags: Vec<u64> = (0..n - 1)
            .flat_map(|s| [tag + s as u64 * 0x10000, tag_ag + s as u64 * 0x10000])
            .collect();
        self.collective_epilogue(&tags)?;
        Ok(buf)
    }
}

/// Progress state of an in-flight non-blocking All-to-All.
enum HandleState {
    /// Linear: waiting on one chunk from each pending source rank.
    Linear {
        tag: u64,
        chunk: usize,
        /// Source ranks whose chunk has not arrived yet.
        pending: Vec<usize>,
        out: Vec<f32>,
    },
    /// 2DH: intra-node exchange in flight, then (once `inter_issued`)
    /// the inter-node exchange.
    TwoDh {
        tag_intra: u64,
        tag_inter: u64,
        chunk: usize,
        m: usize,
        nnodes: usize,
        node: usize,
        local: usize,
        /// Intra-node landing buffer (phase 2 of Figure 15).
        phase2: Vec<f32>,
        /// Local ranks whose intra-node block has not arrived yet.
        pending_intra: Vec<usize>,
        /// Whether phases 3–4 (align + inter-node sends) have run.
        inter_issued: bool,
        out: Vec<f32>,
        /// Nodes whose inter-node block has not arrived yet.
        pending_inter: Vec<usize>,
    },
    /// All chunks arrived; `wait` takes the buffer out.
    Done { out: Vec<f32> },
}

/// An in-flight non-blocking All-to-All issued by
/// [`Communicator::ialltoall`] or [`Communicator::ialltoall_2dh`].
///
/// The handle owns the collective's receive state; pass the same
/// communicator it was issued on back into [`CommHandle::poll`] to
/// make non-blocking progress and [`CommHandle::wait`] to block for
/// completion. All sends were issued eagerly at creation, so peers
/// can complete their receives whether or not this rank ever polls.
///
/// Under the reliability layer, the closing ack/epoch exchange runs
/// in `wait` only — never in `poll` — so every rank executes its
/// epilogues in identical program order (the epoch counters stay in
/// lockstep exactly when ranks wait their handles in the same order,
/// which deterministic rank programs do by construction).
///
/// A handle must be drained with `wait` before the communicator is
/// dropped, even on error paths: an abandoned handle strands its
/// peers' messages in the mailbox and the join-time audit will panic.
pub struct CommHandle {
    op: &'static str,
    /// Every tag this collective sends under; the epilogue in `wait`
    /// retires exactly these from the retransmit log.
    tags: Vec<u64>,
    state: HandleState,
}

impl CommHandle {
    /// The collective this handle tracks (`"ialltoall"` or
    /// `"ialltoall_2dh"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Whether every chunk has arrived. A complete handle's `wait`
    /// returns without blocking on data (the reliability epilogue, if
    /// armed, still runs there).
    pub fn is_complete(&self) -> bool {
        matches!(self.state, HandleState::Done { .. })
    }

    /// Makes non-blocking progress: drains arrivals already queued on
    /// the endpoint, absorbs the chunks this collective was waiting
    /// for, and advances the 2DH phase machine. Returns
    /// [`Self::is_complete`].
    ///
    /// # Errors
    ///
    /// Propagates transport errors from draining or from issuing the
    /// 2DH inter-node phase.
    pub fn poll(&mut self, comm: &mut Communicator) -> Result<bool, CommError> {
        comm.drain_incoming()?;
        self.absorb(comm)?;
        Ok(self.is_complete())
    }

    /// Blocks until the collective completes, closes it (the
    /// reliability epilogue runs under this handle's tags), and
    /// returns the received buffer — bitwise identical to what the
    /// blocking collective would have returned.
    ///
    /// # Errors
    ///
    /// [`CommError::Disconnected`] if a peer exited mid-collective;
    /// [`CommError::Deadlock`] under the deterministic scheduler;
    /// [`CommError::Timeout`] when an armed retry budget is exhausted.
    pub fn wait(mut self, comm: &mut Communicator) -> Result<Vec<f32>, CommError> {
        let span_name = match self.op {
            "ialltoall" => "ialltoall.wait",
            _ => "ialltoall_2dh.wait",
        };
        let _span = comm.tracer.span(TRACK_COMM, span_name);
        loop {
            self.absorb(comm)?;
            // After absorb, an incomplete handle always names a next
            // source: the only source-less intermediate state (2DH
            // with the inter-node phase unissued) is resolved by
            // absorb the moment its last intra-node block lands.
            let Some((src, tag)) = self.next_pending() else {
                break;
            };
            let payload = comm.recv(src, tag)?;
            self.accept(src, tag, payload);
        }
        comm.collective_epilogue(&self.tags)?;
        match self.state {
            HandleState::Done { out } => Ok(out),
            // check:allow(no_panic, the wait loop above only exits in the Done state)
            _ => unreachable!("CommHandle::wait exited its drain loop before completion"),
        }
    }

    /// The next `(src, tag)` this handle is blocked on, if any.
    fn next_pending(&self) -> Option<(usize, u64)> {
        match &self.state {
            HandleState::Linear { tag, pending, .. } => pending.first().map(|&src| (src, *tag)),
            HandleState::TwoDh {
                tag_intra,
                tag_inter,
                m,
                node,
                local,
                pending_intra,
                inter_issued,
                pending_inter,
                ..
            } => {
                if let Some(&src_local) = pending_intra.first() {
                    Some((*node * *m + src_local, *tag_intra))
                } else if *inter_issued {
                    pending_inter
                        .first()
                        .map(|&src_node| (src_node * *m + *local, *tag_inter))
                } else {
                    None
                }
            }
            HandleState::Done { .. } => None,
        }
    }

    /// Accepts a payload received for `(src, tag)` and re-runs the
    /// state machine (the arrival may complete a phase).
    fn accept(&mut self, src: usize, tag: u64, payload: Vec<f32>) {
        match &mut self.state {
            HandleState::Linear {
                chunk,
                pending,
                out,
                ..
            } => {
                out[src * *chunk..(src + 1) * *chunk].copy_from_slice(&payload);
                pending.retain(|&s| s != src);
            }
            HandleState::TwoDh {
                tag_intra,
                chunk,
                m,
                nnodes,
                local,
                phase2,
                pending_intra,
                out,
                pending_inter,
                ..
            } => {
                if tag == *tag_intra {
                    let src_local = src % *m;
                    let block = *nnodes * *chunk;
                    phase2[src_local * block..(src_local + 1) * block].copy_from_slice(&payload);
                    pending_intra.retain(|&l| l != src_local);
                } else {
                    let src_node = (src - *local) / *m;
                    let nblock = *m * *chunk;
                    out[src_node * nblock..(src_node + 1) * nblock].copy_from_slice(&payload);
                    pending_inter.retain(|&nd| nd != src_node);
                }
            }
            HandleState::Done { .. } => {}
        }
        self.promote();
    }

    /// Absorbs every already-parked chunk this handle is waiting for
    /// and advances phases. Never blocks and never runs the epilogue.
    fn absorb(&mut self, comm: &mut Communicator) -> Result<(), CommError> {
        while let Some((src, tag)) = self.next_takeable(comm) {
            // next_takeable only names (src, tag) pairs with a parked
            // message, so the take always yields.
            if let Some(payload) = comm.take_parked(src, tag) {
                self.accept(src, tag, payload);
            }
        }
        self.issue_inter_if_ready(comm)
    }

    /// The first pending `(src, tag)` with a message already parked.
    fn next_takeable(&self, comm: &Communicator) -> Option<(usize, u64)> {
        match &self.state {
            HandleState::Linear { tag, pending, .. } => pending
                .iter()
                .map(|&src| (src, *tag))
                .find(|key| comm.mailbox.contains_key(&(key.0, key.1))),
            HandleState::TwoDh {
                tag_intra,
                tag_inter,
                m,
                node,
                local,
                pending_intra,
                inter_issued,
                pending_inter,
                ..
            } => {
                let intra = pending_intra
                    .iter()
                    .map(|&l| (*node * *m + l, *tag_intra))
                    .find(|key| comm.mailbox.contains_key(&(key.0, key.1)));
                if intra.is_some() {
                    return intra;
                }
                if *inter_issued {
                    pending_inter
                        .iter()
                        .map(|&nd| (nd * *m + *local, *tag_inter))
                        .find(|key| comm.mailbox.contains_key(&(key.0, key.1)))
                } else {
                    None
                }
            }
            HandleState::Done { .. } => None,
        }
    }

    /// Runs 2DH phases 3–4 (align + inter-node sends) once the last
    /// intra-node block has landed, then re-absorbs: inter-node blocks
    /// from faster peers may already be parked.
    fn issue_inter_if_ready(&mut self, comm: &mut Communicator) -> Result<(), CommError> {
        let HandleState::TwoDh {
            tag_inter,
            chunk,
            m,
            nnodes,
            node,
            local,
            phase2,
            pending_intra,
            inter_issued,
            out,
            ..
        } = &mut self.state
        else {
            return Ok(());
        };
        if *inter_issued || !pending_intra.is_empty() {
            return Ok(());
        }
        let phase3 = stride_memcpy(phase2, *chunk, *nnodes, *m);
        let nblock = *m * *chunk;
        for dst_node in 0..*nnodes {
            if dst_node != *node {
                let dst = dst_node * *m + *local;
                comm.send(
                    dst,
                    *tag_inter,
                    phase3[dst_node * nblock..(dst_node + 1) * nblock].to_vec(),
                )?;
            }
        }
        out[*node * nblock..(*node + 1) * nblock]
            .copy_from_slice(&phase3[*node * nblock..(*node + 1) * nblock]);
        *inter_issued = true;
        // The moment the 2DH phase machine promotes from the
        // intra-node to the inter-node exchange — visible on the
        // timeline between the two tag families' flow edges.
        comm.tracer.instant(TRACK_COMM, "2dh.promote");
        self.promote();
        self.absorb(comm)
    }

    /// Moves the state to `Done` when nothing is pending anymore.
    fn promote(&mut self) {
        let finished = match &mut self.state {
            HandleState::Linear { pending, out, .. } => {
                pending.is_empty().then(|| std::mem::take(out))
            }
            HandleState::TwoDh {
                pending_intra,
                inter_issued,
                out,
                pending_inter,
                ..
            } => (*inter_issued && pending_intra.is_empty() && pending_inter.is_empty())
                .then(|| std::mem::take(out)),
            HandleState::Done { .. } => None,
        };
        if let Some(out) = finished {
            self.state = HandleState::Done { out };
        }
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // Mailbox audit at join: a healthy run consumes every message
        // it was sent. Skipped when the run already failed (poisoned
        // or panicking) — stranded messages are expected then.
        if !std::thread::panicking() && !self.poisoned.get() && !self.mailbox.is_empty() {
            let detail: Vec<String> = self
                .mailbox
                .iter()
                .map(|((src, tag), q)| format!("{} from rank {src} under tag {tag}", q.len()))
                .collect();
            // check:allow(no_panic, join-time audit must abort the rank on leaked messages)
            panic!(
                "rank {}: mailbox not empty at join: {}",
                self.rank,
                detail.join(", ")
            );
        }
    }
}

/// Spawns one OS thread per rank and runs `program` on each with its
/// own [`Communicator`]; returns the per-rank results in rank order.
///
/// # Example
///
/// ```
/// use tutel_comm::runtime::run_threaded;
/// use tutel_simgpu::Topology;
///
/// let results = run_threaded(Topology::new(2, 2), |mut comm| {
///     let rank = comm.rank() as f32;
///     comm.all_to_all(&[rank; 4]).unwrap()
/// });
/// // Rank 0 received one element from each rank.
/// assert_eq!(results[0], vec![0.0, 1.0, 2.0, 3.0]);
/// ```
///
/// # Panics
///
/// Panics if any rank's program panics (the panic payload is
/// re-raised on the caller's thread).
pub fn run_threaded<F, R>(topology: Topology, program: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    run_threaded_impl(topology, None, None, program)
}

/// Like [`run_threaded`], but arms each rank's communicator with a
/// [`Tracer`] from `hub`, so every collective records comm-track spans
/// and `(src, dst, tag, seq)`-stamped flow edges on the hub's shared
/// timebase. After the run, merge and export via
/// [`TraceHub::export_rank_jsonls`] or [`TraceHub::merged`].
pub fn run_threaded_traced<F, R>(topology: Topology, hub: &TraceHub, program: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    run_threaded_impl(topology, None, Some(hub), program)
}

/// [`run_threaded_reliable`] with causal tracing armed: retransmits,
/// duplicate discards, and the ack phase all become visible timeline
/// events, which is what lets the straggler analyzer attribute an
/// injected per-rank fault to its source.
pub fn run_threaded_reliable_traced<F, R>(
    topology: Topology,
    cfg: ReliableConfig,
    hub: &TraceHub,
    program: F,
) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    run_threaded_impl(topology, Some(cfg), Some(hub), program)
}

/// Like [`run_threaded`], but arms the reliability layer on every
/// rank: sends are logged for retransmission, receives time out and
/// retry with backoff per `cfg.policy`, each collective ends with an
/// acknowledgement phase, and an optional [`FaultPlan`] injects
/// seeded, replayable faults into data transmissions.
///
/// Fault-free, a reliable run produces bitwise the same collective
/// results as [`run_threaded`]; with a recoverable plan (and a
/// nonzero retry budget) it still does — that is the graceful-
/// degradation property the conformance harness asserts. Unrecoverable
/// plans surface [`CommError::Timeout`] within the policy's bounded
/// wait instead of hanging.
pub fn run_threaded_reliable<F, R>(topology: Topology, cfg: ReliableConfig, program: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    run_threaded_impl(topology, Some(cfg), None, program)
}

fn run_threaded_impl<F, R>(
    topology: Topology,
    cfg: Option<ReliableConfig>,
    hub: Option<&TraceHub>,
    program: F,
) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let n = topology.world_size();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(n));
    let program = &program;
    let senders = &senders;
    let cfg = &cfg;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let comm = Communicator {
                    rank,
                    topology,
                    endpoint: Endpoint::Channel {
                        senders: senders.clone(),
                        receiver,
                        barrier,
                    },
                    mailbox: HashMap::new(),
                    next_tag: 0,
                    poisoned: Cell::new(false),
                    reliability: cfg.as_ref().map(|c| Reliability {
                        policy: c.policy,
                        plan: c.plan,
                        obs: c.telemetry.clone(),
                        state: RefCell::new(RelState::default()),
                    }),
                    tracer: match hub {
                        Some(h) => h.tracer(rank),
                        None => Tracer::disabled(),
                    },
                    send_seqs: RefCell::new(HashMap::new()),
                    sent_elems: Cell::new(0),
                };
                program(comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linear_all_to_all, two_dh_all_to_all, RankBuffers};
    use tutel_obs::trace::TraceHub;

    fn labeled(n: usize, chunk: usize) -> RankBuffers {
        (0..n)
            .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
            .collect()
    }

    #[test]
    fn threaded_linear_matches_sequential() {
        let topo = Topology::new(2, 3);
        let bufs = labeled(6, 4);
        let expect = linear_all_to_all(&bufs);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| {
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn threaded_2dh_matches_sequential() {
        let topo = Topology::new(2, 4);
        let bufs = labeled(8, 3);
        let expect = two_dh_all_to_all(&bufs, &topo);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| {
            comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn threaded_2dh_single_node() {
        let topo = Topology::single_node(4);
        let bufs = labeled(4, 2);
        let expect = linear_all_to_all(&bufs);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| {
            comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, expect);
    }

    /// Ragged per-destination buffers: rank `r` sends `r*n + d` copies
    /// of a labeled value to rank `d`, so every (src, dst) length is
    /// distinct and several are zero.
    fn ragged_sends(n: usize, rank: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|d| vec![(rank * 100 + d) as f32; (rank * n + d) % 7])
            .collect()
    }

    #[test]
    fn threaded_all_to_all_v_delivers_ragged_buffers() {
        let n = 6;
        let topo = Topology::new(2, 3);
        let got = run_threaded(topo, |mut comm| {
            comm.all_to_all_v(&ragged_sends(n, comm.rank())).unwrap()
        });
        for (rank, recvd) in got.into_iter().enumerate() {
            for (src, buf) in recvd.into_iter().enumerate() {
                assert_eq!(buf, ragged_sends(n, src)[rank], "src {src} → dst {rank}");
            }
        }
    }

    #[test]
    fn threaded_all_to_all_v_2dh_matches_linear_v() {
        let n = 8;
        let topo = Topology::new(2, 4);
        let got = run_threaded(topo, |mut comm| {
            let sends = ragged_sends(n, comm.rank());
            let lin = comm.all_to_all_v(&sends).unwrap();
            let hier = comm.all_to_all_v_2dh(&sends).unwrap();
            assert_eq!(lin, hier, "2DH v-route diverged from linear v");
            lin
        });
        for (rank, recvd) in got.into_iter().enumerate() {
            for (src, buf) in recvd.into_iter().enumerate() {
                assert_eq!(buf, ragged_sends(n, src)[rank]);
            }
        }
    }

    #[test]
    fn all_to_all_v_rejects_wrong_send_count() {
        let topo = Topology::single_node(2);
        let got = run_threaded(topo, |mut comm| {
            comm.all_to_all_v(&[vec![1.0]]).is_err() && comm.all_to_all_v_2dh(&[]).is_err()
        });
        assert!(got.into_iter().all(|b| b));
    }

    #[test]
    fn threaded_all_gather() {
        let topo = Topology::new(2, 2);
        let got = run_threaded(topo, |mut comm| {
            let mine = vec![comm.rank() as f32 * 10.0, comm.rank() as f32 * 10.0 + 1.0];
            comm.all_gather(&mine).unwrap()
        });
        let expect: Vec<f32> = vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0];
        for r in got {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn threaded_all_reduce_sum() {
        let topo = Topology::new(1, 4);
        let got = run_threaded(topo, |mut comm| {
            let mine: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
            comm.all_reduce_sum(&mine).unwrap()
        });
        // Sum over ranks of (r*8 + i) = 4i + 8·(0+1+2+3) = 4i + 48.
        let expect: Vec<f32> = (0..8).map(|i| 4.0 * i as f32 + 48.0).collect();
        for r in got {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn sent_payload_elems_counts_data_volume() {
        // A 4-rank linear all-to-all sends chunk-sized payloads to the
        // 3 peers (the self-chunk is a local copy, not a wire send).
        let topo = Topology::single_node(4);
        let chunk = 5;
        let bufs = labeled(4, chunk);
        let bufs_ref = &bufs;
        let counts = run_threaded(topo, |mut comm| {
            let before = comm.sent_payload_elems();
            assert_eq!(before, 0);
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap();
            comm.sent_payload_elems() - before
        });
        for c in counts {
            assert_eq!(c, 3 * chunk as u64);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // Two all-to-alls in a row with different data: tags must keep
        // them separate even though ranks proceed at different speeds.
        let topo = Topology::new(2, 2);
        let a = labeled(4, 2);
        let b: RankBuffers = a
            .iter()
            .map(|r| r.iter().map(|v| v + 1000.0).collect())
            .collect();
        let (ea, eb) = (linear_all_to_all(&a), linear_all_to_all(&b));
        let (ra, rb) = (&a, &b);
        let got = run_threaded(topo, |mut comm| {
            let first = comm.all_to_all(&ra[comm.rank()]).unwrap();
            let second = comm.all_to_all(&rb[comm.rank()]).unwrap();
            (first, second)
        });
        for (rank, (first, second)) in got.into_iter().enumerate() {
            assert_eq!(first, ea[rank]);
            assert_eq!(second, eb[rank]);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let topo = Topology::new(1, 4);
        let counter_ref = &counter;
        run_threaded(topo, |comm| {
            counter_ref.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter_ref.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn single_rank_degenerate_cases() {
        let topo = Topology::single_node(1);
        let got = run_threaded(topo, |mut comm| {
            let a = comm.all_to_all(&[1.0, 2.0]).unwrap();
            let b = comm.all_reduce_sum(&[3.0]).unwrap();
            let c = comm.all_gather(&[4.0]).unwrap();
            (a, b, c)
        });
        assert_eq!(got[0], (vec![1.0, 2.0], vec![3.0], vec![4.0]));
    }

    #[test]
    fn indivisible_buffer_is_a_typed_error() {
        let topo = Topology::new(1, 2);
        let got = run_threaded(topo, |mut comm| comm.all_to_all(&[1.0, 2.0, 3.0]));
        for r in got {
            assert_eq!(r, Err(CommError::Indivisible { len: 3, chunks: 2 }));
        }
    }

    #[test]
    fn send_to_bad_peer_is_a_typed_error() {
        let topo = Topology::single_node(1);
        let got = run_threaded(topo, |comm| comm.send(5, 0, vec![1.0]));
        assert_eq!(got[0], Err(CommError::PeerOutOfRange { peer: 5, world: 1 }));
    }

    #[test]
    fn mailbox_drains_to_empty_after_out_of_order_arrivals() {
        // Rank 1 sends two tags before rank 0 asks for either; rank
        // 0's selective recv parks one, then drains it — the mailbox
        // entry must be removed, not left as an empty Vec.
        let topo = Topology::new(1, 2);
        let got = run_threaded(topo, |mut comm| {
            if comm.rank() == 1 {
                comm.send(0, 7, vec![7.0]).unwrap();
                comm.send(0, 8, vec![8.0]).unwrap();
                0
            } else {
                let b = comm.recv(1, 8).unwrap();
                let a = comm.recv(1, 7).unwrap();
                assert_eq!((a, b), (vec![7.0], vec![8.0]));
                comm.parked_messages()
            }
        });
        assert_eq!(got[0], 0, "drained mailbox entry was not removed");
    }

    #[test]
    fn leaked_mailbox_message_panics_at_join() {
        let topo = Topology::new(1, 2);
        let result = std::panic::catch_unwind(|| {
            run_threaded(topo, |mut comm| {
                if comm.rank() == 1 {
                    // Tag 42 is never consumed; tag 1 unblocks rank 0.
                    comm.send(0, 42, vec![1.0]).unwrap();
                    comm.send(0, 1, vec![2.0]).unwrap();
                } else {
                    comm.recv(1, 1).unwrap();
                }
            })
        });
        let payload = result.expect_err("leak must panic at join");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("mailbox not empty"), "got: {msg}");
    }

    use crate::fault::FaultPlan;
    use tutel_obs::Telemetry;

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            timeout: Duration::from_millis(20),
            max_retries,
            backoff: 2,
        }
    }

    #[test]
    fn reliable_without_faults_matches_plain_run() {
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 3);
        let bufs_ref = &bufs;
        let program = |mut comm: Communicator| {
            let a = comm.all_to_all(&bufs_ref[comm.rank()]).unwrap();
            let b = comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap();
            let c = comm.all_gather(&bufs_ref[comm.rank()]).unwrap();
            let d = comm.all_reduce_sum(&bufs_ref[comm.rank()]).unwrap();
            (a, b, c, d)
        };
        let plain = run_threaded(topo, program);
        let reliable = run_threaded_reliable(topo, ReliableConfig::default(), program);
        assert_eq!(plain, reliable);
    }

    #[test]
    fn injected_faults_recover_to_identical_results() {
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 3);
        let bufs_ref = &bufs;
        let program = |mut comm: Communicator| {
            let a = comm.all_to_all(&bufs_ref[comm.rank()]).unwrap();
            let b = comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap();
            let c = comm.all_gather(&bufs_ref[comm.rank()]).unwrap();
            let d = comm.all_reduce_sum(&bufs_ref[comm.rank()]).unwrap();
            assert_eq!(comm.parked_messages(), 0);
            (a, b, c, d)
        };
        let plain = run_threaded(topo, program);
        let telemetry = Telemetry::enabled();
        let cfg = ReliableConfig {
            policy: fast_policy(6),
            plan: Some(
                FaultPlan::new(0xFA17)
                    .with_drops(20)
                    .with_duplicates(20)
                    .with_delays(20, 2),
            ),
            telemetry: telemetry.clone(),
        };
        let reliable = run_threaded_reliable(topo, cfg, program);
        assert_eq!(plain, reliable, "faulted run diverged from plain run");
        let injected = telemetry
            .counter_value("comm.retry.injected_drops")
            .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_dups")
                .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_delays")
                .unwrap_or(0);
        assert!(injected > 0, "plan injected nothing — test is vacuous");
        assert_eq!(
            telemetry.counter_value("comm.retry.timeouts").unwrap_or(0),
            0,
            "recoverable plan must not exhaust any retry budget"
        );
        // The ack phase mirrors counters as gauges of the same name.
        assert!(telemetry.gauge_value("comm.retry.injected_drops").is_some());
    }

    #[test]
    fn injected_faults_recover_ragged_v_collectives() {
        // The dropless serve path rides these: drops/dups/delays on
        // variable-length (including empty) payloads must recover to
        // the bitwise fault-free result.
        let topo = Topology::new(2, 2);
        let program = |mut comm: Communicator| {
            let sends = ragged_sends(4, comm.rank());
            let a = comm.all_to_all_v(&sends).unwrap();
            let b = comm.all_to_all_v_2dh(&sends).unwrap();
            (a, b)
        };
        let plain = run_threaded(topo, program);
        let telemetry = Telemetry::enabled();
        let cfg = ReliableConfig {
            policy: fast_policy(6),
            plan: Some(
                FaultPlan::new(0xD0D0)
                    .with_drops(20)
                    .with_duplicates(20)
                    .with_delays(20, 2),
            ),
            telemetry: telemetry.clone(),
        };
        let reliable = run_threaded_reliable(topo, cfg, program);
        assert_eq!(plain, reliable, "faulted ragged run diverged");
        let injected = telemetry
            .counter_value("comm.retry.injected_drops")
            .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_dups")
                .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_delays")
                .unwrap_or(0);
        assert!(injected > 0, "plan injected nothing — test is vacuous");
    }

    #[test]
    fn exhausted_retries_fail_with_typed_timeout_and_no_leak() {
        let topo = Topology::new(1, 2);
        let telemetry = Telemetry::enabled();
        let cfg = ReliableConfig {
            policy: fast_policy(0),
            plan: Some(FaultPlan::new(9).with_drops(100)),
            telemetry: telemetry.clone(),
        };
        let started = std::time::Instant::now();
        let got = run_threaded_reliable(topo, cfg, |mut comm| {
            let r = comm.all_to_all(&[comm.rank() as f32; 2]);
            (r, comm.parked_messages())
        });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "clean failure must be bounded by the timeout, not a hang"
        );
        for (rank, (result, parked)) in got.into_iter().enumerate() {
            match result {
                Err(CommError::Timeout { attempts, .. }) => assert_eq!(attempts, 1),
                other => panic!("rank {rank}: expected Timeout, got {other:?}"),
            }
            assert_eq!(parked, 0, "rank {rank}: failed collective leaked mailbox");
        }
        assert!(telemetry.counter_value("comm.retry.timeouts").unwrap_or(0) >= 2);
    }

    #[test]
    fn duplicates_are_discarded_by_receiver_dedupe() {
        let topo = Topology::new(1, 2);
        let bufs = labeled(2, 4);
        let bufs_ref = &bufs;
        let program = |mut comm: Communicator| comm.all_to_all(&bufs_ref[comm.rank()]).unwrap();
        let plain = run_threaded(topo, program);
        let telemetry = Telemetry::enabled();
        let cfg = ReliableConfig {
            policy: fast_policy(4),
            plan: Some(FaultPlan::new(4).with_duplicates(100)),
            telemetry: telemetry.clone(),
        };
        let reliable = run_threaded_reliable(topo, cfg, program);
        assert_eq!(plain, reliable);
        assert!(
            telemetry
                .counter_value("comm.retry.dup_discards")
                .unwrap_or(0)
                > 0,
            "100% duplication must exercise the dedupe path"
        );
    }

    #[test]
    fn nonblocking_linear_matches_blocking_bitwise() {
        let topo = Topology::new(2, 3);
        let bufs = labeled(6, 4);
        let bufs_ref = &bufs;
        let blocking = run_threaded(topo, |mut comm| {
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
        });
        let nonblocking = run_threaded(topo, |mut comm| {
            let mut h = comm.ialltoall(&bufs_ref[comm.rank()]).unwrap();
            // A few polls are legal at any point before the wait.
            let _ = h.poll(&mut comm).unwrap();
            let _ = h.poll(&mut comm).unwrap();
            let out = h.wait(&mut comm).unwrap();
            assert_eq!(comm.parked_messages(), 0);
            out
        });
        assert_eq!(blocking, nonblocking);
    }

    #[test]
    fn nonblocking_2dh_matches_blocking_bitwise() {
        let topo = Topology::new(2, 4);
        let bufs = labeled(8, 2);
        let bufs_ref = &bufs;
        let blocking = run_threaded(topo, |mut comm| {
            comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap()
        });
        let nonblocking = run_threaded(topo, |mut comm| {
            let mut h = comm.ialltoall_2dh(&bufs_ref[comm.rank()]).unwrap();
            while !h.poll(&mut comm).unwrap() {
                std::thread::yield_now();
            }
            assert!(h.is_complete());
            let out = h.wait(&mut comm).unwrap();
            assert_eq!(comm.parked_messages(), 0);
            out
        });
        assert_eq!(blocking, nonblocking);
    }

    #[test]
    fn nonblocking_2dh_single_node_and_single_rank() {
        for topo in [Topology::single_node(1), Topology::single_node(4)] {
            let n = topo.world_size();
            let bufs = labeled(n, 3);
            let bufs_ref = &bufs;
            let blocking = run_threaded(topo, |mut comm| {
                comm.all_to_all_2dh(&bufs_ref[comm.rank()]).unwrap()
            });
            let nonblocking = run_threaded(topo, |mut comm| {
                let h = comm.ialltoall_2dh(&bufs_ref[comm.rank()]).unwrap();
                h.wait(&mut comm).unwrap()
            });
            assert_eq!(blocking, nonblocking, "world {n}");
        }
    }

    #[test]
    fn overlapped_handles_do_not_cross_talk() {
        // Two collectives in flight at once, drained in issue order,
        // with a third blocking collective afterwards on the same
        // communicator: payloads must not mix and the mailbox must be
        // clean at join.
        let topo = Topology::new(2, 2);
        let n = topo.world_size();
        let expected_a = run_threaded(topo, |mut comm| {
            comm.all_to_all(&vec![comm.rank() as f32; n * 2]).unwrap()
        });
        let expected_b = run_threaded(topo, |mut comm| {
            comm.all_to_all_2dh(&vec![100.0 + comm.rank() as f32; n * 2])
                .unwrap()
        });
        let got = run_threaded(topo, |mut comm| {
            let a_in = vec![comm.rank() as f32; n * 2];
            let b_in = vec![100.0 + comm.rank() as f32; n * 2];
            let mut ha = comm.ialltoall(&a_in).unwrap();
            let mut hb = comm.ialltoall_2dh(&b_in).unwrap();
            let _ = hb.poll(&mut comm).unwrap();
            let _ = ha.poll(&mut comm).unwrap();
            let a = ha.wait(&mut comm).unwrap();
            let b = hb.wait(&mut comm).unwrap();
            let c = comm.all_to_all(&a_in).unwrap();
            assert_eq!(comm.parked_messages(), 0);
            (a, b, c)
        });
        for (rank, (a, b, c)) in got.into_iter().enumerate() {
            assert_eq!(a, expected_a[rank], "rank {rank}: first handle");
            assert_eq!(b, expected_b[rank], "rank {rank}: second handle");
            assert_eq!(c, expected_a[rank], "rank {rank}: trailing blocking op");
        }
    }

    #[test]
    fn reliable_ialltoall_recovers_with_second_handle_in_flight() {
        // The overlap regression the tag-selective epilogue exists
        // for: handle B's sends are logged before handle A's epilogue
        // runs, so A's epilogue must not erase B's retransmit entries
        // — a peer that lost B's data recovers it by retry after A
        // closed.
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 3);
        let bufs_ref = &bufs;
        let program = |mut comm: Communicator| {
            let ha = comm.ialltoall(&bufs_ref[comm.rank()]).unwrap();
            let hb = comm.ialltoall(&bufs_ref[comm.rank()]).unwrap();
            let a = ha.wait(&mut comm).unwrap();
            let b = hb.wait(&mut comm).unwrap();
            assert_eq!(comm.parked_messages(), 0);
            (a, b)
        };
        let plain = run_threaded(topo, program);
        let telemetry = Telemetry::enabled();
        let cfg = ReliableConfig {
            policy: fast_policy(6),
            plan: Some(
                FaultPlan::new(0x0B5E)
                    .with_drops(30)
                    .with_duplicates(20)
                    .with_delays(20, 2),
            ),
            telemetry: telemetry.clone(),
        };
        let reliable = run_threaded_reliable(topo, cfg, program);
        assert_eq!(plain, reliable, "faulted overlapped run diverged");
        let injected = telemetry
            .counter_value("comm.retry.injected_drops")
            .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_dups")
                .unwrap_or(0)
            + telemetry
                .counter_value("comm.retry.injected_delays")
                .unwrap_or(0);
        assert!(injected > 0, "plan injected nothing — test is vacuous");
        assert_eq!(
            telemetry.counter_value("comm.retry.timeouts").unwrap_or(0),
            0,
            "recoverable plan must not exhaust any retry budget"
        );
    }

    #[test]
    fn reliable_nonblocking_2dh_matches_plain() {
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 3);
        let bufs_ref = &bufs;
        let program = |mut comm: Communicator| {
            let h = comm.ialltoall_2dh(&bufs_ref[comm.rank()]).unwrap();
            h.wait(&mut comm).unwrap()
        };
        let plain = run_threaded(topo, program);
        let cfg = ReliableConfig {
            policy: fast_policy(6),
            plan: Some(FaultPlan::new(0x2D).with_drops(25).with_delays(25, 2)),
            telemetry: Telemetry::enabled(),
        };
        let reliable = run_threaded_reliable(topo, cfg, program);
        assert_eq!(plain, reliable);
    }

    #[test]
    fn traced_all_to_all_binds_every_send_to_a_recv() {
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 2);
        let bufs_ref = &bufs;
        let hub = TraceHub::new(4);
        let got = run_threaded_traced(topo, &hub, |mut comm| {
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, linear_all_to_all(&bufs));
        let merged = hub.merged();
        let inv = merged.check_invariants().expect("clean traced run");
        // 4 ranks each send to 3 peers, exactly once.
        assert_eq!(inv.edges, 12);
        assert_eq!(inv.cross_rank_edges, 12);
        assert_eq!(inv.retry_edges, 0);
        // One all_to_all span per rank (plus nothing else on an
        // unreliable run — no ack phase).
        assert_eq!(inv.spans, 4);
        for edge in merged.flow_edges() {
            assert!(edge.accepted, "clean run must accept every edge");
            assert!(edge.latency_us() >= 0.0);
            assert_eq!(edge.seq, 0, "single transmission per identity");
        }
    }

    #[test]
    fn traced_2dh_handle_records_promotion_instant() {
        let topo = Topology::new(2, 2);
        let bufs = labeled(4, 2);
        let bufs_ref = &bufs;
        let hub = TraceHub::new(4);
        run_threaded_traced(topo, &hub, |mut comm| {
            let h = comm.ialltoall_2dh(&bufs_ref[comm.rank()]).unwrap();
            h.wait(&mut comm).unwrap()
        });
        let merged = hub.merged();
        merged.check_invariants().expect("clean traced run");
        for rank in &merged.ranks {
            let promoted = rank.events.iter().any(|e| {
                matches!(e, tutel_obs::TraceEvent::Instant { name, .. } if name == "2dh.promote")
            });
            assert!(promoted, "rank {} never promoted phases", rank.rank);
        }
    }

    #[test]
    fn traced_duplicates_become_distinct_rejected_edges() {
        let topo = Topology::new(1, 2);
        let bufs = labeled(2, 4);
        let bufs_ref = &bufs;
        let hub = TraceHub::new(2);
        let cfg = ReliableConfig {
            policy: fast_policy(4),
            plan: Some(FaultPlan::new(4).with_duplicates(100)),
            telemetry: Telemetry::disabled(),
        };
        let got = run_threaded_reliable_traced(topo, cfg, &hub, |mut comm| {
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, linear_all_to_all(&bufs));
        let merged = hub.merged();
        merged.check_invariants().expect("duplicated traced run");
        let edges = merged.flow_edges();
        let dup_rejected = edges
            .iter()
            .filter(|e| e.kind == FlowKind::Data && !e.accepted)
            .count();
        // Each rank's one data send was transmitted twice: the second
        // copy must appear as its own (seq 1) edge, marked rejected.
        assert_eq!(dup_rejected, 2);
        assert!(edges.iter().any(|e| e.kind == FlowKind::Data && e.seq == 1));
    }

    #[test]
    fn traced_delays_keep_the_logical_send_stamp() {
        let topo = Topology::new(1, 2);
        let bufs = labeled(2, 4);
        let bufs_ref = &bufs;
        let hub = TraceHub::new(2);
        let cfg = ReliableConfig {
            // A generous timeout so no retry fires: the delayed copy
            // itself (flushed at rank 1's ack phase) is the accepted
            // delivery.
            policy: RetryPolicy {
                timeout: Duration::from_millis(500),
                max_retries: 2,
                backoff: 2,
            },
            plan: Some(FaultPlan::new(4).with_delays(100, 1).only_from(1)),
            telemetry: Telemetry::disabled(),
        };
        let got = run_threaded_reliable_traced(topo, cfg, &hub, |mut comm| {
            comm.all_to_all(&bufs_ref[comm.rank()]).unwrap()
        });
        assert_eq!(got, linear_all_to_all(&bufs));
        let merged = hub.merged();
        // The flush reuses the seq assigned at logical send time, so
        // the delayed copy still binds exactly one send/recv pair.
        merged.check_invariants().expect("delayed traced run");
        let delayed: Vec<_> = merged
            .flow_edges()
            .into_iter()
            .filter(|e| e.kind == FlowKind::Data && e.src == 1)
            .collect();
        assert_eq!(delayed.len(), 1);
        assert!(delayed[0].accepted);
        assert_eq!(delayed[0].seq, 0);
        // The edge spans the whole in-flight window: stamped when
        // rank 1 logically sent, received after the (late) flush.
        assert!(delayed[0].latency_us() >= 0.0);
    }

    #[test]
    fn untraced_runs_never_touch_seq_counters() {
        let topo = Topology::new(1, 2);
        let counts = run_threaded(topo, |mut comm| {
            comm.all_to_all(&[comm.rank() as f32; 2]).unwrap();
            comm.send_seqs.borrow().len()
        });
        assert_eq!(counts, vec![0, 0]);
    }
}
