//! A threaded message-passing runtime: the NCCL-equivalent substrate.
//!
//! The sequential functions in this crate ([`crate::linear_all_to_all`]
//! etc.) compute collectives over all ranks at once — convenient for
//! tests, but nothing like how a real cluster executes. This module
//! runs every simulated rank on its **own OS thread** with only
//! point-to-point channels between them (MPMC channels), and
//! implements the collectives as each rank's local program — exactly
//! the structure of Algorithm 1 and Algorithm 3 in the paper:
//!
//! * [`Communicator::all_to_all`] — the linear send/recv loop;
//! * [`Communicator::all_to_all_2dh`] — stride-align, intra-node
//!   exchange, align, inter-node exchange (Figure 15), with each rank
//!   only ever touching its own buffers;
//! * ring [`Communicator::all_gather`] and
//!   [`Communicator::all_reduce_sum`].
//!
//! Unit tests assert bit-equality against the sequential reference
//! implementations.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use tutel_simgpu::Topology;

use crate::stride_memcpy;

/// A tagged point-to-point message.
struct Message {
    src: usize,
    tag: u64,
    payload: Vec<f32>,
}

/// One rank's endpoint in a [`ThreadedCluster`] run: point-to-point
/// sends/receives plus the collectives built on them.
///
/// Not `Clone`: exactly one communicator exists per rank per run.
pub struct Communicator {
    rank: usize,
    topology: Topology,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order arrivals parked until requested.
    mailbox: HashMap<(usize, u64), Vec<Vec<f32>>>,
    /// Monotone per-collective tag so concurrent collectives on the
    /// same communicator pair never mix messages.
    next_tag: u64,
    barrier: Arc<Barrier>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Sends `payload` to `peer` under `tag`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range or the run has been torn down.
    pub fn send(&self, peer: usize, tag: u64, payload: Vec<f32>) {
        self.senders[peer]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("peer thread is alive for the duration of the run");
    }

    /// Receives the next message from `src` under `tag`, parking any
    /// other arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the channel disconnects (a peer panicked).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f32> {
        if let Some(queue) = self.mailbox.get_mut(&(src, tag)) {
            if !queue.is_empty() {
                return queue.remove(0);
            }
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("peer thread panicked mid-collective");
            if msg.src == src && msg.tag == tag {
                return msg.payload;
            }
            self.mailbox
                .entry((msg.src, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }

    /// Blocks until every rank reaches the same barrier call.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    fn fresh_tag(&mut self) -> u64 {
        self.next_tag += 1;
        self.next_tag
    }

    /// Linear All-to-All (Algorithm 1): splits `input` into `W` equal
    /// chunks, sends chunk `d` to rank `d`, returns the received chunks
    /// in source order.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not divisible by the world size.
    pub fn all_to_all(&mut self, input: &[f32]) -> Vec<f32> {
        let n = self.world_size();
        assert!(
            input.len().is_multiple_of(n),
            "buffer of {} not divisible into {n} chunks",
            input.len()
        );
        let chunk = input.len() / n;
        let tag = self.fresh_tag();
        for peer in 0..n {
            if peer != self.rank {
                self.send(peer, tag, input[peer * chunk..(peer + 1) * chunk].to_vec());
            }
        }
        let mut out = vec![0.0f32; input.len()];
        out[self.rank * chunk..(self.rank + 1) * chunk]
            .copy_from_slice(&input[self.rank * chunk..(self.rank + 1) * chunk]);
        for src in 0..n {
            if src != self.rank {
                let payload = self.recv(src, tag);
                out[src * chunk..(src + 1) * chunk].copy_from_slice(&payload);
            }
        }
        out
    }

    /// 2DH All-to-All (Algorithm 3): each rank runs the four phases of
    /// Figure 15 locally, exchanging only intra-node blocks in phase 2
    /// and inter-node blocks in phase 4.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not divisible by the world size.
    pub fn all_to_all_2dh(&mut self, input: &[f32]) -> Vec<f32> {
        let n = self.world_size();
        let m = self.topology.gpus_per_node();
        let nnodes = self.topology.nnodes();
        assert!(
            input.len().is_multiple_of(n),
            "buffer of {} not divisible into {n} chunks",
            input.len()
        );
        let chunk = input.len() / n;
        let node = self.topology.node_of(self.rank);
        let local = self.topology.local_rank(self.rank);

        // Phase 1: align chunks sharing a local destination GPU.
        let aligned = stride_memcpy(input, chunk, m, nnodes);

        // Phase 2: intra-node All-to-All of nnodes·chunk blocks.
        let tag = self.fresh_tag();
        let block = nnodes * chunk;
        for dst_local in 0..m {
            if dst_local != local {
                let dst = node * m + dst_local;
                self.send(
                    dst,
                    tag,
                    aligned[dst_local * block..(dst_local + 1) * block].to_vec(),
                );
            }
        }
        let mut phase2 = vec![0.0f32; input.len()];
        phase2[local * block..(local + 1) * block]
            .copy_from_slice(&aligned[local * block..(local + 1) * block]);
        for src_local in 0..m {
            if src_local != local {
                let src = node * m + src_local;
                let payload = self.recv(src, tag);
                phase2[src_local * block..(src_local + 1) * block].copy_from_slice(&payload);
            }
        }

        // Phase 3: align chunks sharing a remote destination node.
        let phase3 = stride_memcpy(&phase2, chunk, nnodes, m);

        // Phase 4: inter-node All-to-All among same-local-rank peers.
        let tag = self.fresh_tag();
        let nblock = m * chunk;
        for dst_node in 0..nnodes {
            if dst_node != node {
                let dst = dst_node * m + local;
                self.send(
                    dst,
                    tag,
                    phase3[dst_node * nblock..(dst_node + 1) * nblock].to_vec(),
                );
            }
        }
        let mut out = vec![0.0f32; input.len()];
        out[node * nblock..(node + 1) * nblock]
            .copy_from_slice(&phase3[node * nblock..(node + 1) * nblock]);
        for src_node in 0..nnodes {
            if src_node != node {
                let src = src_node * m + local;
                let payload = self.recv(src, tag);
                out[src_node * nblock..(src_node + 1) * nblock].copy_from_slice(&payload);
            }
        }
        out
    }

    /// Ring all-gather: returns the concatenation of every rank's
    /// `input` in rank order, moving one shard per ring step.
    pub fn all_gather(&mut self, input: &[f32]) -> Vec<f32> {
        let n = self.world_size();
        let shard = input.len();
        let tag = self.fresh_tag();
        let mut out = vec![0.0f32; n * shard];
        out[self.rank * shard..(self.rank + 1) * shard].copy_from_slice(input);
        let next = (self.rank + 1) % n;
        let prev = (self.rank + n - 1) % n;
        // At step s, forward the shard that originated at rank - s.
        let mut carry = input.to_vec();
        for s in 0..n.saturating_sub(1) {
            self.send(next, tag + s as u64 * 0x10000, carry);
            carry = self.recv(prev, tag + s as u64 * 0x10000);
            let origin = (self.rank + n - 1 - s) % n;
            out[origin * shard..(origin + 1) * shard].copy_from_slice(&carry);
        }
        out
    }

    /// Ring all-reduce (sum): reduce-scatter pass followed by an
    /// all-gather pass, each moving `input.len()/n` per step.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not divisible by the world size.
    pub fn all_reduce_sum(&mut self, input: &[f32]) -> Vec<f32> {
        let n = self.world_size();
        if n == 1 {
            return input.to_vec();
        }
        assert!(
            input.len().is_multiple_of(n),
            "buffer of {} not divisible into {n} shards",
            input.len()
        );
        let shard = input.len() / n;
        let next = (self.rank + 1) % n;
        let prev = (self.rank + n - 1) % n;
        let mut buf = input.to_vec();
        let tag = self.fresh_tag();
        // Reduce-scatter: after n−1 steps, rank r owns the full sum of
        // shard (r+1) mod n.
        for s in 0..n - 1 {
            let send_idx = (self.rank + n - s) % n;
            let recv_idx = (self.rank + n - 1 - s) % n;
            self.send(
                next,
                tag + s as u64 * 0x10000,
                buf[send_idx * shard..(send_idx + 1) * shard].to_vec(),
            );
            let payload = self.recv(prev, tag + s as u64 * 0x10000);
            for (o, v) in buf[recv_idx * shard..(recv_idx + 1) * shard]
                .iter_mut()
                .zip(payload)
            {
                *o += v;
            }
        }
        // All-gather the reduced shards around the ring.
        let tag = self.fresh_tag();
        for s in 0..n - 1 {
            let send_idx = (self.rank + 1 + n - s) % n;
            let recv_idx = (self.rank + n - s) % n;
            self.send(
                next,
                tag + s as u64 * 0x10000,
                buf[send_idx * shard..(send_idx + 1) * shard].to_vec(),
            );
            let payload = self.recv(prev, tag + s as u64 * 0x10000);
            buf[recv_idx * shard..(recv_idx + 1) * shard].copy_from_slice(&payload);
        }
        buf
    }
}

/// Spawns one OS thread per rank and runs `program` on each with its
/// own [`Communicator`]; returns the per-rank results in rank order.
///
/// # Example
///
/// ```
/// use tutel_comm::runtime::run_threaded;
/// use tutel_simgpu::Topology;
///
/// let results = run_threaded(Topology::new(2, 2), |mut comm| {
///     let rank = comm.rank() as f32;
///     comm.all_to_all(&[rank; 4])
/// });
/// // Rank 0 received one element from each rank.
/// assert_eq!(results[0], vec![0.0, 1.0, 2.0, 3.0]);
/// ```
///
/// # Panics
///
/// Panics if any rank's program panics.
pub fn run_threaded<F, R>(topology: Topology, program: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let n = topology.world_size();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let barrier = Arc::new(Barrier::new(n));
    let program = &program;
    let senders = &senders;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let comm = Communicator {
                    rank,
                    topology,
                    senders: senders.clone(),
                    receiver,
                    mailbox: HashMap::new(),
                    next_tag: 0,
                    barrier,
                };
                program(comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank program panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linear_all_to_all, two_dh_all_to_all, RankBuffers};

    fn labeled(n: usize, chunk: usize) -> RankBuffers {
        (0..n)
            .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
            .collect()
    }

    #[test]
    fn threaded_linear_matches_sequential() {
        let topo = Topology::new(2, 3);
        let bufs = labeled(6, 4);
        let expect = linear_all_to_all(&bufs);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| comm.all_to_all(&bufs_ref[comm.rank()]));
        assert_eq!(got, expect);
    }

    #[test]
    fn threaded_2dh_matches_sequential() {
        let topo = Topology::new(2, 4);
        let bufs = labeled(8, 3);
        let expect = two_dh_all_to_all(&bufs, &topo);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| comm.all_to_all_2dh(&bufs_ref[comm.rank()]));
        assert_eq!(got, expect);
    }

    #[test]
    fn threaded_2dh_single_node() {
        let topo = Topology::single_node(4);
        let bufs = labeled(4, 2);
        let expect = linear_all_to_all(&bufs);
        let bufs_ref = &bufs;
        let got = run_threaded(topo, |mut comm| comm.all_to_all_2dh(&bufs_ref[comm.rank()]));
        assert_eq!(got, expect);
    }

    #[test]
    fn threaded_all_gather() {
        let topo = Topology::new(2, 2);
        let got = run_threaded(topo, |mut comm| {
            let mine = vec![comm.rank() as f32 * 10.0, comm.rank() as f32 * 10.0 + 1.0];
            comm.all_gather(&mine)
        });
        let expect: Vec<f32> = vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0];
        for r in got {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn threaded_all_reduce_sum() {
        let topo = Topology::new(1, 4);
        let got = run_threaded(topo, |mut comm| {
            let mine: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
            comm.all_reduce_sum(&mine)
        });
        // Sum over ranks of (r*8 + i) = 4i + 8·(0+1+2+3) = 4i + 48.
        let expect: Vec<f32> = (0..8).map(|i| 4.0 * i as f32 + 48.0).collect();
        for r in got {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // Two all-to-alls in a row with different data: tags must keep
        // them separate even though ranks proceed at different speeds.
        let topo = Topology::new(2, 2);
        let a = labeled(4, 2);
        let b: RankBuffers = a
            .iter()
            .map(|r| r.iter().map(|v| v + 1000.0).collect())
            .collect();
        let (ea, eb) = (linear_all_to_all(&a), linear_all_to_all(&b));
        let (ra, rb) = (&a, &b);
        let got = run_threaded(topo, |mut comm| {
            let first = comm.all_to_all(&ra[comm.rank()]);
            let second = comm.all_to_all(&rb[comm.rank()]);
            (first, second)
        });
        for (rank, (first, second)) in got.into_iter().enumerate() {
            assert_eq!(first, ea[rank]);
            assert_eq!(second, eb[rank]);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let topo = Topology::new(1, 4);
        let counter_ref = &counter;
        run_threaded(topo, |comm| {
            counter_ref.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter_ref.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn single_rank_degenerate_cases() {
        let topo = Topology::single_node(1);
        let got = run_threaded(topo, |mut comm| {
            let a = comm.all_to_all(&[1.0, 2.0]);
            let b = comm.all_reduce_sum(&[3.0]);
            let c = comm.all_gather(&[4.0]);
            (a, b, c)
        });
        assert_eq!(got[0], (vec![1.0, 2.0], vec![3.0], vec![4.0]));
    }
}
