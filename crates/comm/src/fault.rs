//! Seeded, replayable fault injection for the comm runtime.
//!
//! A [`FaultPlan`] is a *pure function* from a message identity
//! `(src, dst, tag)` to a [`FaultAction`]: the decision is a hash of
//! the plan's seed and the identity, never of wall-clock time or
//! delivery order. Replaying the same seed against the same program
//! therefore injects exactly the same faults — which is what lets the
//! conformance harness assert that a *specific* dropped or duplicated
//! delivery is recovered (or surfaced as a typed error)
//! deterministically.
//!
//! Two layers consume plans:
//!
//! * the channel-backed runtime ([`crate::runtime::run_threaded_reliable`])
//!   applies the action at *send* time: `Drop` withholds the first
//!   transmission (recoverable via the retry protocol), `Duplicate`
//!   transmits twice (exercising receiver dedupe), `Delay` holds the
//!   message back until the collective's acknowledgement phase
//!   (exercising late, out-of-order arrival);
//! * the deterministic scheduler ([`crate::sched`], under
//!   `feature = "check-sched"`) applies the action at *delivery* time,
//!   where `Delay(k)` postpones a delivery by `k` scheduler steps.

/// What the fault layer does to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Transmit normally.
    Deliver,
    /// Lose the first transmission (the retransmit path is exempt).
    Drop,
    /// Transmit two copies.
    Duplicate,
    /// Hold the message back: in the threaded runtime until the
    /// collective's ack phase, under the scheduler for this many
    /// delivery steps.
    Delay(u32),
}

/// SplitMix64 finalizer over the fault identity: the plan's whole
/// entropy source, so one seed names one complete fault pattern.
fn mix(seed: u64, src: usize, dst: usize, tag: u64) -> u64 {
    let mut z = seed
        .wrapping_add((src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add((dst as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(tag.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic fault schedule over point-to-point messages.
///
/// Percentages are applied per message identity; they need not sum to
/// 100 — the remainder delivers normally.
///
/// # Example
///
/// ```
/// use tutel_comm::fault::{FaultAction, FaultPlan};
///
/// let plan = FaultPlan::new(42).with_drops(100);
/// assert_eq!(plan.action(0, 1, 7), FaultAction::Drop);
/// // Replayable: the same seed always gives the same action.
/// let replay = FaultPlan::new(42).with_drops(100);
/// assert_eq!(plan.action(0, 1, 7), replay.action(0, 1, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_pct: u8,
    dup_pct: u8,
    delay_pct: u8,
    delay_steps: u32,
    /// When set, only messages *sent by* this rank are faulted;
    /// everything else delivers normally.
    only_src: Option<usize>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_pct: 0,
            dup_pct: 0,
            delay_pct: 0,
            delay_steps: 2,
            only_src: None,
        }
    }

    /// The seed that replays this plan.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drops `pct`% of messages (clamped to 100).
    pub fn with_drops(mut self, pct: u8) -> Self {
        self.drop_pct = pct.min(100);
        self
    }

    /// Duplicates `pct`% of messages (clamped to 100).
    pub fn with_duplicates(mut self, pct: u8) -> Self {
        self.dup_pct = pct.min(100);
        self
    }

    /// Delays `pct`% of messages (clamped to 100) by `steps` scheduler
    /// steps (the threaded runtime ignores the magnitude and holds the
    /// message until the ack phase).
    pub fn with_delays(mut self, pct: u8, steps: u32) -> Self {
        self.delay_pct = pct.min(100);
        self.delay_steps = steps;
        self
    }

    /// Restricts the plan to messages *sent by* `rank`: every other
    /// source delivers normally. This is how a single-rank fault
    /// scenario is staged (e.g. "rank 1 is slow") so the trace
    /// analyzer's attribution can be checked against a known culprit.
    pub fn only_from(mut self, rank: usize) -> Self {
        self.only_src = Some(rank);
        self
    }

    /// True when no fault class is enabled.
    pub fn is_noop(&self) -> bool {
        self.drop_pct == 0 && self.dup_pct == 0 && self.delay_pct == 0
    }

    /// The action for one message identity — a pure function of
    /// `(seed, src, dst, tag)` (and the source filter, if any).
    pub fn action(&self, src: usize, dst: usize, tag: u64) -> FaultAction {
        if self.is_noop() {
            return FaultAction::Deliver;
        }
        if let Some(only) = self.only_src {
            if src != only {
                return FaultAction::Deliver;
            }
        }
        let roll = (mix(self.seed, src, dst, tag) % 100) as u8;
        let drop_end = self.drop_pct;
        let dup_end = drop_end.saturating_add(self.dup_pct);
        let delay_end = dup_end.saturating_add(self.delay_pct);
        if roll < drop_end {
            FaultAction::Drop
        } else if roll < dup_end {
            FaultAction::Duplicate
        } else if roll < delay_end {
            FaultAction::Delay(self.delay_steps)
        } else {
            FaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_always_delivers() {
        let plan = FaultPlan::new(7);
        for tag in 0..100 {
            assert_eq!(plan.action(0, 1, tag), FaultAction::Deliver);
        }
    }

    #[test]
    fn actions_are_deterministic_per_identity() {
        let plan = FaultPlan::new(11).with_drops(30).with_duplicates(30);
        for src in 0..4 {
            for dst in 0..4 {
                for tag in 0..16 {
                    assert_eq!(
                        plan.action(src, dst, tag),
                        plan.action(src, dst, tag),
                        "({src},{dst},{tag})"
                    );
                }
            }
        }
    }

    #[test]
    fn rates_roughly_match_percentages() {
        let plan = FaultPlan::new(3).with_drops(25).with_delays(25, 1);
        let mut drops = 0;
        let mut delays = 0;
        let total = 4000;
        for tag in 0..total {
            match plan.action(0, 1, tag) {
                FaultAction::Drop => drops += 1,
                FaultAction::Delay(_) => delays += 1,
                _ => {}
            }
        }
        let quarter = total as i64 / 4;
        assert!((drops - quarter).abs() < quarter / 2, "drops {drops}");
        assert!((delays - quarter).abs() < quarter / 2, "delays {delays}");
    }

    #[test]
    fn only_from_faults_one_source_rank() {
        let plan = FaultPlan::new(9).with_delays(100, 1).only_from(1);
        for dst in 0..4 {
            for tag in 0..16 {
                assert_eq!(plan.action(1, dst, tag), FaultAction::Delay(1));
                assert_eq!(plan.action(0, dst, tag), FaultAction::Deliver);
                assert_eq!(plan.action(2, dst, tag), FaultAction::Deliver);
            }
        }
    }

    #[test]
    fn different_seeds_give_different_patterns() {
        let a = FaultPlan::new(1).with_drops(50);
        let b = FaultPlan::new(2).with_drops(50);
        let differs = (0..64).any(|tag| a.action(0, 1, tag) != b.action(0, 1, tag));
        assert!(differs, "seeds 1 and 2 injected identical fault patterns");
    }
}
