use tutel_simgpu::{GpuCostModel, LinkModel, Topology};

/// A simulated communication world: topology plus the calibrated link
/// and kernel cost models used to price collectives.
///
/// # Example
///
/// ```
/// use tutel_comm::World;
///
/// let world = World::azure(64);
/// assert_eq!(world.size(), 64);
/// assert_eq!(world.topology().nnodes(), 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct World {
    topology: Topology,
    nvlink: LinkModel,
    ib: LinkModel,
    gpu: GpuCostModel,
}

impl World {
    /// Creates a world from an explicit topology with A100/NDv4 link
    /// models.
    pub fn new(topology: Topology) -> Self {
        World {
            topology,
            nvlink: LinkModel::nvlink(),
            ib: LinkModel::hdr_infiniband(),
            gpu: GpuCostModel::a100(),
        }
    }

    /// The Azure NDm A100 v4 preset used throughout the paper's
    /// evaluation: nodes of 8 GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero, or above 8 and not a multiple
    /// of 8.
    pub fn azure(world_size: usize) -> Self {
        World::new(Topology::azure_ndv4(world_size))
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// World size (total GPUs).
    pub fn size(&self) -> usize {
        self.topology.world_size()
    }

    /// Intra-node link model (NVLink/NVSwitch).
    pub fn nvlink(&self) -> &LinkModel {
        &self.nvlink
    }

    /// Inter-node link model (HDR InfiniBand).
    pub fn infiniband(&self) -> &LinkModel {
        &self.ib
    }

    /// Kernel cost model of one GPU.
    pub fn gpu(&self) -> &GpuCostModel {
        &self.gpu
    }

    /// Whether the world spans more than one node.
    pub fn is_multi_node(&self) -> bool {
        self.topology.nnodes() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_presets() {
        assert!(!World::azure(8).is_multi_node());
        assert!(World::azure(16).is_multi_node());
        assert_eq!(World::azure(2048).topology().nnodes(), 256);
    }
}
