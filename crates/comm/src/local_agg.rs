//! The naïve local-aggregation All-to-All strawman (Figure 15, top).
//!
//! Like 2DH it aggregates intra-node before crossing the fabric, but it
//! skips the stride-alignment phases: the intra-node exchange therefore
//! moves `n/m` *non-contiguous* chunk pairs per peer, which is exactly
//! the `O(n/m)` scattered-memory-access pattern whose cost Section 3.4
//! measures growing from ~600 µs (n = 8) to ~5 ms (n = 2048).

use tutel_simgpu::Topology;

use crate::RankBuffers;

/// Functional naïve local-aggregation All-to-All.
///
/// Semantically identical to [`crate::linear_all_to_all`] — the difference is
/// purely in the (simulated) cost of its access pattern, priced by
/// [`crate::CollectiveTiming::naive_local_agg_time`].
///
/// Phase 1: within each node, GPUs exchange chunks so that each GPU
/// holds, for every one of the `n` global destinations it is responsible
/// for relaying, the chunks from all `m` local peers (performed here as
/// `n/m` successive intra-node exchanges of non-contiguous chunks).
/// Phase 2: inter-node exchange of the aggregated blocks.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::two_dh_all_to_all`].
pub fn naive_local_agg_all_to_all(bufs: &RankBuffers, topology: &Topology) -> RankBuffers {
    let n = topology.world_size();
    let m = topology.gpus_per_node();
    let nnodes = topology.nnodes();
    assert_eq!(bufs.len(), n, "buffer count must equal world size");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    assert!(
        len.is_multiple_of(n),
        "buffer of {len} elements not divisible into {n} chunks"
    );
    let chunk = len / n;

    // Phase 1: rank (node, l) aggregates, for each round r in 0..n/m,
    // the chunks destined for global GPU g = r*m + l from all m local
    // peers. Each round exchanges non-contiguous chunks (positions
    // g, g+m, g+2m, ... in the original layout) — the scattered access.
    let rounds = n / m;
    let mut agg: RankBuffers = vec![vec![0.0; len]; n];
    for node in 0..nnodes {
        for l in 0..m {
            let me = node * m + l;
            for r in 0..rounds {
                let dst_global = r * m + l;
                for (src_local, peer) in topology.ranks_on_node(node).enumerate() {
                    // Chunk for dst_global from peer lands in round r's
                    // slot for source src_local.
                    let slot = r * m + src_local;
                    agg[me][slot * chunk..(slot + 1) * chunk]
                        .copy_from_slice(&bufs[peer][dst_global * chunk..(dst_global + 1) * chunk]);
                }
            }
        }
    }

    // Phase 2: inter-node exchange among same-local-rank peers. After
    // phase 1, rank (node, l) holds one aggregated block per round r;
    // that block's destination GPU is r·m + l, which lives on node r —
    // so round r's block ships to node r, local rank l.
    let mut out: RankBuffers = vec![vec![0.0; len]; n];
    let block = m * chunk;
    for src_node in 0..nnodes {
        for l in 0..m {
            let src = src_node * m + l;
            for r in 0..rounds {
                let dst = r * m + l;
                out[dst][src_node * block..(src_node + 1) * block]
                    .copy_from_slice(&agg[src][r * block..(r + 1) * block]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_all_to_all as reference;

    fn labeled(n: usize, chunk: usize) -> RankBuffers {
        (0..n)
            .map(|s| (0..n * chunk).map(|i| (s * n * chunk + i) as f32).collect())
            .collect()
    }

    #[test]
    fn matches_linear_two_nodes_of_four() {
        let topo = Topology::new(2, 4);
        let bufs = labeled(8, 3);
        assert_eq!(naive_local_agg_all_to_all(&bufs, &topo), reference(&bufs));
    }

    #[test]
    fn matches_linear_four_nodes_of_two() {
        let topo = Topology::new(4, 2);
        let bufs = labeled(8, 2);
        assert_eq!(naive_local_agg_all_to_all(&bufs, &topo), reference(&bufs));
    }

    #[test]
    fn matches_linear_single_node() {
        let topo = Topology::single_node(4);
        let bufs = labeled(4, 2);
        assert_eq!(naive_local_agg_all_to_all(&bufs, &topo), reference(&bufs));
    }
}
