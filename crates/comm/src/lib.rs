//! Collective communication for the tutel-rs MoE stack.
//!
//! Implements the All-to-All family the paper builds on, in two layers:
//!
//! * a **functional layer** that actually moves `f32`s between per-rank
//!   buffers — bit-exact, used by correctness tests and the end-to-end
//!   model runs at small simulated world sizes; and
//! * a **timing layer** that prices every collective on a
//!   [`tutel_simgpu`] cluster (link α–β models, message-size-dependent
//!   bandwidth, strided-copy penalties) — used by the adaptive
//!   mechanisms and the scaling benchmarks up to 4,096 simulated GPUs.
//!
//! The algorithms:
//!
//! * [`linear_all_to_all`] — NCCL-style point-to-point loop
//!   (Algorithm 1 of the paper).
//! * [`two_dh_all_to_all`] — the paper's Two-Dimensional Hierarchical
//!   All-to-All (Algorithm 3): stride-memcpy align, intra-node exchange,
//!   align again, inter-node exchange.
//! * [`naive_local_agg_all_to_all`] — the strawman local-aggregation
//!   algorithm of Figure 15 whose non-contiguous memory access 2DH
//!   eliminates.
//! * [`flex::flex_all_to_all`] — Flexible All-to-All, whose output
//!   layout `(ΔE, C, M)` is independent of world size.
//! * ring [`primitives`]: all-gather, reduce-scatter, all-reduce.

mod algo;
mod error;
pub mod fault;
pub mod flex;
mod linear;
mod local_agg;
pub mod primitives;
pub mod runtime;
#[cfg(feature = "check-sched")]
pub mod sched;
mod stride;
mod timing;
mod world;

pub use algo::AllToAllAlgo;
pub use error::CommError;
pub use fault::{FaultAction, FaultPlan};
pub use linear::linear_all_to_all;
pub use local_agg::naive_local_agg_all_to_all;
pub use runtime::{
    run_threaded, run_threaded_reliable, run_threaded_reliable_traced, run_threaded_traced,
    CommHandle, ReliableConfig, RetryPolicy,
};
pub use stride::stride_memcpy;
pub use timing::{A2aImpl, A2aPhase, CollectiveTiming};
pub use two_dh::two_dh_all_to_all;
pub use world::World;

mod two_dh;

/// Per-rank buffers: `bufs[r]` is the flat row-major payload on rank `r`.
///
/// Every functional collective takes and returns this shape. All ranks
/// must hold equally sized buffers divisible into the per-peer chunks
/// the collective requires.
pub type RankBuffers = Vec<Vec<f32>>;
