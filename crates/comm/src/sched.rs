//! Deterministic adversarial scheduler for the threaded runtime
//! (compiled under `feature = "check-sched"` only).
//!
//! `tutel-check` uses this module to model-check the collectives in
//! [`crate::runtime`]: instead of crossbeam channels, every rank talks
//! through a shared [`SchedNet`] that *buffers* all sends and only
//! releases a message when the whole world has quiesced (every live
//! rank blocked in `recv` or `barrier`). At each quiescent point the
//! scheduler picks *which* pending message to deliver next from a
//! seeded PRNG, so one `u64` seed names one complete interleaving —
//! including arbitrarily delayed and reordered arrivals across tags —
//! and replaying the seed replays the schedule bit-for-bit.
//!
//! Detected failure classes:
//!
//! * **deadlock** — the world quiesced with no deliverable message
//!   (or with a barrier that can never complete); every blocked rank
//!   gets [`CommError::Deadlock`] carrying the seed. A watchdog
//!   backstops the quiescence accounting itself.
//! * **tag-collision mixing** — the harness compares results against
//!   the sequential references; reordered same-tag messages surface
//!   as value corruption under some seed.
//! * **mailbox leaks** — messages still parked in a rank's mailbox
//!   (or undelivered in the net) when its program returns.
//!
//! Determinism argument: deliveries happen only at quiescent points,
//! candidates are sorted by a canonical `(src, dst, tag, seq)` key
//! (never by racy insertion order), and the PRNG is consumed exactly
//! once per delivery — so the choice sequence, and therefore the whole
//! execution, is a function of `(topology, program, seed)` alone.
//!
//! The seeded choice point ([`Chooser`]) and the FNV schedule
//! signature ([`SigHash`]) come from the shared `check::explore`
//! framework (`tutel-explore`), which `check::race` uses identically
//! for steal-order exploration — one seed convention, one replay
//! story, one signature format across both checkers. The chooser is
//! bit-compatible with this module's pre-framework PRNG, so all
//! historical schedule signatures are preserved.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tutel_explore::{Chooser, SigHash};
use tutel_simgpu::Topology;

use crate::error::CommError;
use crate::fault::{FaultAction, FaultPlan};
use crate::runtime::Communicator;

/// How long a blocked rank waits before re-auditing the quiescence
/// accounting. Only reached if the bookkeeping itself is buggy; the
/// normal deadlock path is detected synchronously.
const WATCHDOG: Duration = Duration::from_secs(5);

/// A buffered (not yet delivered) point-to-point message.
struct Pending {
    src: usize,
    dst: usize,
    tag: u64,
    /// Per-(src, dst) send sequence number: the canonical tiebreaker.
    seq: u64,
    payload: Vec<f32>,
    /// Earliest delivery count at which this message is eligible
    /// (set by an injected [`FaultAction::Delay`]).
    not_before: u64,
    /// Already processed by the fault layer (a duplicated or delayed
    /// copy): exempt from further injection.
    faulted: bool,
}

/// What a rank is doing right now, as far as the scheduler knows.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Executing its program between runtime calls.
    Running,
    /// Blocked inside `recv` with an empty inbox.
    Recv,
    /// Blocked inside `barrier`.
    Barrier,
    /// Program returned.
    Done,
}

struct SchedState {
    rng: Chooser,
    pending: Vec<Pending>,
    /// Delivered messages awaiting consumption: `(src, tag, payload)`.
    inboxes: Vec<VecDeque<(usize, u64, Vec<f32>)>>,
    waiting: Vec<Wait>,
    /// `send_seq[src][dst]`: next per-pair sequence number.
    send_seq: Vec<Vec<u64>>,
    signature: SigHash,
    deliveries: u64,
    deadlock: Option<String>,
    injected_drops: u64,
    injected_dups: u64,
    injected_delays: u64,
}

impl SchedState {
    /// True when every live rank is blocked and no delivered message
    /// is waiting to wake a receiver: the scheduler's turn to act.
    fn quiescent(&self) -> bool {
        self.waiting.iter().enumerate().all(|(r, w)| match w {
            Wait::Running => false,
            Wait::Recv => self.inboxes[r].is_empty(),
            Wait::Barrier | Wait::Done => true,
        })
    }

    fn wait_summary(&self) -> String {
        let mut parts = Vec::new();
        for (r, w) in self.waiting.iter().enumerate() {
            let s = match w {
                Wait::Running => continue,
                Wait::Recv => format!("rank {r} blocked in recv"),
                Wait::Barrier => format!("rank {r} blocked in barrier"),
                Wait::Done => format!("rank {r} done"),
            };
            parts.push(s);
        }
        parts.push(format!("{} message(s) pending", self.pending.len()));
        parts.join("; ")
    }
}

/// The shared scheduler: one per checked run, shared by every rank's
/// [`Communicator`].
pub struct SchedNet {
    seed: u64,
    /// Delivery-time fault injection, if armed (see [`run_sched_faulty`]).
    plan: Option<FaultPlan>,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl SchedNet {
    fn new(world: usize, seed: u64, plan: Option<FaultPlan>) -> Self {
        SchedNet {
            seed,
            plan,
            state: Mutex::new(SchedState {
                rng: Chooser::new(seed),
                pending: Vec::new(),
                inboxes: vec![VecDeque::new(); world],
                waiting: vec![Wait::Running; world],
                send_seq: vec![vec![0; world]; world],
                signature: SigHash::new(),
                deliveries: 0,
                deadlock: None,
                injected_drops: 0,
                injected_dups: 0,
                injected_delays: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Runs the scheduler while the world is quiescent: releases one
    /// barrier or delivers seeded-chosen pending messages until some
    /// receiver becomes runnable (or declares deadlock).
    fn try_schedule(&self, st: &mut SchedState) {
        while st.deadlock.is_none() && st.quiescent() {
            let live: Vec<usize> = (0..st.waiting.len())
                .filter(|&r| st.waiting[r] != Wait::Done)
                .collect();
            if live.is_empty() {
                return;
            }
            if live.iter().all(|&r| st.waiting[r] == Wait::Barrier) {
                if live.len() == st.waiting.len() {
                    // Full house: the barrier trips.
                    for &r in &live {
                        st.waiting[r] = Wait::Running;
                    }
                    self.cv.notify_all();
                } else {
                    st.deadlock = Some(format!(
                        "barrier can never complete: {} of {} ranks already done ({})",
                        st.waiting.len() - live.len(),
                        st.waiting.len(),
                        st.wait_summary()
                    ));
                    self.cv.notify_all();
                }
                return;
            }
            // At least one rank is blocked in recv. Deliverable = any
            // pending message whose destination has not finished,
            // ordered by the canonical key so the choice is a pure
            // function of (state, rng) — never of insertion order.
            let mut candidates: Vec<usize> = (0..st.pending.len())
                .filter(|&i| st.waiting[st.pending[i].dst] != Wait::Done)
                .collect();
            if candidates.is_empty() {
                st.deadlock = Some(st.wait_summary());
                self.cv.notify_all();
                return;
            }
            // Injected delays make a message ineligible until the
            // delivery count passes `not_before` — unless *every*
            // candidate is held back, in which case all become
            // eligible again (delays must postpone, never wedge).
            let eligible: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| st.pending[i].not_before <= st.deliveries)
                .collect();
            if !eligible.is_empty() {
                candidates = eligible;
            }
            candidates.sort_by_key(|&i| {
                let p = &st.pending[i];
                (p.src, p.dst, p.tag, p.seq)
            });
            let pick = candidates[st.rng.choose(candidates.len())];
            let msg = st.pending.remove(pick);
            if !msg.faulted {
                if let Some(plan) = &self.plan {
                    match plan.action(msg.src, msg.dst, msg.tag) {
                        FaultAction::Deliver => {}
                        FaultAction::Drop => {
                            // Lost forever: the receiver's recv now
                            // either drains another message or ends in
                            // a detected (replayable) deadlock.
                            st.injected_drops += 1;
                            continue;
                        }
                        FaultAction::Duplicate => {
                            st.injected_dups += 1;
                            st.pending.push(Pending {
                                src: msg.src,
                                dst: msg.dst,
                                tag: msg.tag,
                                seq: msg.seq,
                                payload: msg.payload.clone(),
                                not_before: 0,
                                faulted: true,
                            });
                        }
                        FaultAction::Delay(k) => {
                            st.injected_delays += 1;
                            st.pending.push(Pending {
                                not_before: st.deliveries + u64::from(k.max(1)),
                                faulted: true,
                                ..msg
                            });
                            continue;
                        }
                    }
                }
            }
            st.signature
                .mix_many(&[msg.src as u64, msg.dst as u64, msg.tag, msg.seq]);
            st.deliveries += 1;
            let woke_receiver = st.waiting[msg.dst] == Wait::Recv;
            st.inboxes[msg.dst].push_back((msg.src, msg.tag, msg.payload));
            if woke_receiver {
                // quiescent() is now false until the receiver drains
                // its inbox, so the loop exits; wake it.
                self.cv.notify_all();
                return;
            }
            // Delivered into a barrier-waiter's inbox: the world is
            // still quiescent, keep scheduling.
        }
    }

    fn deadlock_err(&self, st: &SchedState) -> CommError {
        CommError::Deadlock {
            seed: self.seed,
            detail: st
                .deadlock
                .clone()
                .unwrap_or_else(|| "scheduler poisoned".to_string()),
        }
    }

    /// Buffers a send; delivery happens at a later quiescent point.
    pub(crate) fn send(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        payload: Vec<f32>,
    ) -> Result<(), CommError> {
        let mut st = self.lock();
        if st.deadlock.is_some() {
            return Err(self.deadlock_err(&st));
        }
        let seq = st.send_seq[src][dst];
        st.send_seq[src][dst] += 1;
        st.pending.push(Pending {
            src,
            dst,
            tag,
            seq,
            payload,
            not_before: 0,
            faulted: false,
        });
        Ok(())
    }

    /// Blocks until the scheduler delivers a message to `rank`.
    pub(crate) fn recv(&self, rank: usize) -> Result<(usize, u64, Vec<f32>), CommError> {
        let mut st = self.lock();
        loop {
            if let Some(msg) = st.inboxes[rank].pop_front() {
                st.waiting[rank] = Wait::Running;
                return Ok(msg);
            }
            if st.deadlock.is_some() {
                return Err(self.deadlock_err(&st));
            }
            st.waiting[rank] = Wait::Recv;
            self.try_schedule(&mut st);
            if st.deadlock.is_some() {
                return Err(self.deadlock_err(&st));
            }
            if !st.inboxes[rank].is_empty() {
                continue;
            }
            let (guard, timeout) = match self.cv.wait_timeout(st, WATCHDOG) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let (g, t) = poisoned.into_inner();
                    (g, t)
                }
            };
            st = guard;
            if timeout.timed_out() && st.inboxes[rank].is_empty() && st.deadlock.is_none() {
                st.deadlock = Some(format!(
                    "watchdog fired after {WATCHDOG:?} with no progress ({})",
                    st.wait_summary()
                ));
                self.cv.notify_all();
                return Err(self.deadlock_err(&st));
            }
        }
    }

    /// Scheduler-mediated barrier: trips only when every rank of the
    /// world is parked in it (matching `std::sync::Barrier::new(n)`).
    pub(crate) fn barrier(&self, rank: usize) -> Result<(), CommError> {
        let mut st = self.lock();
        if st.deadlock.is_some() {
            return Err(self.deadlock_err(&st));
        }
        st.waiting[rank] = Wait::Barrier;
        self.try_schedule(&mut st);
        loop {
            if st.waiting[rank] != Wait::Barrier {
                return Ok(());
            }
            if st.deadlock.is_some() {
                return Err(self.deadlock_err(&st));
            }
            let (guard, timeout) = match self.cv.wait_timeout(st, WATCHDOG) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let (g, t) = poisoned.into_inner();
                    (g, t)
                }
            };
            st = guard;
            if timeout.timed_out() && st.waiting[rank] == Wait::Barrier && st.deadlock.is_none() {
                st.deadlock = Some(format!(
                    "watchdog fired in barrier after {WATCHDOG:?} ({})",
                    st.wait_summary()
                ));
                self.cv.notify_all();
                return Err(self.deadlock_err(&st));
            }
        }
    }

    /// Marks `rank`'s program as returned and re-runs the scheduler:
    /// the remaining ranks may now be quiescent (or deadlocked).
    pub(crate) fn mark_done(&self, rank: usize) {
        let mut st = self.lock();
        st.waiting[rank] = Wait::Done;
        self.try_schedule(&mut st);
        self.cv.notify_all();
    }
}

/// Everything the checker needs to judge (and replay) one schedule.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// The seed that reproduces this exact interleaving.
    pub seed: u64,
    /// Order-sensitive fingerprint of the delivery choices: two runs
    /// with equal signatures executed the same schedule.
    pub signature: u64,
    /// Total messages delivered.
    pub deliveries: u64,
    /// Deadlock diagnostic, if the schedule wedged.
    pub deadlock: Option<String>,
    /// Messages still buffered in the net at the end of the run.
    pub undelivered: usize,
    /// `(rank, parked_messages)` for every rank whose mailbox was
    /// non-empty when its program returned.
    pub mailbox_leaks: Vec<(usize, usize)>,
    /// Deliveries discarded by the armed [`FaultPlan`].
    pub injected_drops: u64,
    /// Deliveries doubled by the armed [`FaultPlan`].
    pub injected_dups: u64,
    /// Deliveries postponed by the armed [`FaultPlan`].
    pub injected_delays: u64,
}

impl SchedReport {
    /// True when the schedule completed with no detected defect.
    pub fn clean(&self) -> bool {
        self.deadlock.is_none() && self.undelivered == 0 && self.mailbox_leaks.is_empty()
    }
}

/// Runs `program` on every rank under the deterministic scheduler
/// with the given `seed`; returns per-rank results plus the
/// [`SchedReport`] describing the schedule that was executed.
///
/// Unlike [`crate::runtime::run_threaded`], the program receives
/// `&mut Communicator` so the harness can audit the mailbox after the
/// program returns. Rank programs should surface [`CommError`]s in
/// their return value (e.g. return `Result`) rather than panicking.
pub fn run_sched<F, R>(topology: Topology, seed: u64, program: F) -> (Vec<R>, SchedReport)
where
    F: Fn(&mut Communicator) -> R + Send + Sync,
    R: Send,
{
    run_sched_impl(topology, seed, None, program)
}

/// [`run_sched`] with a delivery-time [`FaultPlan`] armed: at each
/// scheduling point the picked message is dropped, duplicated, or
/// postponed per `plan.action(src, dst, tag)`. The combination
/// `(topology, program, seed, plan)` replays bit-for-bit, so a seed
/// that wedges a collective (drop → detected deadlock) or corrupts a
/// mailbox (duplicate → reported leak) names a reproducible failure.
pub fn run_sched_faulty<F, R>(
    topology: Topology,
    seed: u64,
    plan: FaultPlan,
    program: F,
) -> (Vec<R>, SchedReport)
where
    F: Fn(&mut Communicator) -> R + Send + Sync,
    R: Send,
{
    run_sched_impl(topology, seed, Some(plan), program)
}

fn run_sched_impl<F, R>(
    topology: Topology,
    seed: u64,
    plan: Option<FaultPlan>,
    program: F,
) -> (Vec<R>, SchedReport)
where
    F: Fn(&mut Communicator) -> R + Send + Sync,
    R: Send,
{
    let n = topology.world_size();
    let net = Arc::new(SchedNet::new(n, seed, plan));
    let program = &program;
    let (results, leaks): (Vec<R>, Vec<(usize, usize)>) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let net = Arc::clone(&net);
            handles.push(scope.spawn(move || {
                let mut comm = Communicator::with_sched(rank, topology, Arc::clone(&net));
                let out = program(&mut comm);
                let parked = comm.parked_messages();
                // The leak is reported through SchedReport; clear so
                // the mailbox Drop audit doesn't re-panic about it.
                comm.clear_mailbox();
                net.mark_done(rank);
                (out, (rank, parked))
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(pair) => pair,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .unzip()
    });
    let st = net.lock();
    let report = SchedReport {
        seed,
        signature: st.signature.value(),
        deliveries: st.deliveries,
        deadlock: st.deadlock.clone(),
        undelivered: st.pending.len(),
        mailbox_leaks: leaks.into_iter().filter(|&(_, n)| n > 0).collect(),
        injected_drops: st.injected_drops,
        injected_dups: st.injected_dups,
        injected_delays: st.injected_delays,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_signature() {
        let topo = Topology::new(2, 2);
        let run = |seed| {
            let (_, report) = run_sched(topo, seed, |comm| {
                let mine = vec![comm.rank() as f32; 4];
                comm.all_to_all(&mine)
            });
            report
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.deliveries, b.deliveries);
        assert!(a.clean(), "clean collective reported {a:?}");
    }

    #[test]
    fn seeds_explore_distinct_schedules() {
        let topo = Topology::new(2, 2);
        let mut sigs = std::collections::HashSet::new();
        for seed in 0..32 {
            let (_, report) = run_sched(topo, seed, |comm| {
                let mine: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
                comm.all_to_all(&mine)
            });
            assert!(report.clean());
            sigs.insert(report.signature);
        }
        assert!(
            sigs.len() >= 16,
            "only {} distinct schedules in 32 seeds",
            sigs.len()
        );
    }

    #[test]
    fn detects_deadlock_with_replayable_seed() {
        // Rank 0 waits for a message nobody ever sends.
        let topo = Topology::new(1, 2);
        let (results, report) = run_sched(topo, 13, |comm| {
            if comm.rank() == 0 {
                comm.recv(1, 999).map(|_| ())
            } else {
                Ok(())
            }
        });
        assert!(report.deadlock.is_some(), "no deadlock reported");
        assert_eq!(report.seed, 13);
        assert!(matches!(
            &results[0],
            Err(CommError::Deadlock { seed: 13, .. })
        ));
    }

    #[test]
    fn detects_mailbox_leak() {
        // Rank 1 sends under a tag rank 0 never asks for. Depending
        // on the schedule the stray message is either parked in rank
        // 0's mailbox (delivered first) or left undelivered in the
        // net (delivered never) — both must be reported, and some
        // seed must exhibit each.
        let topo = Topology::new(1, 2);
        let mut saw_mailbox_leak = false;
        let mut saw_undelivered = false;
        for seed in 0..16 {
            let (_, report) = run_sched(topo, seed, |comm| {
                if comm.rank() == 1 {
                    comm.send(0, 77, vec![1.0])?;
                    comm.send(0, 88, vec![2.0])?;
                    Ok(vec![])
                } else {
                    comm.recv(1, 88)
                }
            });
            assert!(!report.clean(), "stray message not reported: {report:?}");
            saw_mailbox_leak |= report.mailbox_leaks == vec![(0, 1)];
            saw_undelivered |= report.undelivered == 1;
        }
        assert!(saw_mailbox_leak, "no seed parked the stray message");
        assert!(saw_undelivered, "no seed left the stray undelivered");
    }

    #[test]
    fn barrier_trips_under_scheduler() {
        let topo = Topology::new(1, 3);
        let (results, report) = run_sched(topo, 5, |comm| comm.barrier().map(|()| comm.rank()));
        assert!(report.clean());
        assert_eq!(
            results.into_iter().collect::<Result<Vec<_>, _>>(),
            Ok(vec![0, 1, 2])
        );
    }

    #[test]
    fn injected_drop_becomes_detected_deadlock() {
        // An unprotected collective under a dropping plan must end in
        // a *detected* deadlock (typed error carrying the seed), never
        // a hang or silent corruption.
        let topo = Topology::new(1, 2);
        let plan = FaultPlan::new(0xD0).with_drops(100);
        let (results, report) = run_sched_faulty(topo, 21, plan, |comm| {
            let mine = vec![comm.rank() as f32; 4];
            comm.all_to_all(&mine)
        });
        assert!(report.injected_drops > 0, "plan injected nothing");
        assert!(report.deadlock.is_some(), "dropped delivery not detected");
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(CommError::Deadlock { seed: 21, .. }))));
    }

    #[test]
    fn injected_duplicate_is_reported_as_leak() {
        let topo = Topology::new(1, 2);
        let plan = FaultPlan::new(0xD1).with_duplicates(100);
        let (results, report) = run_sched_faulty(topo, 3, plan, |comm| {
            let mine = vec![comm.rank() as f32; 2];
            comm.all_to_all(&mine)
        });
        // The duplicate parks in a mailbox or stays undelivered; the
        // values the programs saw are still the correct ones.
        assert!(report.injected_dups > 0);
        assert!(
            !report.clean(),
            "duplicated delivery escaped the audit: {report:?}"
        );
        for (rank, r) in results.iter().enumerate() {
            let got = r.as_ref().expect("dup must not fail the collective");
            assert_eq!(got, &vec![0.0, 1.0], "rank {rank} corrupted");
        }
    }

    #[test]
    fn injected_delays_reorder_but_preserve_results() {
        let topo = Topology::new(2, 2);
        let plan = FaultPlan::new(0xD2).with_delays(60, 3);
        let (results, report) = run_sched_faulty(topo, 11, plan, |comm| {
            let mine: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
            comm.all_to_all(&mine)
        });
        assert!(report.injected_delays > 0, "plan injected nothing");
        assert!(report.clean(), "delays must only postpone: {report:?}");
        let expect = crate::linear_all_to_all(
            &(0..4)
                .map(|r| (0..8).map(|i| (r * 8 + i) as f32).collect())
                .collect::<Vec<_>>(),
        );
        for (rank, r) in results.into_iter().enumerate() {
            assert_eq!(r.expect("delays must not fail"), expect[rank]);
        }
    }

    #[test]
    fn faulty_runs_replay_bit_for_bit() {
        let topo = Topology::new(1, 2);
        let plan = FaultPlan::new(7).with_delays(50, 2).with_duplicates(20);
        let run = || {
            let (results, report) = run_sched_faulty(topo, 9, plan, |comm| {
                let mine = vec![comm.rank() as f32; 4];
                comm.all_to_all(&mine)
            });
            (results, report.signature, report.deliveries)
        };
        assert_eq!(run(), run());
    }
}
