//! Timing models for every collective, over a [`World`]'s calibrated
//! link and kernel models.
//!
//! These are the costs the adaptive mechanisms (parallelism router,
//! pipelining search) consult, and what the scaling benchmarks plot.

use tutel_simgpu::{calib, fabric_contention, Protocol, Seconds};

use crate::{AllToAllAlgo, World};

/// Which leg of the MoE iteration an All-to-All serves. The two legs
/// carry different payloads under asymmetric capacity, so observed
/// pricing attributes them to separate telemetry buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum A2aPhase {
    /// Token dispatch: encode → experts.
    Dispatch,
    /// Expert-output combine: experts → decode.
    Combine,
}

impl A2aPhase {
    /// The `op` string recorded into telemetry for this leg.
    pub fn op(&self) -> &'static str {
        match self {
            A2aPhase::Dispatch => "a2a_dispatch",
            A2aPhase::Combine => "a2a_combine",
        }
    }
}

/// Which implementation executes a 2DH All-to-All.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum A2aImpl {
    /// Algorithm 3 written against NCCL send/recv APIs: phases are
    /// separated by synchronization barriers and run the default
    /// protocol.
    #[default]
    NcclApi,
    /// MSCCL-compiled fused kernel: no inter-phase barriers and free
    /// protocol choice (Section 4.3).
    Msccl,
}

/// Prices collectives on a given [`World`].
///
/// All `*_time` methods return the per-iteration wall-clock seconds of
/// the collective for `bytes` of payload *per GPU*.
///
/// # Example
///
/// ```
/// use tutel_comm::{AllToAllAlgo, CollectiveTiming, World};
/// use tutel_simgpu::Protocol;
///
/// let t = CollectiveTiming::new(World::azure(2048));
/// let s = 1024.0 * 1024.0; // 1 MiB per GPU
/// let linear = t.all_to_all_time(AllToAllAlgo::Linear, s, Protocol::Simple);
/// let two_dh = t.all_to_all_time(AllToAllAlgo::TwoDh, s, Protocol::Simple);
/// assert!(linear / two_dh > 5.0, "2DH must win big for small messages at scale");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CollectiveTiming {
    world: World,
}

impl CollectiveTiming {
    /// Creates a pricer for `world`.
    pub fn new(world: World) -> Self {
        CollectiveTiming { world }
    }

    /// The world being priced.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Dispatch on algorithm. 2DH uses the NCCL-API implementation; use
    /// [`CollectiveTiming::two_dh_time_impl`] for the MSCCL variant.
    pub fn all_to_all_time(&self, algo: AllToAllAlgo, bytes: f64, protocol: Protocol) -> Seconds {
        match algo {
            AllToAllAlgo::Linear => self.linear_time(bytes, protocol),
            AllToAllAlgo::TwoDh => self.two_dh_time_impl(bytes, protocol, A2aImpl::NcclApi),
        }
    }

    /// Linear (Algorithm 1) All-to-All of `bytes` per GPU.
    ///
    /// Each GPU sends `n − 1` messages of `bytes/n`: `m − 1` over NVLink
    /// (parallel NVSwitch paths, but serialized per source engine) and
    /// `n − m` over its InfiniBand NIC (serialized per NIC). The two
    /// proceed concurrently; the slower side dominates.
    pub fn linear_time(&self, bytes: f64, protocol: Protocol) -> Seconds {
        let topo = self.world.topology();
        let n = topo.world_size();
        let m = topo.gpus_per_node();
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let chunk = bytes / n as f64;
        let nv = self.world.nvlink();
        let intra = nv.base_latency() + nv.burst_time(m - 1, chunk, protocol);
        if topo.nnodes() == 1 {
            return intra;
        }
        let ib = self.world.infiniband();
        let contention = fabric_contention(topo.nnodes());
        let inter = ib.base_latency() + ib.burst_time(n - m, chunk, protocol) * contention;
        intra.max(inter)
    }

    /// 2DH (Algorithm 3) All-to-All of `bytes` per GPU.
    ///
    /// Phases: stride-align (contiguous-coalesced device copy),
    /// intra-node exchange of `S/m` blocks, stride-align, inter-node
    /// exchange of `S·m/n` blocks among `nnodes − 1` peers. The
    /// NCCL-API implementation pays a barrier between phases and is
    /// pinned to the Simple protocol; MSCCL fuses phases and may pick
    /// LL128.
    pub fn two_dh_time_impl(&self, bytes: f64, protocol: Protocol, imp: A2aImpl) -> Seconds {
        let topo = self.world.topology();
        let n = topo.world_size();
        let m = topo.gpus_per_node();
        let nnodes = topo.nnodes();
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let protocol = match imp {
            A2aImpl::NcclApi => Protocol::Simple,
            A2aImpl::Msccl => protocol,
        };
        let gpu = self.world.gpu();
        let nv = self.world.nvlink();
        // 2DH's stride copies are single coalesced kernels: near-peak
        // memory bandwidth independent of n (the whole point of the
        // alignment phases). A 1.25 factor prices the read+write+index
        // arithmetic versus a plain copy.
        let align = 1.25 * gpu.copy_time(bytes);
        let intra_block = bytes / m as f64;
        let intra = nv.base_latency() + nv.burst_time(m - 1, intra_block, protocol);
        let (inter, align2) = if nnodes > 1 {
            let ib = self.world.infiniband();
            let inter_block = bytes * m as f64 / n as f64;
            let contention = fabric_contention(nnodes);
            (
                ib.base_latency() + ib.burst_time(nnodes - 1, inter_block, protocol) * contention,
                align,
            )
        } else {
            (0.0, 0.0)
        };
        let phases = align + intra + align2 + inter;
        match imp {
            A2aImpl::NcclApi => phases + 3.0 * calib::TWO_DH_PHASE_BARRIER,
            // MSCCL fuses phases, overlapping the alignment copies with
            // the exchanges; model as removing the barriers and hiding
            // 40 % of the local copy work.
            A2aImpl::Msccl => phases - 0.4 * (align + align2),
        }
    }

    /// Naïve local-aggregation All-to-All (Figure 15 top): intra-node
    /// aggregation via `n/m` exchanges of *non-contiguous* `S/n` chunks
    /// (the scattered-access cost 2DH eliminates) plus the same
    /// inter-node phase as 2DH.
    pub fn naive_local_agg_time(&self, bytes: f64, protocol: Protocol) -> Seconds {
        let topo = self.world.topology();
        let n = topo.world_size();
        let m = topo.gpus_per_node();
        let nnodes = topo.nnodes();
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let gpu = self.world.gpu();
        let nv = self.world.nvlink();
        let chunk = bytes / n as f64;
        // Scattered gather/scatter at S/n granularity dominates as n
        // grows (anchor: ~600 µs → ~5 ms for S = 128 MiB, m = 8).
        let scattered = gpu.strided_copy_time(bytes, chunk);
        let intra =
            nv.base_latency() + nv.burst_time(m - 1, bytes / m as f64, protocol) + scattered;
        if nnodes == 1 {
            return intra;
        }
        let ib = self.world.infiniband();
        let inter_block = bytes * m as f64 / n as f64;
        let contention = fabric_contention(nnodes);
        let inter =
            ib.base_latency() + ib.burst_time(nnodes - 1, inter_block, protocol) * contention;
        intra + inter
    }

    /// Three-dimensional hierarchical All-to-All (Section 4.3,
    /// "Extension"): for dragonfly-style fabrics, the inter-node phase
    /// is itself split into intra-group and inter-group exchanges,
    /// aggregating `nodes_per_group` nodes' traffic before crossing the
    /// global links. `bytes` is per GPU.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_group` is zero or does not divide the node
    /// count.
    pub fn three_dh_time(&self, bytes: f64, protocol: Protocol, nodes_per_group: usize) -> Seconds {
        let topo = self.world.topology();
        let n = topo.world_size();
        let m = topo.gpus_per_node();
        let nnodes = topo.nnodes();
        assert!(
            nodes_per_group > 0 && nnodes.is_multiple_of(nodes_per_group),
            "{nodes_per_group} nodes/group does not divide {nnodes} nodes"
        );
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let ngroups = nnodes / nodes_per_group;
        if ngroups == 1 {
            // Degenerates to plain 2DH.
            return self.two_dh_time_impl(bytes, protocol, A2aImpl::Msccl);
        }
        let gpu = self.world.gpu();
        let nv = self.world.nvlink();
        let ib = self.world.infiniband();
        // Intra-node aggregation (same as 2DH phases 1–3).
        let align = 1.25 * gpu.copy_time(bytes);
        let intra = nv.base_latency() + nv.burst_time(m - 1, bytes / m as f64, protocol);
        // Intra-group exchange: each GPU relays ~S bytes among its
        // (nodes_per_group − 1) group peers so that traffic for every
        // remote group is aggregated group-wide before crossing the
        // global links. This *doubles* the per-NIC volume relative to
        // 2DH — the price paid for much larger global messages.
        let intra_group_msg = bytes / nodes_per_group as f64;
        let intra_group =
            ib.base_latency() + ib.burst_time(nodes_per_group - 1, intra_group_msg, protocol);
        // Inter-group exchange: (ngroups − 1) peers, message S/ngroups,
        // over the contended global fabric (contention still scales
        // with total traffic, i.e. all nodes).
        let inter_group_msg = bytes / ngroups as f64;
        let contention = fabric_contention(nnodes);
        let inter_group = ib.base_latency()
            + ib.burst_time(ngroups - 1, inter_group_msg, protocol) * contention
            + 1.25 * gpu.copy_time(bytes);
        align + intra + align + intra_group + inter_group
    }

    /// Ring all-gather collecting `shard_bytes` from each of `group`
    /// ranks (total received: `shard_bytes × (group − 1)`).
    ///
    /// Used by P1 to materialize ZeRO-sharded expert parameters.
    pub fn all_gather_time(&self, shard_bytes: f64, group: usize) -> Seconds {
        self.ring_time(shard_bytes, group, 1.0)
    }

    /// Ring reduce-scatter over `group` ranks of `shard_bytes` output
    /// shards. Communication volume mirrors all-gather.
    pub fn reduce_scatter_time(&self, shard_bytes: f64, group: usize) -> Seconds {
        self.ring_time(shard_bytes, group, 1.0)
    }

    /// Ring all-reduce of `bytes` over `group` ranks:
    /// reduce-scatter + all-gather, each moving `bytes × (g−1)/g`.
    pub fn all_reduce_time(&self, bytes: f64, group: usize) -> Seconds {
        if group <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        self.ring_time(bytes / group as f64, group, 2.0)
    }

    /// [`CollectiveTiming::all_to_all_time`] that also records the
    /// priced collective (operation, algorithm, payload bytes, modeled
    /// seconds) into `tel` — the per-collective audit trail of a
    /// simulated run. No-op recording when `tel` is disabled.
    ///
    /// The MoE iteration runs *two* All-to-Alls per layer — token
    /// dispatch and expert-output combine — whose payloads differ
    /// whenever the capacity is asymmetric (e.g. top-ANY routing or
    /// chunked pipelining). They are attributed to separate `op`
    /// buckets via [`A2aPhase`]; summing them into one `"all_to_all"`
    /// bucket skewed the Algorithm-2 prior.
    pub fn all_to_all_time_observed(
        &self,
        phase: A2aPhase,
        algo: AllToAllAlgo,
        bytes: f64,
        protocol: Protocol,
        tel: &tutel_obs::Telemetry,
    ) -> Seconds {
        let t = self.all_to_all_time(algo, bytes, protocol);
        tel.collective(phase.op(), &algo.to_string(), bytes, t);
        t
    }

    /// [`CollectiveTiming::all_gather_time`] with collective recording.
    pub fn all_gather_time_observed(
        &self,
        shard_bytes: f64,
        group: usize,
        tel: &tutel_obs::Telemetry,
    ) -> Seconds {
        let t = self.all_gather_time(shard_bytes, group);
        tel.collective("all_gather", &format!("ring/{group}"), shard_bytes, t);
        t
    }

    /// [`CollectiveTiming::all_reduce_time`] with collective recording.
    pub fn all_reduce_time_observed(
        &self,
        bytes: f64,
        group: usize,
        tel: &tutel_obs::Telemetry,
    ) -> Seconds {
        let t = self.all_reduce_time(bytes, group);
        tel.collective("all_reduce", &format!("ring/{group}"), bytes, t);
        t
    }

    /// Bus bandwidth (bytes/s) achieved by an All-to-All of `bytes` per
    /// GPU: the standard nccl-tests metric `S·(n−1)/n / t`.
    pub fn bus_bandwidth(&self, algo: AllToAllAlgo, bytes: f64, protocol: Protocol) -> f64 {
        let n = self.world.size() as f64;
        let t = self.all_to_all_time(algo, bytes, protocol);
        if t <= 0.0 {
            return 0.0;
        }
        bytes * (n - 1.0) / n / t
    }

    fn ring_time(&self, step_bytes: f64, group: usize, passes: f64) -> Seconds {
        if group <= 1 || step_bytes <= 0.0 {
            return 0.0;
        }
        let topo = self.world.topology();
        // A ring across nodes is bottlenecked by its slowest hop.
        let spans_nodes = group > topo.gpus_per_node() && topo.nnodes() > 1;
        let link = if spans_nodes {
            self.world.infiniband()
        } else {
            self.world.nvlink()
        };
        let contention = if spans_nodes {
            fabric_contention(topo.nnodes())
        } else {
            1.0
        };
        link.base_latency()
            + passes * link.burst_time(group - 1, step_bytes, Protocol::Simple) * contention
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn two_dh_wins_small_messages_at_scale() {
        let t = CollectiveTiming::new(World::azure(2048));
        let linear = t.linear_time(MIB, Protocol::Simple);
        let two_dh = t.two_dh_time_impl(MIB, Protocol::Simple, A2aImpl::NcclApi);
        let speedup = linear / two_dh;
        // Paper: up to 20.7× at 2,048 GPUs for small sizes.
        assert!(speedup > 5.0, "speedup = {speedup}");
    }

    #[test]
    fn linear_wins_large_messages_at_small_scale() {
        let t = CollectiveTiming::new(World::azure(64));
        let big = 256.0 * MIB;
        let linear = t.linear_time(big, Protocol::Simple);
        let two_dh = t.two_dh_time_impl(big, Protocol::Simple, A2aImpl::NcclApi);
        // Figure 20: 2DH has higher latency at 256 MiB / 64 GPUs due to
        // the extra copies.
        assert!(two_dh > linear, "two_dh {two_dh} vs linear {linear}");
    }

    #[test]
    fn msccl_beats_ncclapi_two_dh() {
        let t = CollectiveTiming::new(World::azure(64));
        for &s in &[MIB, 32.0 * MIB, 256.0 * MIB] {
            let nccl = t.two_dh_time_impl(s, Protocol::Simple, A2aImpl::NcclApi);
            let msccl = t.two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl);
            assert!(msccl < nccl, "size {s}");
        }
    }

    #[test]
    fn ll128_helps_small_sizes_under_msccl() {
        let t = CollectiveTiming::new(World::azure(512));
        let small = t.two_dh_time_impl(MIB, Protocol::Ll128, A2aImpl::Msccl);
        let small_simple = t.two_dh_time_impl(MIB, Protocol::Simple, A2aImpl::Msccl);
        assert!(small < small_simple);
        let big = t.two_dh_time_impl(256.0 * MIB, Protocol::Ll128, A2aImpl::Msccl);
        let big_simple = t.two_dh_time_impl(256.0 * MIB, Protocol::Simple, A2aImpl::Msccl);
        assert!(big > big_simple);
    }

    #[test]
    fn naive_agg_degrades_with_scale_more_than_2dh() {
        // Both algorithms pay the (roughly constant) inter-node phase;
        // the naïve one additionally pays scattered S/n-granular memory
        // access that collapses as n grows (Section 3.4 anchor:
        // ~600 µs → ~5 ms). Compare growth from 16 to 2,048 GPUs.
        let big = CollectiveTiming::new(World::azure(2048));
        let s = 128.0 * MIB;
        // At scale the naïve algorithm is strictly worse than 2DH.
        let naive = big.naive_local_agg_time(s, Protocol::Simple);
        let two_dh = big.two_dh_time_impl(s, Protocol::Simple, A2aImpl::NcclApi);
        assert!(naive > two_dh, "naive {naive} vs 2DH {two_dh}");
        // The scattered-access local phase costs milliseconds at
        // n = 2048 while 2DH's aligned copies stay scale-independent
        // (and far cheaper).
        let scattered = big.world().gpu().strided_copy_time(s, s / 2048.0);
        let aligned = 1.25 * big.world().gpu().copy_time(s);
        assert!(scattered > 1e-3, "scattered access {scattered}");
        assert!(
            scattered > 4.0 * aligned,
            "scattered {scattered} vs aligned {aligned}"
        );
    }

    #[test]
    fn three_dh_beats_two_dh_for_tiny_messages_at_extreme_scale() {
        // Section 4.3 Extension: with n/m still large, a third level of
        // aggregation pays off for small payloads.
        let t = CollectiveTiming::new(World::azure(4096));
        let s = 0.25 * MIB;
        let two = t.two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl);
        let three = t.three_dh_time(s, Protocol::Simple, 16);
        assert!(three < two, "3DH {three} vs 2DH {two}");
        // And it degenerates to 2DH for a single group.
        let single_group = t.three_dh_time(s, Protocol::Simple, 512);
        assert!((single_group - two).abs() / two < 1e-9);
    }

    #[test]
    fn three_dh_loses_for_large_messages() {
        // The extra copy + hop costs more than it saves once messages
        // already saturate the links.
        let t = CollectiveTiming::new(World::azure(1024));
        let s = 256.0 * MIB;
        let two = t.two_dh_time_impl(s, Protocol::Simple, A2aImpl::Msccl);
        let three = t.three_dh_time(s, Protocol::Simple, 16);
        assert!(three > two, "3DH {three} vs 2DH {two}");
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn three_dh_validates_grouping() {
        CollectiveTiming::new(World::azure(64)).three_dh_time(1024.0, Protocol::Simple, 3);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let t = CollectiveTiming::new(World::azure(1));
        assert_eq!(t.linear_time(MIB, Protocol::Simple), 0.0);
        assert_eq!(t.all_reduce_time(MIB, 1), 0.0);
        assert_eq!(t.all_gather_time(MIB, 1), 0.0);
    }

    #[test]
    fn allreduce_costs_about_twice_allgather() {
        let t = CollectiveTiming::new(World::azure(8));
        let ag = t.all_gather_time(MIB, 8);
        let ar = t.all_reduce_time(8.0 * MIB, 8);
        let ratio = ar / ag;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn observed_pricing_attributes_dispatch_and_combine_separately() {
        let t = CollectiveTiming::new(World::azure(64));
        let tel = tutel_obs::Telemetry::enabled();
        // Asymmetric legs: a chunked dispatch ships a quarter of what
        // the combine returns.
        let td = t.all_to_all_time_observed(
            A2aPhase::Dispatch,
            AllToAllAlgo::Linear,
            MIB / 4.0,
            Protocol::Simple,
            &tel,
        );
        let tc = t.all_to_all_time_observed(
            A2aPhase::Combine,
            AllToAllAlgo::Linear,
            MIB,
            Protocol::Simple,
            &tel,
        );
        assert!(td < tc, "smaller dispatch must price below combine");
        let ops: Vec<(String, f64)> = tel
            .events()
            .into_iter()
            .filter_map(|e| match e {
                tutel_obs::Event::Collective(c) => Some((c.op, c.bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                ("a2a_dispatch".to_string(), MIB / 4.0),
                ("a2a_combine".to_string(), MIB),
            ],
            "each leg must land in its own op bucket"
        );
    }

    #[test]
    fn busbw_declines_with_scale_for_fixed_size() {
        let s = MIB;
        let bw64 = CollectiveTiming::new(World::azure(64)).bus_bandwidth(
            AllToAllAlgo::Linear,
            s,
            Protocol::Simple,
        );
        let bw2048 = CollectiveTiming::new(World::azure(2048)).bus_bandwidth(
            AllToAllAlgo::Linear,
            s,
            Protocol::Simple,
        );
        assert!(bw64 > 3.0 * bw2048, "bw64 {bw64} bw2048 {bw2048}");
    }
}
