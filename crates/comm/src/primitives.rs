//! Functional ring-style collectives beyond All-to-All.
//!
//! P1 (Expert + Data parallelism) needs all-gather to materialize its
//! ZeRO-sharded expert parameters and reduce-scatter/all-reduce for
//! gradient synchronization; these are their functional equivalents.

use crate::RankBuffers;

/// All-gather: every rank receives the concatenation of all ranks'
/// buffers in rank order.
///
/// # Panics
///
/// Panics if `bufs` is empty or ragged.
pub fn all_gather(bufs: &RankBuffers) -> RankBuffers {
    let n = bufs.len();
    assert!(n > 0, "all-gather over zero ranks");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    let mut gathered = Vec::with_capacity(n * len);
    for b in bufs {
        gathered.extend_from_slice(b);
    }
    vec![gathered; n]
}

/// All-reduce (sum): every rank receives the elementwise sum of all
/// ranks' buffers.
///
/// # Panics
///
/// Panics if `bufs` is empty or ragged.
pub fn all_reduce_sum(bufs: &RankBuffers) -> RankBuffers {
    let n = bufs.len();
    assert!(n > 0, "all-reduce over zero ranks");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    let mut sum = vec![0.0f32; len];
    for b in bufs {
        for (s, v) in sum.iter_mut().zip(b) {
            *s += v;
        }
    }
    vec![sum; n]
}

/// Reduce-scatter (sum): rank `r` receives the `r`-th shard of the
/// elementwise sum.
///
/// # Panics
///
/// Panics if buffers are ragged or not divisible into `n` shards.
pub fn reduce_scatter_sum(bufs: &RankBuffers) -> RankBuffers {
    let n = bufs.len();
    assert!(n > 0, "reduce-scatter over zero ranks");
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "all ranks must hold equally sized buffers"
    );
    assert!(
        len.is_multiple_of(n),
        "buffer of {len} elements not divisible into {n} shards"
    );
    let shard = len / n;
    let reduced = &all_reduce_sum(bufs)[0];
    (0..n)
        .map(|r| reduced[r * shard..(r + 1) * shard].to_vec())
        .collect()
}

/// Broadcast from `root`: every rank receives `bufs[root]`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn broadcast(bufs: &RankBuffers, root: usize) -> RankBuffers {
    assert!(root < bufs.len(), "broadcast root {root} out of range");
    vec![bufs[root].clone(); bufs.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bufs() -> RankBuffers {
        vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let out = all_gather(&bufs());
        for r in out {
            assert_eq!(r, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let out = all_reduce_sum(&bufs());
        for r in out {
            assert_eq!(r, vec![9.0, 12.0]);
        }
    }

    #[test]
    fn reduce_scatter_splits_the_sum() {
        let bufs = vec![
            vec![1.0, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
            vec![100.0, 200.0, 300.0],
        ];
        let out = reduce_scatter_sum(&bufs);
        assert_eq!(out[0], vec![111.0]);
        assert_eq!(out[1], vec![222.0]);
        assert_eq!(out[2], vec![333.0]);
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let bufs = vec![
            vec![1.0, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
            vec![100.0, 200.0, 300.0],
        ];
        let via_rs = all_gather(&reduce_scatter_sum(&bufs));
        let via_ar = all_reduce_sum(&bufs);
        assert_eq!(via_rs, via_ar);
    }

    #[test]
    fn broadcast_replicates_root() {
        let out = broadcast(&bufs(), 1);
        for r in out {
            assert_eq!(r, vec![3.0, 4.0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn broadcast_checks_root() {
        broadcast(&bufs(), 3);
    }
}
