//! The `strideMemcpy` primitive of Algorithm 3.
//!
//! 2DH All-to-All avoids the naïve algorithm's non-contiguous memory
//! access by *aligning* chunks that share a destination before each
//! exchange phase. `strideMemcpy` is that alignment: viewing the buffer
//! as `row × col` chunks, chunk `i` moves to position
//! `(i % row) · col + i / row` — a chunk-granular matrix transpose.

/// Chunk-granular transpose: reorders `input`, laid out as
/// `(row, col, chunk)` row-major — `row × col` chunks of `chunk`
/// contiguous elements — so that chunk `i` lands at position
/// `(i % row) * col + i / row`.
///
/// With `row = ngpus_per_node`, `col = nnodes` this groups the chunks
/// destined for the same *local* GPU together (phase 1 of Figure 15);
/// with the arguments swapped it groups chunks for the same *remote
/// node* together (phase 3).
///
/// # Panics
///
/// Panics if `input.len() != row * col * chunk`.
///
/// # Example
///
/// ```
/// use tutel_comm::stride_memcpy;
///
/// // 8 chunks of 1 element on GPU0 of a 2-node × 4-GPU cluster:
/// let input: Vec<f32> = (0..8).map(|x| x as f32).collect();
/// let out = stride_memcpy(&input, 1, 4, 2);
/// // Figure 15 phase 1: 00 04 01 05 02 06 03 07.
/// assert_eq!(out, vec![0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0]);
/// ```
pub fn stride_memcpy(input: &[f32], chunk: usize, row: usize, col: usize) -> Vec<f32> {
    assert_eq!(
        input.len(),
        row * col * chunk,
        "stride_memcpy: buffer of {} elements is not {row} x {col} chunks of {chunk}",
        input.len()
    );
    let mut output = vec![0.0f32; input.len()];
    for i in 0..row * col {
        let j = (i % row) * col + i / row;
        output[j * chunk..(j + 1) * chunk].copy_from_slice(&input[i * chunk..(i + 1) * chunk]);
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels chunks like Figure 15: value = src_gpu * 10 + dst_gpu.
    fn gpu_row(src: usize, n: usize) -> Vec<f32> {
        (0..n).map(|d| (src * 10 + d) as f32).collect()
    }

    #[test]
    fn figure15_phase1_layout() {
        // 2 nodes × 4 GPUs; GPU2's initial row is 20..27.
        let out = stride_memcpy(&gpu_row(2, 8), 1, 4, 2);
        let expect: Vec<f32> = [20, 24, 21, 25, 22, 26, 23, 27]
            .iter()
            .map(|&x| x as f32)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn figure15_phase3_layout() {
        // After phase 2, GPU0 holds 00 04 10 14 20 24 30 34; phase 3
        // swaps row/col and yields 00 10 20 30 04 14 24 34.
        let phase2: Vec<f32> = [0, 4, 10, 14, 20, 24, 30, 34]
            .iter()
            .map(|&x| x as f32)
            .collect();
        let out = stride_memcpy(&phase2, 1, 2, 4);
        let expect: Vec<f32> = [0, 10, 20, 30, 4, 14, 24, 34]
            .iter()
            .map(|&x| x as f32)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn double_transpose_is_identity() {
        let input: Vec<f32> = (0..24).map(|x| x as f32).collect();
        let once = stride_memcpy(&input, 2, 3, 4);
        let twice = stride_memcpy(&once, 2, 4, 3);
        assert_eq!(twice, input);
    }

    #[test]
    fn chunk_contents_move_atomically() {
        let input: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let out = stride_memcpy(&input, 3, 2, 2);
        // Chunk 1 (values 3,4,5) moves to position (1%2)*2 + 0 = 2.
        assert_eq!(&out[6..9], &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "stride_memcpy")]
    fn rejects_mismatched_buffer() {
        stride_memcpy(&[0.0; 7], 1, 4, 2);
    }
}
