//! Flexible All-to-All (Section 3.1 of the paper).
//!
//! A plain All-to-All used for MoE dispatch transforms the layout
//! `(E, ΔC, M) → (W, ΔE, ΔC, M)`: the leading dimensions depend on the
//! world size `W`, and at large `W` the per-batch row count of the
//! following expert GEMM collapses (Figure 7). Flexible All-to-All
//! takes two extra arguments — the dimension to *concatenate* received
//! chunks along and the dimension to *split* the input along — so that
//! dispatch can produce `(ΔE, C, M)` whose shape is independent of `W`.

use tutel_simgpu::Topology;
use tutel_tensor::{Tensor, TensorError};

use crate::{AllToAllAlgo, RankBuffers};

/// Functional Flexible All-to-All over per-rank tensors.
///
/// Splits each rank's tensor into `W` equal parts along `split_dim`,
/// exchanges part `d` of rank `s` to rank `d` (via `algo`), and
/// concatenates the parts received by each rank along `concat_dim` in
/// source-rank order.
///
/// For MoE dispatch call with `(concat_dim, split_dim) = (1, 0)`:
/// `(E, ΔC, M) → (ΔE, C, M)`. For combine use `(0, 1)`:
/// `(ΔE, C, M) → (E, ΔC, M)` (Table 3 of the paper).
///
/// # Errors
///
/// Returns a [`TensorError`] if shapes are ragged across ranks, the
/// split dimension is not divisible by `W`, or the dimension indices
/// are out of range.
///
/// # Example
///
/// ```
/// use tutel_comm::{flex::flex_all_to_all, AllToAllAlgo};
/// use tutel_simgpu::Topology;
/// use tutel_tensor::Tensor;
///
/// // W = 2, E = 2 experts, ΔC = 2, M = 1.
/// let topo = Topology::single_node(2);
/// let r0 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2, 1])?;
/// let r1 = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2, 1])?;
/// let out = flex_all_to_all(&[r0, r1], 1, 0, AllToAllAlgo::Linear, &topo)?;
/// // Rank 0 now owns expert 0 with capacity gathered from both ranks.
/// assert_eq!(out[0].dims(), &[1, 4, 1]);
/// assert_eq!(out[0].as_slice(), &[1.0, 2.0, 5.0, 6.0]);
/// # Ok::<(), tutel_tensor::TensorError>(())
/// ```
pub fn flex_all_to_all(
    inputs: &[Tensor],
    concat_dim: usize,
    split_dim: usize,
    algo: AllToAllAlgo,
    topology: &Topology,
) -> Result<Vec<Tensor>, TensorError> {
    let w = topology.world_size();
    if inputs.len() != w {
        return Err(TensorError::InvalidArgument(format!(
            "{} input tensors for world size {w}",
            inputs.len()
        )));
    }
    let first_dims = inputs[0].dims().to_vec();
    for t in inputs {
        if t.dims() != first_dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                left: first_dims.clone(),
                right: t.dims().to_vec(),
                op: "flex_all_to_all",
            });
        }
    }

    // Split each rank's tensor and flatten the parts into one wire
    // buffer per rank (part d occupies chunk d).
    let mut part_dims: Vec<usize> = Vec::new();
    let mut wire: RankBuffers = Vec::with_capacity(w);
    for t in inputs {
        let parts = t.split_axis(split_dim, w)?;
        part_dims = parts[0].dims().to_vec();
        let mut buf = Vec::with_capacity(t.len());
        for p in parts {
            buf.extend_from_slice(p.as_slice());
        }
        wire.push(buf);
    }

    // The exchange itself (both algorithms are exchange-equivalent).
    let exchanged = algo.run(&wire, topology);

    // Unflatten each received chunk and concatenate along concat_dim.
    let chunk_len: usize = part_dims.iter().product();
    let mut out = Vec::with_capacity(w);
    for buf in exchanged {
        let parts: Vec<Tensor> = buf
            .chunks(chunk_len)
            .map(|c| Tensor::from_vec(c.to_vec(), &part_dims))
            .collect::<Result<_, _>>()?;
        out.push(Tensor::concat_axis(&parts, concat_dim)?);
    }
    Ok(out)
}

/// The rigid layout a plain All-to-All produces for dispatch:
/// `(E, ΔC, M) → (W·ΔE, ΔC, M)` (i.e. `(W, ΔE, ΔC, M)` flattened).
///
/// This is what Fairseq/DeepSpeed feed their expert GEMM; provided so
/// benchmarks can compare expert-compute efficiency under both layouts.
///
/// # Errors
///
/// Returns a [`TensorError`] under the same conditions as
/// [`flex_all_to_all`].
pub fn rigid_all_to_all(
    inputs: &[Tensor],
    algo: AllToAllAlgo,
    topology: &Topology,
) -> Result<Vec<Tensor>, TensorError> {
    flex_all_to_all(inputs, 0, 0, algo, topology)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds rank tensors (E, dc, m) where element value encodes
    /// (rank, expert, cap, m) uniquely.
    fn inputs(w: usize, e: usize, dc: usize, m: usize) -> Vec<Tensor> {
        (0..w)
            .map(|r| {
                let data: Vec<f32> = (0..e * dc * m)
                    .map(|i| (r * e * dc * m + i) as f32)
                    .collect();
                Tensor::from_vec(data, &[e, dc, m]).unwrap()
            })
            .collect()
    }

    #[test]
    fn dispatch_layout_is_scale_independent() {
        let topo = Topology::new(2, 2);
        let (e, dc, m) = (4, 3, 2);
        let out = flex_all_to_all(&inputs(4, e, dc, m), 1, 0, AllToAllAlgo::Linear, &topo).unwrap();
        // ΔE = E/W = 1, C = W·ΔC = 12.
        assert_eq!(out[0].dims(), &[1, 12, 2]);
    }

    #[test]
    fn dispatch_routes_expert_slabs_to_owners() {
        let topo = Topology::single_node(2);
        let (e, dc, m) = (2, 2, 1);
        let ins = inputs(2, e, dc, m);
        let out = flex_all_to_all(&ins, 1, 0, AllToAllAlgo::Linear, &topo).unwrap();
        // Rank 1 owns expert 1; capacity slots from rank 0 then rank 1.
        let expect: Vec<f32> = vec![
            ins[0].at(&[1, 0, 0]),
            ins[0].at(&[1, 1, 0]),
            ins[1].at(&[1, 0, 0]),
            ins[1].at(&[1, 1, 0]),
        ];
        assert_eq!(out[1].as_slice(), expect.as_slice());
    }

    #[test]
    fn combine_inverts_dispatch() {
        let topo = Topology::new(2, 2);
        let ins = inputs(4, 4, 2, 3);
        let dispatched = flex_all_to_all(&ins, 1, 0, AllToAllAlgo::TwoDh, &topo).unwrap();
        let combined = flex_all_to_all(&dispatched, 0, 1, AllToAllAlgo::TwoDh, &topo).unwrap();
        for (orig, back) in ins.iter().zip(&combined) {
            assert_eq!(orig, back);
        }
    }

    #[test]
    fn linear_and_two_dh_produce_identical_flex_output() {
        let topo = Topology::new(2, 4);
        let ins = inputs(8, 8, 2, 2);
        let a = flex_all_to_all(&ins, 1, 0, AllToAllAlgo::Linear, &topo).unwrap();
        let b = flex_all_to_all(&ins, 1, 0, AllToAllAlgo::TwoDh, &topo).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rigid_layout_keeps_world_dim() {
        let topo = Topology::single_node(4);
        let out = rigid_all_to_all(&inputs(4, 4, 3, 2), AllToAllAlgo::Linear, &topo).unwrap();
        // (W·ΔE, ΔC, M) = (4·1, 3, 2).
        assert_eq!(out[0].dims(), &[4, 3, 2]);
    }

    #[test]
    fn rejects_wrong_rank_count() {
        let topo = Topology::single_node(4);
        let err = flex_all_to_all(&inputs(2, 4, 1, 1), 1, 0, AllToAllAlgo::Linear, &topo);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_indivisible_split_dim() {
        let topo = Topology::single_node(4);
        // E = 3 not divisible by W = 4.
        let err = flex_all_to_all(&inputs(4, 3, 1, 1), 1, 0, AllToAllAlgo::Linear, &topo);
        assert!(err.is_err());
    }
}
