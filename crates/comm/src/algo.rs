use std::fmt;

use tutel_simgpu::Topology;

use crate::{linear_all_to_all, two_dh_all_to_all, RankBuffers};

/// All-to-All algorithm choice.
///
/// Figure 5 of the paper shows neither algorithm dominates: linear wins
/// at large message sizes / small scale, 2DH at small sizes / large
/// scale — so adaptive pipelining searches over this enum jointly with
/// the pipelining degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllToAllAlgo {
    /// Point-to-point loop (Algorithm 1) — NCCL's default.
    #[default]
    Linear,
    /// Two-Dimensional Hierarchical (Algorithm 3).
    TwoDh,
}

impl AllToAllAlgo {
    /// All algorithms, in search order.
    pub const ALL: [AllToAllAlgo; 2] = [AllToAllAlgo::Linear, AllToAllAlgo::TwoDh];

    /// Runs the functional exchange with this algorithm.
    ///
    /// Both algorithms produce identical outputs; the choice matters
    /// only for (simulated) performance.
    ///
    /// # Panics
    ///
    /// Panics under the preconditions of the chosen algorithm (see
    /// [`linear_all_to_all`] / [`two_dh_all_to_all`]).
    pub fn run(&self, bufs: &RankBuffers, topology: &Topology) -> RankBuffers {
        match self {
            AllToAllAlgo::Linear => linear_all_to_all(bufs),
            AllToAllAlgo::TwoDh => two_dh_all_to_all(bufs, topology),
        }
    }
}

impl fmt::Display for AllToAllAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllToAllAlgo::Linear => write!(f, "Linear"),
            AllToAllAlgo::TwoDh => write!(f, "2DH"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_agree() {
        let topo = Topology::new(2, 2);
        let bufs: RankBuffers = (0..4)
            .map(|r| (0..8).map(|i| (r * 100 + i) as f32).collect())
            .collect();
        let a = AllToAllAlgo::Linear.run(&bufs, &topo);
        let b = AllToAllAlgo::TwoDh.run(&bufs, &topo);
        assert_eq!(a, b);
    }

    #[test]
    fn display_names() {
        assert_eq!(AllToAllAlgo::Linear.to_string(), "Linear");
        assert_eq!(AllToAllAlgo::TwoDh.to_string(), "2DH");
    }
}
