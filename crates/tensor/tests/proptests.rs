//! Property-based tests for the tensor substrate's core invariants.

use proptest::prelude::*;
use tutel_tensor::Tensor;

fn arb_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(a, b, c)| {
        proptest::collection::vec(-100.0f32..100.0, a * b * c)
            .prop_map(move |data| Tensor::from_vec(data, &[a, b, c]).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn split_concat_roundtrips_any_axis(t in arb_tensor(6), axis in 0usize..3) {
        let len = t.dims()[axis];
        for parts in 1..=len {
            if len % parts == 0 {
                let split = t.split_axis(axis, parts).unwrap();
                let back = Tensor::concat_axis(&split, axis).unwrap();
                prop_assert_eq!(&back, &t);
            }
        }
    }

    #[test]
    fn permute_then_inverse_is_identity(t in arb_tensor(5)) {
        let perms: [[usize; 3]; 6] =
            [[0,1,2],[0,2,1],[1,0,2],[1,2,0],[2,0,1],[2,1,0]];
        for p in perms {
            let mut inv = [0usize; 3];
            for (i, &pi) in p.iter().enumerate() {
                inv[pi] = i;
            }
            let back = t.permute(&p).unwrap().permute(&inv).unwrap();
            prop_assert_eq!(&back, &t);
        }
    }

    #[test]
    fn matmul_identity_is_noop(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut rng = tutel_tensor::Rng::seed(seed);
        let a = rng.normal_tensor(&[rows, cols], 0.0, 1.0);
        let id = Tensor::eye(cols);
        prop_assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()
    ) {
        let mut rng = tutel_tensor::Rng::seed(seed);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let c = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        let diff = lhs.sub(&rhs).unwrap().max_abs();
        prop_assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor(5)) {
        let flat = t.reshape(&[t.len() / t.dims()[2], t.dims()[2]]).unwrap();
        let s = flat.softmax_last();
        for row in s.as_slice().chunks(flat.dims()[1]) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        }
    }

    #[test]
    fn topk_returns_the_k_largest(cols in 1usize..8, k_off in 0usize..8, seed in any::<u64>()) {
        let k = 1 + k_off % cols;
        let mut rng = tutel_tensor::Rng::seed(seed);
        let t = rng.normal_tensor(&[3, cols], 0.0, 1.0);
        let (idxs, vals) = t.topk_last(k).unwrap();
        for r in 0..3 {
            let row = &t.as_slice()[r * cols..(r + 1) * cols];
            let mut sorted: Vec<f32> = row.to_vec();
            sorted.sort_by(|a, b| b.total_cmp(a));
            for (i, &v) in vals[r].iter().enumerate() {
                prop_assert_eq!(v, sorted[i]);
            }
            // Indices actually point at the values.
            for (&i, &v) in idxs[r].iter().zip(&vals[r]) {
                prop_assert_eq!(row[i], v);
            }
        }
    }

    #[test]
    fn clip_norm_bounds_the_norm(t in arb_tensor(4), max_norm in 0.01f32..10.0) {
        let mut c = t.clone();
        c.clip_norm(max_norm);
        prop_assert!(c.sq_norm().sqrt() <= max_norm * 1.001);
        // Direction is preserved: c is a non-negative multiple of t.
        if t.sq_norm() > 0.0 {
            let scale = c.sq_norm().sqrt() / t.sq_norm().sqrt();
            for (a, b) in t.as_slice().iter().zip(c.as_slice()) {
                prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + a.abs()));
            }
        }
    }
}
