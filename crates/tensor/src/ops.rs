//! Elementwise and reduction operations used by gating and training.

use crate::{Result, Tensor, TensorError};

/// Per-row top-k result: `(indices, values)`, each `rows × k`.
pub type TopK = (Vec<Vec<usize>>, Vec<Vec<f32>>);

impl Tensor {
    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (axpy), the accumulation primitive
    /// used by gradient updates and P2's local sum-reduction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v *= alpha;
        }
        out
    }

    /// Applies a function elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        out
    }

    /// ReLU activation.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Derivative mask of ReLU with respect to this (pre-activation)
    /// tensor, multiplied into `upstream`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn relu_backward(&self, upstream: &Tensor) -> Result<Tensor> {
        self.zip_with(
            upstream,
            "relu_backward",
            |pre, g| if pre > 0.0 { g } else { 0.0 },
        )
    }

    /// GELU activation (tanh approximation, as used by transformer FFNs).
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// Derivative of GELU (tanh approximation) times `upstream`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn gelu_backward(&self, upstream: &Tensor) -> Result<Tensor> {
        self.zip_with(upstream, "gelu_backward", |pre, g| {
            gelu_grad_scalar(pre) * g
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Clips the tensor's L2 norm to `max_norm` in place (gradient
    /// clipping). No-op if the norm is already within bounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn clip_norm(&mut self, max_norm: f32) {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.sq_norm().sqrt();
        if norm > max_norm {
            let scale = max_norm / norm;
            for v in self.as_mut_slice() {
                *v *= scale;
            }
        }
    }

    /// Row-wise softmax over the last axis.
    ///
    /// For a gating logits tensor of shape `(T, E)` this produces the
    /// routing probabilities of Figure 18 line 2. Rows are processed
    /// in fixed 64-row chunks on the `tutel-rt` pool, and each row in
    /// four passes through the active kernel table: a lane-tree max,
    /// a scalar `exp` sweep (libm `exp` is scalar in both modes), a
    /// lane-tree sum, and a lanewise divide. Each row's arithmetic is
    /// self-contained and every pass is bitwise-identical across
    /// kernel tables, so results are bit-identical for any worker
    /// count and any `TUTEL_SIMD` setting (rows shorter than 8 lanes
    /// degenerate to the sequential tail in both modes).
    // check:hot
    pub fn softmax_last(&self) -> Tensor {
        let cols = *self.dims().last().unwrap_or(&1);
        let mut out = crate::scratch::copy_of(self);
        if cols == 0 {
            return out;
        }
        tutel_rt::parallel_chunks(out.as_mut_slice(), 64 * cols, |_, chunk| {
            let kt = crate::dispatch::table();
            for row in chunk.chunks_mut(cols) {
                let max = (kt.row_max)(row);
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                }
                let denom = (kt.row_sum)(row);
                (kt.div_assign)(row, denom);
            }
        });
        out
    }

    /// Backward of [`Tensor::softmax_last`]: given `y = softmax(x)` (this
    /// tensor) and upstream gradient `dy`, returns `dx`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn softmax_last_backward(&self, upstream: &Tensor) -> Result<Tensor> {
        if self.shape() != upstream.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: upstream.dims().to_vec(),
                op: "softmax_last_backward",
            });
        }
        let cols = *self.dims().last().unwrap_or(&1);
        let mut out = self.clone();
        if cols == 0 {
            return Ok(out);
        }
        for ((yrow, grow), orow) in self
            .as_slice()
            .chunks(cols)
            .zip(upstream.as_slice().chunks(cols))
            .zip(out.as_mut_slice().chunks_mut(cols))
        {
            let dot: f32 = yrow.iter().zip(grow).map(|(y, g)| y * g).sum();
            for j in 0..cols {
                orow[j] = yrow[j] * (grow[j] - dot);
            }
        }
        Ok(out)
    }

    /// Per-row top-k over the last axis: returns `(indices, values)` each
    /// of shape `rows × k`, sorted by descending value (ties broken by
    /// lower index, matching deterministic GPU top-k).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k` is zero or larger
    /// than the last-axis length.
    pub fn topk_last(&self, k: usize) -> Result<TopK> {
        let cols = *self.dims().last().unwrap_or(&0);
        if k == 0 || k > cols {
            return Err(TensorError::InvalidArgument(format!(
                "top-k with k={k} over axis of length {cols}"
            )));
        }
        let rows = self.len() / cols;
        let mut idxs = Vec::with_capacity(rows);
        let mut vals = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.as_slice()[r * cols..(r + 1) * cols];
            let mut order: Vec<usize> = (0..cols).collect();
            order.sort_by(|&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.truncate(k);
            vals.push(order.iter().map(|&i| row[i]).collect());
            idxs.push(order);
        }
        Ok((idxs, vals))
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op,
            });
        }
        let mut out = self.clone();
        for (a, b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a = f(*a, *b);
        }
        Ok(out)
    }
}

/// Scalar GELU, tanh approximation.
/// Slice form of [`Tensor::gelu`]: writes `gelu(h_pre[i])` into
/// `out[i]`. Hot backward paths use this on arena buffers to avoid
/// materializing whole-activation temporaries.
pub fn gelu_slice(h_pre: &[f32], out: &mut [f32]) {
    for (o, &pre) in out.iter_mut().zip(h_pre) {
        *o = gelu_scalar(pre);
    }
}

/// In-place slice form of [`Tensor::gelu_backward`]: scales each
/// upstream gradient by `gelu'(h_pre[i])`.
pub fn gelu_backward_in_place(h_pre: &[f32], upstream: &mut [f32]) {
    for (g, &pre) in upstream.iter_mut().zip(h_pre) {
        *g *= gelu_grad_scalar(pre);
    }
}

/// Like [`gelu_slice`], but also stores the intermediate `tanh` value
/// in `tanh_out[i]`. Training forward passes use this so the backward
/// pass can apply [`gelu_backward_with_tanh`] without re-evaluating
/// `tanh`, which dominates the activation cost. Bit-identical to
/// [`gelu_slice`] on `out`.
pub fn gelu_slice_with_tanh(h_pre: &[f32], out: &mut [f32], tanh_out: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for ((o, t), &x) in out.iter_mut().zip(tanh_out.iter_mut()).zip(h_pre) {
        let th = (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh();
        *t = th;
        *o = 0.5 * x * (1.0 + th);
    }
}

/// In-place GELU backward reusing the `tanh` values captured by
/// [`gelu_slice_with_tanh`]. Bit-identical to
/// [`gelu_backward_in_place`] (the gradient expression is evaluated in
/// the same order, only the `tanh` is read instead of recomputed).
pub fn gelu_backward_with_tanh(h_pre: &[f32], tanh: &[f32], upstream: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for ((g, &x), &t) in upstream.iter_mut().zip(h_pre).zip(tanh) {
        let dinner = SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x);
        *g *= 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner;
    }
}

fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU.
fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let inner = SQRT_2_OVER_PI * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn gelu_with_tanh_is_bit_identical_to_plain_forms() {
        let h_pre: Vec<f32> = (-40..40).map(|i| i as f32 * 0.17).collect();
        let mut plain = vec![0.0; h_pre.len()];
        gelu_slice(&h_pre, &mut plain);
        let mut cached = vec![0.0; h_pre.len()];
        let mut tanh = vec![0.0; h_pre.len()];
        gelu_slice_with_tanh(&h_pre, &mut cached, &mut tanh);
        assert_eq!(plain, cached);

        let upstream: Vec<f32> = (0..h_pre.len()).map(|i| 0.3 + i as f32 * 0.01).collect();
        let mut g_plain = upstream.clone();
        gelu_backward_in_place(&h_pre, &mut g_plain);
        let mut g_cached = upstream;
        gelu_backward_with_tanh(&h_pre, &tanh, &mut g_cached);
        assert_eq!(g_plain, g_cached);
    }

    #[test]
    fn add_sub_mul_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 4.0, -1.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().sub(&b).unwrap(), a);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[0.5, -8.0, -3.0]);
        assert!(a.add(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_last();
        for row in s.as_slice().chunks(3) {
            assert!(close(row.iter().sum::<f32>(), 1.0));
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // Monotonicity within a row.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|v| v + 100.0);
        let (sa, sb) = (a.softmax_last(), b.softmax_last());
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], &[1, 4]).unwrap();
        let y = x.softmax_last();
        let upstream = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0], &[1, 4]).unwrap();
        let analytic = y.softmax_last_backward(&upstream).unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp: f32 = xp.softmax_last().mul(&upstream).unwrap().sum();
            let lm: f32 = xm.softmax_last().mul(&upstream).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic.as_slice()[i]).abs() < 1e-3,
                "fd {} vs analytic {}",
                fd,
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn softmax_is_bit_identical_across_simd_modes() {
        if !crate::dispatch::simd_available() {
            return;
        }
        let mut rng = crate::Rng::seed(31);
        // Wide rows (several 8-lane blocks + tail) and narrow rows
        // (pure tail) both must agree bit-for-bit.
        for cols in [3usize, 17, 64] {
            let x = rng.normal_tensor(&[37, cols], 0.0, 3.0);
            let scalar = crate::dispatch::with_simd_mode(Some(false), || x.softmax_last());
            let simd = crate::dispatch::with_simd_mode(Some(true), || x.softmax_last());
            for (a, b) in scalar.as_slice().iter().zip(simd.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "cols {cols}");
            }
        }
    }

    #[test]
    fn topk_orders_descending_with_index_tiebreak() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.9, 0.3], &[1, 4]).unwrap();
        let (idxs, vals) = t.topk_last(3).unwrap();
        assert_eq!(idxs[0], vec![1, 2, 3]);
        assert_eq!(vals[0], vec![0.9, 0.9, 0.3]);
    }

    #[test]
    fn topk_validates_k() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.topk_last(0).is_err());
        assert!(t.topk_last(4).is_err());
        assert!(t.topk_last(3).is_ok());
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 2.0]);
        let g = Tensor::ones(&[3]);
        assert_eq!(x.relu_backward(&g).unwrap().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).unwrap();
        let g = Tensor::ones(&[5]);
        let analytic = x.gelu_backward(&g).unwrap();
        let eps = 1e-3;
        for i in 0..5 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (xp.gelu().sum() - xm.gelu().sum()) / (2.0 * eps);
            assert!(
                (fd - analytic.as_slice()[i]).abs() < 1e-2,
                "fd {} vs analytic {}",
                fd,
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn clip_norm_scales_only_when_needed() {
        let mut t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        t.clip_norm(10.0);
        assert_eq!(t.as_slice(), &[3.0, 4.0]);
        t.clip_norm(1.0);
        assert!((t.sq_norm().sqrt() - 1.0).abs() < 1e-6);
        assert!((t.as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn clip_norm_rejects_nonpositive() {
        Tensor::ones(&[2]).clip_norm(0.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0], &[3]).unwrap();
        assert!(close(t.sum(), 0.0));
        assert!(close(t.mean(), 0.0));
        assert!(close(t.max_abs(), 3.0));
        assert!(close(t.sq_norm(), 14.0));
    }
}
