//! Runtime CPU-feature kernel dispatch: the **only** module in the
//! workspace allowed to touch `is_x86_feature_detected!` or
//! `#[target_feature]` (the `kernel_dispatch` lint enforces this).
//!
//! # Design
//!
//! CPU features are detected **once** (a `OnceLock`) and resolved into
//! one of two static [`KernelTable`]s of plain function pointers — a
//! scalar table that is the portable reference, and an AVX2 table of
//! explicit `f32x8` intrinsic kernels. Hot paths fetch the active
//! table with [`table`] (two relaxed atomic loads, no detection, no
//! branching beyond the table select) and call through the pointers;
//! per-call feature checks never happen.
//!
//! # The bitwise-SIMD contract
//!
//! Every AVX2 kernel is **bitwise-identical** to its scalar twin, so
//! the PR-3 determinism contract (results are a pure function of the
//! problem, never of the worker count) extends to the `TUTEL_SIMD`
//! axis unchanged. This falls out of three rules:
//!
//! 1. **No FMA in accumulation.** The scalar microkernel computes
//!    `acc += a * b` with *two* roundings (multiply, then add); a
//!    fused multiply-add rounds once and differs in the last bit. The
//!    AVX2 kernels therefore emit `_mm256_add_ps(_mm256_mul_ps(..))`
//!    pairs — FMA availability is part of the detection gate (the
//!    AVX2 table is only installed on AVX2+FMA hosts, matching how
//!    real deployments ship one fat binary) but the instruction is
//!    deliberately never used where it would change results.
//! 2. **Lane-for-lane identical data flow.** A vector `add`/`mul`/
//!    `div`/`max` is the same IEEE operation per lane as the scalar
//!    loop it replaces, so any kernel that is already lane-parallel
//!    (the micro-tile, `axpy`, lanewise divide) is bitwise for free.
//! 3. **Shared reduction trees.** Horizontal reductions (dot, row
//!    max, row sum) strip-mine into [`NR`] = 8 lanes and collapse
//!    them with one fixed tree — `(l0+l4)+(l1+l5)`, `(l2+l6)+(l3+l7)`,
//!    then the pair, then the scalar tail — in *both* modes; the AVX2
//!    path accumulates the lanes in one register and extracts them
//!    into the very same tree.
//!
//! Mode selection: `TUTEL_SIMD=0` forces scalar, unset or `1` uses
//! AVX2 when the host has it (read once); [`set_simd_override`] flips
//! the mode in-process so differential harnesses can compare both
//! sides without re-exec.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Rows per register micro-tile.
pub const MR: usize = 4;
/// Columns per register micro-tile — also the strip-mining width of
/// every lane-tree reduction.
pub const NR: usize = 8;

/// Which kernel family the active table dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Portable scalar kernels (the reference semantics).
    Scalar,
    /// Explicit AVX2 `f32x8` kernels (bitwise-identical to scalar).
    Avx2,
}

impl SimdMode {
    /// Short label for telemetry and bench records.
    pub fn label(&self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Avx2 => "avx2",
        }
    }
}

/// `out_rows[(ir + r) * n + jc ..][..NR] += apanel · b` micro-tile;
/// see [`KernelTable::micro_tile`].
pub type MicroTileFn = fn(&[f32], usize, &[f32], usize, usize, usize, &mut [f32], usize, usize);
/// Strip-mined dot product with the fixed lane tree.
pub type DotFn = fn(&[f32], &[f32]) -> f32;
/// `out[i] += a * v[i]`.
pub type AxpyFn = fn(f32, &[f32], &mut [f32]);
/// `out[i] += v[i]`.
pub type AddAssignFn = fn(&[f32], &mut [f32]);
/// Lane-tree horizontal reduction of one row.
pub type RowReduceFn = fn(&[f32]) -> f32;
/// `row[i] /= denom`.
pub type DivAssignFn = fn(&mut [f32], f32);
/// Round-to-nearest-even `f32 → bf16` pack (equal-length slices).
pub type Bf16PackFn = fn(&[f32], &mut [u16]);
/// `bf16 → f32` unpack (exact; equal-length slices).
pub type Bf16UnpackFn = fn(&[u16], &mut [f32]);
/// In-place rounding of every element to its nearest bf16 value.
pub type Bf16RoundFn = fn(&mut [f32]);

/// The resolved kernel set for one [`SimdMode`]. All pointers are
/// plain safe `fn`s; the AVX2 entries wrap `#[target_feature]` bodies
/// and are only ever installed after runtime detection succeeded.
pub struct KernelTable {
    /// Which family this table belongs to.
    pub mode: SimdMode,
    /// Full `MR × NR` GEMM micro-tile:
    /// `(apanel, kc_len, b, n, pc, jc, out_rows, ir, mr_eff)` —
    /// `apanel` is `kc_len × MR` interleaved (zero-padded short
    /// tiles), `b` is the full `k × n` operand, and the tile
    /// accumulates into `out_rows` at block-relative row `ir`.
    pub micro_tile: MicroTileFn,
    /// 8-lane strip-mined dot product (fixed reduction tree).
    pub dot: DotFn,
    /// `out += a * v` over equal-length slices.
    pub axpy: AxpyFn,
    /// `out += v` over equal-length slices.
    pub add_assign: AddAssignFn,
    /// Lane-tree maximum of a row (`-inf` for an empty row).
    pub row_max: RowReduceFn,
    /// Lane-tree sum of a row.
    pub row_sum: RowReduceFn,
    /// Lanewise `row[i] /= denom`.
    pub div_assign: DivAssignFn,
    /// Round-to-nearest-even `f32 → bf16` storage pack.
    pub bf16_pack: Bf16PackFn,
    /// Exact `bf16 → f32` unpack.
    pub bf16_unpack: Bf16UnpackFn,
    /// In-place bf16 rounding (`unpack(pack(x))` without the u16 hop).
    pub bf16_round: Bf16RoundFn,
}

static SCALAR_TABLE: KernelTable = KernelTable {
    mode: SimdMode::Scalar,
    micro_tile: scalar::micro_tile,
    dot: scalar::dot,
    axpy: scalar::axpy,
    add_assign: scalar::add_assign,
    row_max: scalar::row_max,
    row_sum: scalar::row_sum,
    div_assign: scalar::div_assign,
    bf16_pack: scalar::bf16_pack,
    bf16_unpack: scalar::bf16_unpack,
    bf16_round: scalar::bf16_round,
};

/// `OVERRIDE` encodes [`set_simd_override`]: 0 = follow the
/// environment default, 1 = force scalar, 2 = force SIMD.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// True iff the host supports the AVX2+FMA kernel set. Detected once;
/// every later call is one `OnceLock` load.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The `TUTEL_SIMD` environment default, read once: unset or any
/// value other than `"0"` enables SIMD (when available).
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("TUTEL_SIMD").map_or(true, |v| v != "0"))
}

/// Overrides the mode in-process: `Some(true)` forces the SIMD table
/// (clamped to scalar on hosts without AVX2+FMA), `Some(false)` forces
/// scalar, `None` reverts to the `TUTEL_SIMD` environment default.
/// Used by the differential harness to run both sides of the
/// scalar-vs-SIMD comparison in one process.
pub fn set_simd_override(force: Option<bool>) {
    let code = match force {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

/// Runs `f` with the SIMD override pinned to `force` (see
/// [`set_simd_override`]), restoring the previous override afterwards
/// even on panic. Mode-switching callers are serialized by a global
/// lock so concurrent switchers can't observe each other's override;
/// threads that *don't* switch are unaffected either way, because the
/// two kernel tables are bitwise-identical. Not reentrant.
pub fn with_simd_mode<R>(force: Option<bool>, f: impl FnOnce() -> R) -> R {
    static LOCK: Mutex<()> = Mutex::new(());
    let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Reset(u8);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _reset = Reset(OVERRIDE.load(Ordering::Relaxed));
    set_simd_override(force);
    f()
}

/// The mode the next [`table`] call resolves to.
pub fn simd_mode() -> SimdMode {
    let want_simd = match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    };
    if want_simd && simd_available() {
        SimdMode::Avx2
    } else {
        SimdMode::Scalar
    }
}

/// The active kernel table. Cheap enough for per-chunk use on hot
/// paths: an atomic load, a `OnceLock` load, and a static ref — no
/// feature detection, no allocation.
pub fn table() -> &'static KernelTable {
    match simd_mode() {
        SimdMode::Scalar => &SCALAR_TABLE,
        SimdMode::Avx2 => simd_table(),
    }
}

#[cfg(target_arch = "x86_64")]
fn simd_table() -> &'static KernelTable {
    &avx2::TABLE
}

#[cfg(not(target_arch = "x86_64"))]
fn simd_table() -> &'static KernelTable {
    &SCALAR_TABLE
}

/// Rounds one `f32` to its nearest bf16-representable value
/// (round-to-nearest-even on the dropped 16 bits). The scalar
/// reference both tables' pack kernels must match bit-for-bit.
#[inline]
pub fn bf16_round_one(v: f32) -> f32 {
    f32::from_bits((u32::from(bf16_pack_one(v))) << 16)
}

/// Packs one `f32` into bf16 storage bits (round-to-nearest-even).
#[inline]
pub fn bf16_pack_one(v: f32) -> u16 {
    let bits = v.to_bits();
    // Round-to-nearest-even on the truncated 16 low bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(rounding_bias) >> 16) as u16
}

/// Unpacks bf16 storage bits into the exact `f32` they denote.
#[inline]
pub fn bf16_unpack_one(h: u16) -> f32 {
    f32::from_bits(u32::from(h) << 16)
}

/// The scalar maximum with `_mm256_max_ps` lane semantics
/// (`if a > b { a } else { b }`: ties, signed zeros, and NaNs all
/// resolve to `b`), so the scalar and AVX2 row-max trees agree
/// bit-for-bit on every input.
#[inline]
fn maxps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Collapses 8 accumulator lanes with the fixed reduction tree shared
/// by every horizontal sum in the workspace.
#[inline]
fn sum_lanes_tree(lanes: &[f32; NR]) -> f32 {
    let s0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let s1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    s0 + s1
}

/// Collapses 8 max lanes with the same tree shape as
/// [`sum_lanes_tree`], using [`maxps`] semantics.
#[inline]
fn max_lanes_tree(lanes: &[f32; NR]) -> f32 {
    let m0 = maxps(maxps(lanes[0], lanes[4]), maxps(lanes[1], lanes[5]));
    let m1 = maxps(maxps(lanes[2], lanes[6]), maxps(lanes[3], lanes[7]));
    maxps(m0, m1)
}

/// Portable reference kernels. These define the semantics; the AVX2
/// twins must match them bit-for-bit (pinned by the dispatch
/// proptests and the harness kernel-mode matrix).
mod scalar {
    use super::{max_lanes_tree, maxps, sum_lanes_tree, MR, NR};

    // The 9-ary signature IS the `MicroTileFn` table ABI: both modes
    // must share it exactly so the pointers are interchangeable.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn micro_tile(
        apanel: &[f32],
        kc_len: usize,
        b: &[f32],
        n: usize,
        pc: usize,
        jc: usize,
        out_rows: &mut [f32],
        ir: usize,
        mr_eff: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for p in 0..kc_len {
            let boff = (pc + p) * n + jc;
            let brow = &b[boff..boff + NR];
            let avals = &apanel[p * MR..p * MR + MR];
            for (accr, &av) in acc.iter_mut().zip(avals) {
                for (aj, &bv) in accr.iter_mut().zip(brow) {
                    *aj += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate().take(mr_eff) {
            let ooff = (ir + r) * n + jc;
            let orow = &mut out_rows[ooff..ooff + NR];
            for (o, &aj) in orow.iter_mut().zip(accr) {
                *o += aj;
            }
        }
    }

    pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let mut lanes = [0.0f32; NR];
        let blocks = x.len() / NR;
        for c in 0..blocks {
            let xb = &x[c * NR..c * NR + NR];
            let yb = &y[c * NR..c * NR + NR];
            for l in 0..NR {
                lanes[l] += xb[l] * yb[l];
            }
        }
        let mut tail = 0.0f32;
        for i in blocks * NR..x.len() {
            tail += x[i] * y[i];
        }
        sum_lanes_tree(&lanes) + tail
    }

    pub(super) fn axpy(a: f32, v: &[f32], out: &mut [f32]) {
        debug_assert_eq!(v.len(), out.len());
        for (o, &x) in out.iter_mut().zip(v) {
            *o += a * x;
        }
    }

    pub(super) fn add_assign(v: &[f32], out: &mut [f32]) {
        debug_assert_eq!(v.len(), out.len());
        for (o, &x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }

    pub(super) fn row_max(x: &[f32]) -> f32 {
        let mut lanes = [f32::NEG_INFINITY; NR];
        let blocks = x.len() / NR;
        for c in 0..blocks {
            let xb = &x[c * NR..c * NR + NR];
            for l in 0..NR {
                lanes[l] = maxps(lanes[l], xb[l]);
            }
        }
        let mut m = max_lanes_tree(&lanes);
        for &v in &x[blocks * NR..] {
            m = maxps(m, v);
        }
        m
    }

    pub(super) fn row_sum(x: &[f32]) -> f32 {
        let mut lanes = [0.0f32; NR];
        let blocks = x.len() / NR;
        for c in 0..blocks {
            let xb = &x[c * NR..c * NR + NR];
            for l in 0..NR {
                lanes[l] += xb[l];
            }
        }
        let mut tail = 0.0f32;
        for &v in &x[blocks * NR..] {
            tail += v;
        }
        sum_lanes_tree(&lanes) + tail
    }

    pub(super) fn div_assign(row: &mut [f32], denom: f32) {
        for v in row.iter_mut() {
            *v /= denom;
        }
    }

    pub(super) fn bf16_pack(src: &[f32], dst: &mut [u16]) {
        debug_assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = super::bf16_pack_one(s);
        }
    }

    pub(super) fn bf16_unpack(src: &[u16], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = super::bf16_unpack_one(s);
        }
    }

    pub(super) fn bf16_round(data: &mut [f32]) {
        for v in data.iter_mut() {
            *v = super::bf16_round_one(*v);
        }
    }
}

/// Explicit AVX2 `f32x8` kernels. Every entry is a safe wrapper whose
/// body is a `#[target_feature(enable = "avx2")]` function; the
/// wrappers are private and only reachable through [`TABLE`], which
/// [`table`](super::table) returns exclusively after
/// [`simd_available`](super::simd_available) confirmed AVX2+FMA.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{max_lanes_tree, maxps, sum_lanes_tree, KernelTable, SimdMode, MR, NR};
    use core::arch::x86_64::{
        __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_and_si256,
        _mm256_cvtepu16_epi32, _mm256_div_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_max_ps,
        _mm256_mul_ps, _mm256_packus_epi32, _mm256_permute4x64_epi64, _mm256_set1_epi32,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_slli_epi32, _mm256_srli_epi32, _mm256_storeu_ps,
        _mm256_storeu_si256, _mm_loadu_si128,
    };

    pub(super) static TABLE: KernelTable = KernelTable {
        mode: SimdMode::Avx2,
        micro_tile,
        dot,
        axpy,
        add_assign,
        row_max,
        row_sum,
        div_assign,
        bf16_pack,
        bf16_unpack,
        bf16_round,
    };

    /// Loads 8 consecutive `f32`s from a slice of length ≥ `off + 8`.
    #[inline(always)]
    fn load8(s: &[f32], off: usize) -> __m256 {
        debug_assert!(off + NR <= s.len());
        // SAFETY: the caller-checked bound above guarantees 8 in-range
        // f32s at `off`; unaligned loads are permitted by `loadu`.
        unsafe { _mm256_loadu_ps(s.as_ptr().add(off)) }
    }

    /// Stores 8 lanes over `s[off .. off + 8]`.
    #[inline(always)]
    fn store8(s: &mut [f32], off: usize, v: __m256) {
        debug_assert!(off + NR <= s.len());
        // SAFETY: the bound above guarantees 8 in-range f32s at `off`;
        // unaligned stores are permitted by `storeu`.
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(off), v) }
    }

    // The 9-ary signature IS the `MicroTileFn` table ABI: both modes
    // must share it exactly so the pointers are interchangeable.
    #[allow(clippy::too_many_arguments)]
    fn micro_tile(
        apanel: &[f32],
        kc_len: usize,
        b: &[f32],
        n: usize,
        pc: usize,
        jc: usize,
        out_rows: &mut [f32],
        ir: usize,
        mr_eff: usize,
    ) {
        // SAFETY: this wrapper is reachable only through `TABLE`,
        // which the dispatcher installs after AVX2+FMA detection.
        unsafe { micro_tile_body(apanel, kc_len, b, n, pc, jc, out_rows, ir, mr_eff) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn micro_tile_body(
        apanel: &[f32],
        kc_len: usize,
        b: &[f32],
        n: usize,
        pc: usize,
        jc: usize,
        out_rows: &mut [f32],
        ir: usize,
        mr_eff: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); MR];
        for p in 0..kc_len {
            let boff = (pc + p) * n + jc;
            debug_assert!(boff + NR <= b.len());
            let bv = load8(b, boff);
            let avals = &apanel[p * MR..p * MR + MR];
            for (accr, &av) in acc.iter_mut().zip(avals) {
                // Two roundings (mul, then add) exactly like the
                // scalar kernel; `_mm256_fmadd_ps` would fuse them
                // and break the bitwise contract.
                *accr = _mm256_add_ps(*accr, _mm256_mul_ps(_mm256_set1_ps(av), bv));
            }
        }
        for (r, accr) in acc.iter().enumerate().take(mr_eff) {
            let ooff = (ir + r) * n + jc;
            let sum = _mm256_add_ps(load8(out_rows, ooff), *accr);
            store8(out_rows, ooff, sum);
        }
    }

    fn dot(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { dot_body(x, y) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn dot_body(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let blocks = x.len() / NR;
        let lanes_v = {
            let mut acc = _mm256_setzero_ps();
            for c in 0..blocks {
                let prod = _mm256_mul_ps(load8(x, c * NR), load8(y, c * NR));
                acc = _mm256_add_ps(acc, prod);
            }
            acc
        };
        let mut lanes = [0.0f32; NR];
        store8(&mut lanes[..], 0, lanes_v);
        let mut tail = 0.0f32;
        for i in blocks * NR..x.len() {
            tail += x[i] * y[i];
        }
        sum_lanes_tree(&lanes) + tail
    }

    fn axpy(a: f32, v: &[f32], out: &mut [f32]) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { axpy_body(a, v, out) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn axpy_body(a: f32, v: &[f32], out: &mut [f32]) {
        debug_assert_eq!(v.len(), out.len());
        let blocks = v.len() / NR;
        // Lanewise mul+add matches the scalar `*o += a * x` roundings.
        let av = _mm256_set1_ps(a);
        for c in 0..blocks {
            let sum = _mm256_add_ps(load8(out, c * NR), _mm256_mul_ps(av, load8(v, c * NR)));
            store8(out, c * NR, sum);
        }
        for i in blocks * NR..v.len() {
            out[i] += a * v[i];
        }
    }

    fn add_assign(v: &[f32], out: &mut [f32]) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { add_assign_body(v, out) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn add_assign_body(v: &[f32], out: &mut [f32]) {
        debug_assert_eq!(v.len(), out.len());
        let blocks = v.len() / NR;
        for c in 0..blocks {
            let sum = _mm256_add_ps(load8(out, c * NR), load8(v, c * NR));
            store8(out, c * NR, sum);
        }
        for i in blocks * NR..v.len() {
            out[i] += v[i];
        }
    }

    fn row_max(x: &[f32]) -> f32 {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { row_max_body(x) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn row_max_body(x: &[f32]) -> f32 {
        let blocks = x.len() / NR;
        // `_mm256_max_ps` has the exact semantics of the scalar
        // `maxps` helper per lane.
        let lanes_v = {
            let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
            for c in 0..blocks {
                acc = _mm256_max_ps(acc, load8(x, c * NR));
            }
            acc
        };
        let mut lanes = [0.0f32; NR];
        store8(&mut lanes[..], 0, lanes_v);
        let mut m = max_lanes_tree(&lanes);
        for &v in &x[blocks * NR..] {
            m = maxps(m, v);
        }
        m
    }

    fn row_sum(x: &[f32]) -> f32 {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { row_sum_body(x) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn row_sum_body(x: &[f32]) -> f32 {
        let blocks = x.len() / NR;
        let lanes_v = {
            let mut acc = _mm256_setzero_ps();
            for c in 0..blocks {
                acc = _mm256_add_ps(acc, load8(x, c * NR));
            }
            acc
        };
        let mut lanes = [0.0f32; NR];
        store8(&mut lanes[..], 0, lanes_v);
        let mut tail = 0.0f32;
        for &v in &x[blocks * NR..] {
            tail += v;
        }
        sum_lanes_tree(&lanes) + tail
    }

    fn div_assign(row: &mut [f32], denom: f32) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { div_assign_body(row, denom) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn div_assign_body(row: &mut [f32], denom: f32) {
        let blocks = row.len() / NR;
        // Lanewise IEEE divide is identical to the scalar `/=`.
        let dv = _mm256_set1_ps(denom);
        for c in 0..blocks {
            let q = _mm256_div_ps(load8(row, c * NR), dv);
            store8(row, c * NR, q);
        }
        for v in &mut row[blocks * NR..] {
            *v /= denom;
        }
    }

    /// Applies the round-to-nearest-even bias and truncates 8 packed
    /// f32 bit patterns to their high 16 bits (as 32-bit lanes).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; callers
    // are themselves AVX2-gated bodies. Register-only integer ops
    // replicating the scalar `bits + 0x7FFF + ((bits >> 16) & 1)`
    // bias (wrapping) and logical right shift.
    unsafe fn bf16_bias_shift(bits: __m256i) -> __m256i {
        let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(1));
        let bias = _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb);
        _mm256_srli_epi32::<16>(_mm256_add_epi32(bits, bias))
    }

    fn bf16_pack(src: &[f32], dst: &mut [u16]) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { bf16_pack_body(src, dst) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn bf16_pack_body(src: &[f32], dst: &mut [u16]) {
        debug_assert_eq!(src.len(), dst.len());
        let blocks = src.len() / 16;
        for c in 0..blocks {
            // The rounded 32-bit lanes are in [0, 0xFFFF], so the
            // signed-input `packus` saturation never fires, and
            // `permute4x64(0b11011000)` undoes the lane interleave
            // `packus` introduces.
            // SAFETY: each iteration reads f32s `[c*16, c*16 + 16)`
            // and writes u16s over the same index range, both in
            // bounds by the `blocks` computation; `loadu`/`storeu`
            // permit unaligned access.
            unsafe {
                let lo = _mm256_loadu_si256(src.as_ptr().add(c * 16).cast::<__m256i>());
                let hi = _mm256_loadu_si256(src.as_ptr().add(c * 16 + 8).cast::<__m256i>());
                let packed = _mm256_packus_epi32(bf16_bias_shift(lo), bf16_bias_shift(hi));
                let fixed = _mm256_permute4x64_epi64::<0b1101_1000>(packed);
                _mm256_storeu_si256(dst.as_mut_ptr().add(c * 16).cast::<__m256i>(), fixed);
            }
        }
        for i in blocks * 16..src.len() {
            dst[i] = super::bf16_pack_one(src[i]);
        }
    }

    fn bf16_unpack(src: &[u16], dst: &mut [f32]) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { bf16_unpack_body(src, dst) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn bf16_unpack_body(src: &[u16], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let blocks = src.len() / NR;
        for c in 0..blocks {
            // SAFETY: each iteration reads 8 u16s and writes 8 f32s at
            // index `c*8`, in bounds by the `blocks` computation; the
            // widen-then-shift reproduces `(h as u32) << 16` per lane.
            unsafe {
                let h = _mm_loadu_si128(src.as_ptr().add(c * NR).cast::<__m128i>());
                let wide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h));
                _mm256_storeu_si256(dst.as_mut_ptr().add(c * NR).cast::<__m256i>(), wide);
            }
        }
        for i in blocks * NR..src.len() {
            dst[i] = super::bf16_unpack_one(src[i]);
        }
    }

    fn bf16_round(data: &mut [f32]) {
        // SAFETY: reachable only through the detection-gated `TABLE`.
        unsafe { bf16_round_body(data) }
    }

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatch table's detection
    /// gate).
    #[target_feature(enable = "avx2")]
    // SAFETY: `target_feature` makes this fn unsafe-to-call; the only
    // caller is the detection-gated wrapper above.
    unsafe fn bf16_round_body(data: &mut [f32]) {
        let blocks = data.len() / NR;
        for c in 0..blocks {
            // SAFETY: 8 in-bounds f32s read and rewritten per
            // iteration; bias-shift-left reproduces the scalar
            // `((bits + bias) >> 16) << 16` per lane.
            unsafe {
                let bits = _mm256_loadu_si256(data.as_ptr().add(c * NR).cast::<__m256i>());
                let rounded = _mm256_slli_epi32::<16>(bf16_bias_shift(bits));
                _mm256_storeu_si256(data.as_mut_ptr().add(c * NR).cast::<__m256i>(), rounded);
            }
        }
        for v in &mut data[blocks * NR..] {
            *v = super::bf16_round_one(*v);
        }
    }
}

/// Packs `src` into bf16 storage (round-to-nearest-even) through the
/// active kernel table. Panics in debug builds on length mismatch.
pub fn bf16_pack_slice(src: &[f32], dst: &mut [u16]) {
    (table().bf16_pack)(src, dst);
}

/// Unpacks bf16 storage into exact `f32`s through the active table.
pub fn bf16_unpack_slice(src: &[u16], dst: &mut [f32]) {
    (table().bf16_unpack)(src, dst);
}

/// Rounds every element to its nearest bf16 value in place, through
/// the active table.
pub fn bf16_round_slice(data: &mut [f32]) {
    (table().bf16_round)(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::Rng::seed(seed);
        (0..n).map(|_| rng.normal() * 2.0).collect()
    }

    #[test]
    fn override_selects_tables_and_reverts() {
        with_simd_mode(Some(false), || {
            assert_eq!(simd_mode(), SimdMode::Scalar);
            assert_eq!(table().mode, SimdMode::Scalar);
        });
        if simd_available() {
            with_simd_mode(Some(true), || {
                assert_eq!(simd_mode(), SimdMode::Avx2);
                assert_eq!(table().mode, SimdMode::Avx2);
            });
        }
    }

    #[test]
    fn simd_kernels_match_scalar_bitwise() {
        if !simd_available() {
            return;
        }
        let x = ramp(67, 1);
        let y = ramp(67, 2);
        let scalar = &SCALAR_TABLE;
        let simd = simd_table();
        assert_eq!(
            (scalar.dot)(&x, &y).to_bits(),
            (simd.dot)(&x, &y).to_bits(),
            "dot"
        );
        assert_eq!(
            (scalar.row_max)(&x).to_bits(),
            (simd.row_max)(&x).to_bits(),
            "row_max"
        );
        assert_eq!(
            (scalar.row_sum)(&x).to_bits(),
            (simd.row_sum)(&x).to_bits(),
            "row_sum"
        );
        let mut a = x.clone();
        let mut b = x.clone();
        (scalar.axpy)(0.37, &y, &mut a);
        (simd.axpy)(0.37, &y, &mut b);
        assert_eq!(bits(&a), bits(&b), "axpy");
        (scalar.add_assign)(&y, &mut a);
        (simd.add_assign)(&y, &mut b);
        assert_eq!(bits(&a), bits(&b), "add_assign");
        (scalar.div_assign)(&mut a, 1.7);
        (simd.div_assign)(&mut b, 1.7);
        assert_eq!(bits(&a), bits(&b), "div_assign");
    }

    #[test]
    fn bf16_pack_unpack_round_trip_matches_scalar() {
        if !simd_available() {
            return;
        }
        let src = ramp(53, 3);
        let simd = simd_table();
        let mut packed_s = vec![0u16; src.len()];
        let mut packed_v = vec![0u16; src.len()];
        (SCALAR_TABLE.bf16_pack)(&src, &mut packed_s);
        (simd.bf16_pack)(&src, &mut packed_v);
        assert_eq!(packed_s, packed_v, "pack");
        let mut un_s = vec![0.0f32; src.len()];
        let mut un_v = vec![0.0f32; src.len()];
        (SCALAR_TABLE.bf16_unpack)(&packed_s, &mut un_s);
        (simd.bf16_unpack)(&packed_v, &mut un_v);
        assert_eq!(bits(&un_s), bits(&un_v), "unpack");
        let mut r_s = src.clone();
        let mut r_v = src;
        (SCALAR_TABLE.bf16_round)(&mut r_s);
        (simd.bf16_round)(&mut r_v);
        assert_eq!(bits(&r_s), bits(&r_v), "round");
        // Rounding in place ≡ pack-then-unpack.
        assert_eq!(bits(&r_s), bits(&un_s), "round vs pack∘unpack");
    }

    #[test]
    fn micro_tile_matches_scalar_bitwise_on_short_tiles() {
        if !simd_available() {
            return;
        }
        let simd = simd_table();
        let (n, kc_len) = (13usize, 9usize);
        let b = ramp(kc_len * n, 4);
        let mut apanel = vec![0.0f32; kc_len * MR];
        for (i, v) in ramp(kc_len * MR, 5).iter().enumerate() {
            apanel[i] = *v;
        }
        for mr_eff in 1..=MR {
            let mut out_s = ramp(MR * n, 6);
            let mut out_v = out_s.clone();
            (SCALAR_TABLE.micro_tile)(&apanel, kc_len, &b, n, 0, 0, &mut out_s, 0, mr_eff);
            (simd.micro_tile)(&apanel, kc_len, &b, n, 0, 0, &mut out_v, 0, mr_eff);
            assert_eq!(bits(&out_s), bits(&out_v), "mr_eff {mr_eff}");
        }
    }

    #[test]
    fn modes_swap_under_override_for_slice_helpers() {
        for force in [false, true] {
            with_simd_mode(Some(force), || {
                let mode = simd_mode();
                let src = ramp(31, 8);
                let mut packed = vec![0u16; src.len()];
                bf16_pack_slice(&src, &mut packed);
                let mut back = vec![0.0f32; src.len()];
                bf16_unpack_slice(&packed, &mut back);
                for (s, b) in src.iter().zip(&back) {
                    assert!(
                        (s - b).abs() <= s.abs() / 128.0 + 1e-6,
                        "{mode:?}: {s} vs {b}"
                    );
                }
            });
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Independent round-to-nearest-even reference: pick between
        /// the two neighboring bf16 values by exact `f64` distance,
        /// breaking ties toward the even (low-bit-zero) encoding.
        /// Defined for finite inputs only.
        fn bf16_reference(v: f32) -> u16 {
            let down = (v.to_bits() >> 16) as u16;
            let lo = super::bf16_unpack_one(down);
            if lo == v {
                return down;
            }
            let up = down.wrapping_add(1);
            let hi = super::bf16_unpack_one(up);
            // When `up` overflows past the largest finite bf16 it
            // encodes ±inf, but for rounding purposes it denotes the
            // phantom value ±2¹²⁸ (exact in f64) — IEEE RNE overflows
            // to inf exactly when that phantom value is nearer.
            let hi_val = if hi.is_finite() {
                f64::from(hi)
            } else {
                2.0f64.powi(128) * f64::from(v.signum())
            };
            let dl = (f64::from(v) - f64::from(lo)).abs();
            let dh = (hi_val - f64::from(v)).abs();
            match dl.partial_cmp(&dh) {
                Some(std::cmp::Ordering::Less) => down,
                Some(std::cmp::Ordering::Greater) => up,
                _ => {
                    if down & 1 == 0 {
                        down
                    } else {
                        up
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The pack kernel implements round-to-nearest-even on
            /// every finite input, per the independent reference.
            #[test]
            fn bf16_pack_is_round_to_nearest_even(raw in any::<u32>()) {
                let v = f32::from_bits(raw);
                if v.is_finite() {
                    prop_assert_eq!(bf16_pack_one(v), bf16_reference(v), "v = {}", v);
                }
            }

            /// Unpack is exact and pack∘unpack is the identity on
            /// storage bits (no double rounding).
            #[test]
            fn bf16_round_trip_is_stable(raw in any::<u32>()) {
                let h = (raw & 0xFFFF) as u16;
                let v = bf16_unpack_one(h);
                if !v.is_nan() {
                    prop_assert_eq!(bf16_pack_one(v), h);
                }
                prop_assert_eq!(bf16_round_one(v).to_bits(), v.to_bits());
            }

            /// Scalar and AVX2 bf16 kernels agree bit-for-bit on
            /// arbitrary bit patterns (they are pure integer
            /// pipelines, so even NaN payloads must match).
            #[test]
            fn bf16_kernels_agree_across_modes(raws in proptest::collection::vec(any::<u32>(), 1..64)) {
                if simd_available() {
                    let src: Vec<f32> = raws.iter().map(|&r| f32::from_bits(r)).collect();
                    let simd = simd_table();
                    let mut ps = vec![0u16; src.len()];
                    let mut pv = vec![0u16; src.len()];
                    (SCALAR_TABLE.bf16_pack)(&src, &mut ps);
                    (simd.bf16_pack)(&src, &mut pv);
                    prop_assert_eq!(&ps, &pv, "pack");
                    let mut us = vec![0.0f32; src.len()];
                    let mut uv = vec![0.0f32; src.len()];
                    (SCALAR_TABLE.bf16_unpack)(&ps, &mut us);
                    (simd.bf16_unpack)(&pv, &mut uv);
                    prop_assert_eq!(bits(&us), bits(&uv), "unpack");
                    let mut rs = src.clone();
                    let mut rv = src;
                    (SCALAR_TABLE.bf16_round)(&mut rs);
                    (simd.bf16_round)(&mut rv);
                    prop_assert_eq!(bits(&rs), bits(&rv), "round");
                }
            }
        }
    }
}
