use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A row-major tensor shape.
///
/// Wraps a dimension list and caches nothing: shapes in this stack are
/// small (rank ≤ 4 in practice) so recomputing strides on demand is cheap
/// and keeps the type trivially serializable.
///
/// # Example
///
/// ```
/// use tutel_tensor::Shape;
///
/// let s = Shape::new(&[4, 8, 16]);
/// assert_eq!(s.len(), 4 * 8 * 16);
/// assert_eq!(s.strides(), vec![128, 16, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of one axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// range (this is an internal hot path; callers validate once).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.dims.len()).rev() {
            debug_assert!(index[i] < self.dims[i]);
            off += index[i] * stride;
            stride *= self.dims[i];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        ));
    }

    #[test]
    fn zero_sized_shape_is_empty() {
        let s = Shape::new(&[4, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_formats_like_tuple() {
        assert_eq!(Shape::new(&[4, 8]).to_string(), "(4, 8)");
        assert_eq!(Shape::new(&[]).to_string(), "()");
    }
}
