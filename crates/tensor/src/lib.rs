//! Minimal dense `f32` tensor substrate for the tutel-rs MoE stack.
//!
//! The Tutel paper operates on PyTorch tensors; this crate provides the
//! small subset of dense tensor functionality the MoE stack actually
//! needs — contiguous row-major `f32` storage, shape bookkeeping, batched
//! matrix multiplication, softmax/top-k, and the layout transformations
//! that All-to-All variants are defined in terms of.
//!
//! # Example
//!
//! ```
//! use tutel_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), tutel_tensor::TensorError>(())
//! ```

pub mod dispatch;
mod error;
mod init;
mod linalg;
mod ops;
pub mod precision;
pub mod scratch;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub use dispatch::{set_simd_override, simd_available, simd_mode, SimdMode};
pub use error::TensorError;
pub use init::Rng;
pub use linalg::{
    gemm_bnn, gemm_nn, gemm_nn_sparse, gemm_nt, gemm_tn, grouped_gemm, grouped_gemm_nt,
    grouped_gemm_tn,
};
pub use ops::{gelu_backward_in_place, gelu_backward_with_tanh, gelu_slice, gelu_slice_with_tanh};
pub use precision::{quantize, quantize_in_place, Precision};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
