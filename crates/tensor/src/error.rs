use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate returns a `TensorError` that
/// carries enough context (the offending shapes or indices) to diagnose
/// the failure without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Element count of the provided data does not match the shape.
    ElementCountMismatch {
        /// Number of elements supplied.
        data_len: usize,
        /// Number of elements the shape requires.
        shape_len: usize,
    },
    /// Two shapes that must match do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An axis index is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index along an axis is out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The axis length.
        len: usize,
    },
    /// The tensor has the wrong rank for the requested operation.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A dimension constraint specific to one operation was violated.
    InvalidArgument(String),
}

impl TensorError {
    /// Builds a [`TensorError::ShapeMismatch`] out of borrowed shapes.
    ///
    /// `#[cold]` and out-of-line so `check:hot` kernels can construct
    /// rich errors without putting the `Vec` allocations on the hot
    /// path the optimizer sees.
    #[cold]
    pub fn shape_mismatch(op: &'static str, left: &[usize], right: &[usize]) -> TensorError {
        TensorError::ShapeMismatch {
            left: left.to_vec(),
            right: right.to_vec(),
            op,
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCountMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "data has {data_len} elements but shape requires {shape_len}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for axis of length {len}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(
                    f,
                    "rank mismatch in {op}: expected {expected}, got {actual}"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
