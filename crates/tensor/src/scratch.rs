//! Arena-backed scratch tensors.
//!
//! The per-iteration MoE path builds the same tensor shapes every
//! step. These helpers check the backing `Vec<f32>` out of the global
//! [`tutel_rt::Arena`] instead of allocating, and [`recycle`] returns
//! it when the iteration no longer needs the value. Recycling is
//! always optional — a scratch tensor is an ordinary [`Tensor`] and
//! may simply be dropped.
//!
//! Numerics are unaffected by recycling: [`zeroed`] buffers are
//! re-zeroed on checkout, so arena on/off cannot change results.

use crate::{Shape, Tensor};

/// An all-zero tensor of the given shape, backed by a recycled buffer
/// when one of the right size is available. Drop-in replacement for
/// [`Tensor::zeros`] on hot paths.
pub fn zeroed(dims: &[usize]) -> Tensor {
    let len = Shape::new(dims).len();
    let data = tutel_rt::arena().take_zeroed(len);
    // Length matches the shape product by construction; the fallback
    // keeps this path free of typed errors.
    Tensor::from_vec(data, dims).unwrap_or_else(|_| Tensor::zeros(dims))
}

/// A copy of `src` backed by a recycled buffer when one of the right
/// size is available. Drop-in replacement for `src.clone()` on hot
/// paths that go on to mutate the copy.
pub fn copy_of(src: &Tensor) -> Tensor {
    let mut data = tutel_rt::arena().take_raw(src.len());
    data.copy_from_slice(src.as_slice());
    Tensor::from_vec(data, src.dims()).unwrap_or_else(|_| src.clone())
}

/// Returns a tensor's backing buffer to the arena for reuse. Call on
/// per-iteration temporaries once their value is consumed.
pub fn recycle(t: Tensor) {
    tutel_rt::arena().put(t.into_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_matches_tensor_zeros() {
        let a = zeroed(&[3, 4]);
        assert_eq!(a, Tensor::zeros(&[3, 4]));
    }

    #[test]
    fn recycle_roundtrip_rezeros() {
        let mut t = zeroed(&[8, 8]);
        t.as_mut_slice().fill(7.0);
        recycle(t);
        let again = zeroed(&[8, 8]);
        assert!(again.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_of_matches_clone() {
        let mut t = zeroed(&[2, 3]);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = i as f32;
        }
        let c = copy_of(&t);
        assert_eq!(c, t);
        recycle(c);
        let again = copy_of(&t);
        assert_eq!(again, t);
    }

    #[test]
    fn scalar_and_empty_shapes() {
        assert_eq!(zeroed(&[]).len(), 1);
        let e = zeroed(&[0, 5]);
        assert_eq!(e.len(), 0);
        recycle(e);
    }
}
