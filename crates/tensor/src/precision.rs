//! Reduced-precision emulation.
//!
//! Tutel supports FP64/FP32/FP16/BF16 on its GPU backends
//! (Section 4.1). This stack computes in `f32`; these utilities
//! *emulate* the reduced formats by rounding values to the target
//! format's representable set after every op that would have produced
//! them — the standard way to study precision sensitivity without
//! hardware support. The MoE layer's routing decisions are integer-like
//! (argmax over softmax) and robust to these roundings; tests in the
//! core crate assert output closeness under BF16 weights.

use crate::Tensor;

/// A floating-point storage format to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE binary32 (the native compute type — identity rounding).
    F32,
    /// bfloat16: 8 exponent bits, 7 mantissa bits (round-to-nearest).
    Bf16,
    /// IEEE binary16: 5 exponent bits, 10 mantissa bits, with overflow
    /// saturating to ±∞ like hardware casts.
    F16,
}

impl Precision {
    /// Rounds one value to this format's representable set (returned as
    /// `f32`).
    pub fn round(&self, v: f32) -> f32 {
        match self {
            Precision::F32 => v,
            Precision::Bf16 => bf16_round(v),
            Precision::F16 => f16_round(v),
        }
    }

    /// Bytes one element occupies *in storage / on the wire* under this
    /// format. Compute always accumulates in `f32`; this is what the
    /// adaptive cost functions multiply parameter counts by.
    pub fn storage_bytes(&self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 | Precision::F16 => 2,
        }
    }

    /// Short audit-log label (`f32` / `bf16` / `f16`).
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::F16 => "f16",
        }
    }
}

/// Rounds every element of `t` to `precision`, returning a new tensor.
pub fn quantize(t: &Tensor, precision: Precision) -> Tensor {
    t.map(|v| precision.round(v))
}

/// Rounds every element of `data` to `precision` in place. The bf16
/// path goes through the active kernel table (SIMD when available —
/// bitwise-identical to the scalar rounding by construction); the
/// other formats use the scalar reference.
pub fn quantize_in_place(data: &mut [f32], precision: Precision) {
    match precision {
        Precision::F32 => {}
        Precision::Bf16 => (crate::dispatch::table().bf16_round)(data),
        Precision::F16 => {
            for v in data.iter_mut() {
                *v = f16_round(*v);
            }
        }
    }
}

/// Delegates to the dispatch module's scalar reference so the
/// emulation path and the bf16 *storage* kernels (`dispatch::bf16_*`)
/// can never disagree on the rounding rule.
fn bf16_round(v: f32) -> f32 {
    crate::dispatch::bf16_round_one(v)
}

fn f16_round(v: f32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let max_f16 = 65504.0f32;
    if v.abs() > max_f16 {
        return if v > 0.0 {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
    }
    // Decompose, clamp the exponent to f16's range, round the mantissa
    // to 10 bits.
    let bits = v.to_bits();
    let sign = bits & 0x8000_0000;
    let exp = ((bits >> 23) & 0xFF) as i32 - 127;
    if v == 0.0 {
        return v;
    }
    if exp < -14 {
        // Subnormal in f16: quantize to multiples of 2^-24.
        let step = 2.0f32.powi(-24);
        return f32::from_bits(sign) + (v / step).round() * step;
    }
    // Keep 10 mantissa bits: clear the low 13 with round-to-nearest-even.
    let drop_bits = 13;
    let bias = (1u32 << (drop_bits - 1)) - 1 + ((bits >> drop_bits) & 1);
    f32::from_bits((bits.wrapping_add(bias) >> drop_bits) << drop_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_is_identity() {
        for v in [0.0f32, 1.5, -3.25e7, 1e-30] {
            assert_eq!(Precision::F32.round(v), v);
        }
    }

    #[test]
    fn bf16_keeps_seven_mantissa_bits() {
        // 1 + 2^-7 is representable in bf16; 1 + 2^-8 rounds away.
        let exact = 1.0 + 2.0f32.powi(-7);
        assert_eq!(Precision::Bf16.round(exact), exact);
        let fine = 1.0 + 2.0f32.powi(-9);
        let rounded = Precision::Bf16.round(fine);
        assert!(rounded == 1.0 || rounded == exact, "got {rounded}");
        // Sign and rough magnitude always survive.
        assert!((Precision::Bf16.round(-123.456) + 123.456).abs() < 1.0);
    }

    #[test]
    fn bf16_round_is_idempotent() {
        let mut rng = crate::Rng::seed(5);
        for _ in 0..1000 {
            let v = rng.normal() * 100.0;
            let once = Precision::Bf16.round(v);
            assert_eq!(Precision::Bf16.round(once), once);
        }
    }

    #[test]
    fn f16_keeps_ten_mantissa_bits_and_saturates() {
        let exact = 1.0 + 2.0f32.powi(-10);
        assert_eq!(Precision::F16.round(exact), exact);
        assert_eq!(Precision::F16.round(1e6), f32::INFINITY);
        assert_eq!(Precision::F16.round(-1e6), f32::NEG_INFINITY);
        assert_eq!(Precision::F16.round(0.0), 0.0);
    }

    #[test]
    fn f16_round_is_idempotent_on_normals() {
        let mut rng = crate::Rng::seed(6);
        for _ in 0..1000 {
            let v = rng.normal() * 10.0;
            let once = Precision::F16.round(v);
            assert_eq!(Precision::F16.round(once), once, "v = {v}");
        }
    }

    #[test]
    fn quantize_bounds_relative_error() {
        let mut rng = crate::Rng::seed(7);
        let t = rng.normal_tensor(&[256], 0.0, 3.0);
        let b = quantize(&t, Precision::Bf16);
        let h = quantize(&t, Precision::F16);
        for ((orig, bv), hv) in t.as_slice().iter().zip(b.as_slice()).zip(h.as_slice()) {
            let scale = orig.abs().max(1e-3);
            assert!((orig - bv).abs() / scale < 0.01, "bf16 err at {orig}");
            assert!((orig - hv).abs() / scale < 0.002, "f16 err at {orig}");
        }
    }
}
