use std::fmt;

use crate::{Result, Shape, TensorError};

/// A contiguous, row-major, `f32` tensor.
///
/// This is the single data container used across the tutel-rs stack. It
/// is deliberately simple: owned `Vec<f32>` storage, always contiguous,
/// no views — layout transformations (the very thing the paper's
/// Flexible/2DH All-to-All reason about) are explicit copies, which keeps
/// every data-movement cost visible to the simulator.
///
/// # Example
///
/// ```
/// use tutel_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from owned data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if `data.len()` does
    /// not equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::ElementCountMismatch {
                data_len: data.len(),
                shape_len: shape.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor of `0.0, 1.0, ..., n-1.0`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: Shape::new(&[n]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list, shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank or coordinates are out
    /// of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank or coordinates are out
    /// of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a copy with a new shape over the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the element count
    /// differs.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the element count
    /// differs.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                data_len: self.data.len(),
                shape_len: shape.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Copies the `index`-th slab along axis 0, e.g. row `i` of a matrix
    /// or expert `e` of an `(E, C, M)` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] if `index` is out of
    /// range, or [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn index_axis0(&self, index: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "index_axis0",
            });
        }
        let n = self.shape.dims()[0];
        if index >= n {
            return Err(TensorError::IndexOutOfRange { index, len: n });
        }
        let slab = self.len() / n;
        let data = self.data[index * slab..(index + 1) * slab].to_vec();
        Tensor::from_vec(data, &self.shape.dims()[1..])
    }

    /// Splits the tensor into `parts` equal chunks along axis `axis`,
    /// copying each chunk out. Used by adaptive pipelining to partition
    /// the capacity dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the axis length is not
    /// divisible by `parts`, or [`TensorError::AxisOutOfRange`] for a bad
    /// axis.
    pub fn split_axis(&self, axis: usize, parts: usize) -> Result<Vec<Tensor>> {
        let axis_len = self.shape.dim(axis)?;
        if parts == 0 || axis_len % parts != 0 {
            return Err(TensorError::InvalidArgument(format!(
                "axis length {axis_len} not divisible into {parts} parts"
            )));
        }
        let chunk_len = axis_len / parts;
        let outer: usize = self.shape.dims()[..axis].iter().product();
        let inner: usize = self.shape.dims()[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut dims = self.shape.dims().to_vec();
            dims[axis] = chunk_len;
            let mut data = Vec::with_capacity(outer * chunk_len * inner);
            for o in 0..outer {
                let base = o * axis_len * inner + p * chunk_len * inner;
                data.extend_from_slice(&self.data[base..base + chunk_len * inner]);
            }
            out.push(Tensor::from_vec(data, &dims)?);
        }
        Ok(out)
    }

    /// Concatenates tensors along `axis`. Inverse of [`Tensor::split_axis`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `parts` is empty, or
    /// [`TensorError::ShapeMismatch`] if shapes disagree off-axis.
    pub fn concat_axis(parts: &[Tensor], axis: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0;
        for p in parts {
            let mut a = p.dims().to_vec();
            let mut b = first.dims().to_vec();
            a[axis] = 0;
            b[axis] = 0;
            if a != b {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                    op: "concat_axis",
                });
            }
            axis_total += p.dims()[axis];
        }
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        let mut dims = first.dims().to_vec();
        dims[axis] = axis_total;
        let mut data = Vec::with_capacity(outer * axis_total * inner);
        for o in 0..outer {
            for p in parts {
                let chunk = p.dims()[axis] * inner;
                let base = o * chunk;
                data.extend_from_slice(&p.data[base..base + chunk]);
            }
        }
        Tensor::from_vec(data, &dims)
    }

    /// Transposes a rank-2 tensor (copying).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose2",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Permutes axes (copying). `perm` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `perm` is not a valid
    /// permutation of the axes.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let rank = self.rank();
        let mut seen = vec![false; rank];
        if perm.len() != rank
            || perm
                .iter()
                .any(|&p| p >= rank || std::mem::replace(&mut seen[p], true))
        {
            return Err(TensorError::InvalidArgument(format!(
                "{perm:?} is not a permutation of 0..{rank}"
            )));
        }
        let src_dims = self.dims();
        let dst_dims: Vec<usize> = perm.iter().map(|&p| src_dims[p]).collect();
        let src_strides = self.shape.strides();
        let mut out = Tensor::zeros(&dst_dims);
        let dst_strides = out.shape.strides();
        // Walk destination indices in order; gather from source.
        let total = self.len();
        let mut idx = vec![0usize; rank];
        for flat in 0..total {
            // Decompose flat destination offset into a multi-index.
            let mut rem = flat;
            for (i, s) in dst_strides.iter().enumerate() {
                idx[i] = rem / s;
                rem %= s;
            }
            let mut src_off = 0;
            for (i, &p) in perm.iter().enumerate() {
                src_off += idx[i] * src_strides[p];
            }
            out.data[flat] = self.data[src_off];
        }
        Ok(out)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_element_count() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 1]), 1.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn index_axis0_extracts_slab() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let row = t.index_axis0(1).unwrap();
        assert_eq!(row.dims(), &[4]);
        assert_eq!(row.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.index_axis0(3).is_err());
    }

    #[test]
    fn split_concat_roundtrip_axis0() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[4, 6]).unwrap();
        let parts = t.split_axis(0, 2).unwrap();
        assert_eq!(parts[0].dims(), &[2, 6]);
        let back = Tensor::concat_axis(&parts, 0).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn split_concat_roundtrip_middle_axis() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 4, 3]).unwrap();
        let parts = t.split_axis(1, 2).unwrap();
        assert_eq!(parts[0].dims(), &[2, 2, 3]);
        // First chunk of capacity dim for the first "expert".
        assert_eq!(&parts[0].as_slice()[..6], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        // Second slab starts at the second expert's first capacity chunk.
        assert_eq!(
            &parts[0].as_slice()[6..],
            &[12.0, 13.0, 14.0, 15.0, 16.0, 17.0]
        );
        let back = Tensor::concat_axis(&parts, 1).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn split_rejects_indivisible() {
        let t = Tensor::zeros(&[3, 2]);
        assert!(t.split_axis(0, 2).is_err());
        assert!(t.split_axis(0, 0).is_err());
    }

    #[test]
    fn transpose2_is_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2().unwrap().transpose2().unwrap();
        assert_eq!(t, tt);
        assert_eq!(t.transpose2().unwrap().at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn permute_matches_transpose_for_matrices() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.permute(&[1, 0]).unwrap(), t.transpose2().unwrap());
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn permute_rejects_non_permutation() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }
}
