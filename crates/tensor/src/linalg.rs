//! Matrix multiplication: the `fflayer` compute primitive.
//!
//! Expert FFNs in the paper are computed as strided batched GEMMs
//! (`bgemm_strided_batched` in PyTorch); the simulator's cost model keys
//! off the same shapes these functions take.
//!
//! # Kernel design
//!
//! All four entry points (`matmul`, `bmm`, `matmul_nt`, `matmul_tn`)
//! route through cache-blocked, panel-packed slice kernels that run on
//! the `tutel-rt` pool:
//!
//! * the output is split into fixed [`ROW_BLOCK`]-row chunks — block
//!   boundaries depend only on the problem shape, never the worker
//!   count, so results are **bit-identical for every `TUTEL_THREADS`**
//!   (`bmm` parallelizes over `batch × row-blocks`);
//! * inside a block, the `k` dimension is tiled by [`KC`] and an
//!   [`MR`]`×`[`NR`] register micro-tile accumulates with a fixed,
//!   branch-free inner loop the compiler can keep in vector registers
//!   (A panels are packed `kc × MR`-interleaved so the microkernel
//!   reads both operands contiguously);
//! * the old `av == 0.0` skip is gone from the dense path — on dense
//!   operands the branch costs more than the multiply and blocks
//!   vectorization. [`gemm_nn_sparse`] keeps that behaviour for
//!   operands whose zeros are *structural* (one-hot dispatch masks),
//!   which is the only place value-sparsity is worth a branch.
//!
//! The slice-level kernels ([`gemm_nn`], [`gemm_tn`], [`gemm_nt`],
//! [`gemm_bnn`]) are public so backward passes can accumulate straight
//! into pre-allocated gradient buffers without materializing
//! intermediate tensors.

use crate::dispatch::{self, MR, NR};
use crate::{Result, Tensor, TensorError};

/// `k`-dimension panel depth: one packed A panel is `KC × MR` floats
/// (4 KiB), comfortably L1-resident.
const KC: usize = 256;
/// Output rows per parallel chunk. Fixed (never derived from worker
/// count) so chunk boundaries — and therefore accumulation order —
/// are identical for every pool size.
const ROW_BLOCK: usize = 32;

/// Builds a tensor around an arena buffer whose length already equals
/// `dims` product (the fallback allocation is unreachable and exists
/// only to keep this path typed-error free).
fn tensor_from_scratch(data: Vec<f32>, dims: &[usize]) -> Tensor {
    Tensor::from_vec(data, dims).unwrap_or_else(|_| Tensor::zeros(dims))
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m, k) × (k, n) → (m, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices, or
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    // check:hot
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul",
                self.dims(),
                rhs.dims(),
            ));
        }
        let mut out = tutel_rt::arena().take_zeroed(m * n);
        gemm_nn(self.as_slice(), rhs.as_slice(), &mut out, m, k, n);
        Ok(tensor_from_scratch(out, &[m, n]))
    }

    /// Batched matrix product: `(b, m, k) × (b, k, n) → (b, m, n)`.
    ///
    /// This is the CPU analogue of `bgemm_strided_batched`, the operation
    /// the paper's Figure 7 profiles. Expert computation uses it with
    /// `b = ΔE` (local experts), `m = C` (capacity), `k = M`, `n = V`.
    /// Parallelized over `batch × row-blocks`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-3 operands, or
    /// [`TensorError::ShapeMismatch`] if batch or inner dims disagree.
    // check:hot
    pub fn bmm(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: self.rank(),
                op: "bmm",
            });
        }
        if rhs.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: rhs.rank(),
                op: "bmm",
            });
        }
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::shape_mismatch("bmm", self.dims(), rhs.dims()));
        }
        let mut out = tutel_rt::arena().take_zeroed(b * m * n);
        gemm_bnn(self.as_slice(), rhs.as_slice(), &mut out, b, m, k, n);
        Ok(tensor_from_scratch(out, &[b, m, n]))
    }

    /// `self × rhsᵀ` for rank-2 tensors: `(m, k) × (n, k)ᵀ → (m, n)`.
    ///
    /// Used by backward passes (`dX = dY Wᵀ`) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::ShapeMismatch`] analogous to [`Tensor::matmul`].
    // check:hot
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank().max(rhs.rank()),
                op: "matmul_nt",
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul_nt",
                self.dims(),
                rhs.dims(),
            ));
        }
        let mut out = tutel_rt::arena().take_zeroed(m * n);
        gemm_nt(self.as_slice(), rhs.as_slice(), &mut out, m, k, n);
        Ok(tensor_from_scratch(out, &[m, n]))
    }

    /// `selfᵀ × rhs` for rank-2 tensors: `(k, m)ᵀ × (k, n) → (m, n)`.
    ///
    /// Used by backward passes (`dW = Xᵀ dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::ShapeMismatch`] analogous to [`Tensor::matmul`].
    // check:hot
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank().max(rhs.rank()),
                op: "matmul_tn",
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::shape_mismatch(
                "matmul_tn",
                self.dims(),
                rhs.dims(),
            ));
        }
        let mut out = tutel_rt::arena().take_zeroed(m * n);
        gemm_tn(self.as_slice(), rhs.as_slice(), &mut out, m, k, n);
        Ok(tensor_from_scratch(out, &[m, n]))
    }
}

/// `out += a · b` over row-major buffers `a (m, k)`, `b (k, n)`,
/// `out (m, n)`, parallel over fixed row blocks.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    tutel_rt::parallel_chunks(out, ROW_BLOCK * n, |blk, chunk| {
        block_packed(
            a,
            b,
            chunk,
            blk * ROW_BLOCK,
            chunk.len() / n,
            k,
            n,
            Layout::Nn { k },
        );
    });
}

/// Batched `out += a · b` over row-major buffers `a (B, m, k)`,
/// `bb (B, k, n)`, `out (B, m, n)`, parallel over batch × row-blocks.
pub fn gemm_bnn(
    a: &[f32],
    bb: &[f32],
    out: &mut [f32],
    batches: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), batches * m * k);
    debug_assert_eq!(bb.len(), batches * k * n);
    debug_assert_eq!(out.len(), batches * m * n);
    if batches == 0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let blocks_per = m.div_ceil(ROW_BLOCK);
    let ranges: Vec<(usize, usize)> = (0..batches * blocks_per)
        .map(|idx| {
            let (bi, blk) = (idx / blocks_per, idx % blocks_per);
            let r0 = blk * ROW_BLOCK;
            let r1 = (r0 + ROW_BLOCK).min(m);
            (bi * m * n + r0 * n, bi * m * n + r1 * n)
        })
        .collect();
    tutel_rt::parallel_ranges(out, &ranges, |idx, chunk| {
        let (bi, blk) = (idx / blocks_per, idx % blocks_per);
        let a_batch = &a[bi * m * k..(bi + 1) * m * k];
        let b_batch = &bb[bi * k * n..(bi + 1) * k * n];
        block_packed(
            a_batch,
            b_batch,
            chunk,
            blk * ROW_BLOCK,
            chunk.len() / n,
            k,
            n,
            Layout::Nn { k },
        );
    });
}

/// `out += aᵀ · b` over row-major buffers `a (k, m)`, `b (k, n)`,
/// `out (m, n)`, parallel over fixed row blocks. Shares the packed
/// microkernel with [`gemm_nn`]; only the A-panel packer differs
/// (column gather instead of row copy).
pub fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    tutel_rt::parallel_chunks(out, ROW_BLOCK * n, |blk, chunk| {
        block_packed(
            a,
            b,
            chunk,
            blk * ROW_BLOCK,
            chunk.len() / n,
            k,
            n,
            Layout::Tn { m },
        );
    });
}

/// `out += a · bᵀ` over row-major buffers `a (m, k)`, `b (n, k)`,
/// `out (m, n)`, parallel over fixed row blocks. Both operands are
/// row-major over `k`, so each output element is an 8-lane strip-mined
/// dot product with a fixed horizontal-sum order.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    tutel_rt::parallel_chunks(out, ROW_BLOCK * n, |blk, chunk| {
        let dot = dispatch::table().dot;
        let row0 = blk * ROW_BLOCK;
        for (i, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += dot(arow, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

/// Serial value-sparsity-aware `out += a · b` over row-major buffers
/// `a (m, k)`, `b (k, n)`, `out (m, n)`: rows of `a` that are
/// structurally zero (one-hot dispatch/combine masks) skip their
/// whole `n`-length update. Only worth it when zeros carry
/// meaning — on dense operands use [`gemm_nn`], where the branch-free
/// microkernel wins.
pub fn gemm_nn_sparse(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    // The surviving row updates go through the same dispatch table as
    // the dense microkernel, so structural sparsity no longer opts out
    // of the SIMD path — only the zero-skip test stays scalar.
    let axpy = dispatch::table().axpy;
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            axpy(av, brow, orow);
        }
    }
}

/// Grouped `out += a · b` over ragged expert bins — the dropless
/// compute primitive. `a` is a packed `(R, k)` buffer whose rows are
/// partitioned into `G = offsets.len() - 1` variable-length groups by
/// the CSR-style `offsets` prefix sum (`R = offsets[G]`); `b` holds one
/// `(k, n)` weight matrix per group; `out` is packed `(R, n)`.
///
/// One launch covers every bin: row blocks are laid out *within* each
/// group (block `i` of group `g` starts at group-relative row
/// `i · ROW_BLOCK`), so the blocking grid — and therefore each row's
/// accumulation order — is a function of `offsets` alone, never the
/// worker count. Because the packed microkernel gives every output row
/// an independent accumulator lane, a row's bits also never depend on
/// which rows share its micro-tile: grouped results are bit-identical
/// to running the padded per-expert GEMM on the same rows.
pub fn grouped_gemm(a: &[f32], b: &[f32], out: &mut [f32], offsets: &[usize], k: usize, n: usize) {
    let groups = offsets.len().saturating_sub(1);
    let total = offsets.last().copied().unwrap_or(0);
    debug_assert_eq!(a.len(), total * k);
    debug_assert_eq!(b.len(), groups * k * n);
    debug_assert_eq!(out.len(), total * n);
    if groups == 0 || total == 0 || n == 0 || k == 0 {
        return;
    }
    let (ranges, meta) = grouped_ranges(offsets, n);
    tutel_rt::parallel_ranges(out, &ranges, |idx, chunk| {
        let (g, r0) = meta[idx];
        let a_g = &a[offsets[g] * k..offsets[g + 1] * k];
        let b_g = &b[g * k * n..(g + 1) * k * n];
        block_packed(a_g, b_g, chunk, r0, chunk.len() / n, k, n, Layout::Nn { k });
    });
}

/// Grouped `out += a · bᵀ` over ragged bins: `a` packed `(R, k)`,
/// `b` one `(n, k)` matrix per group (row-major over `k`), `out`
/// packed `(R, n)`. The backward-input primitive (`dH = dY · W2ᵀ`),
/// an 8-lane strip-mined dot per element exactly like [`gemm_nt`].
pub fn grouped_gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    offsets: &[usize],
    k: usize,
    n: usize,
) {
    let groups = offsets.len().saturating_sub(1);
    let total = offsets.last().copied().unwrap_or(0);
    debug_assert_eq!(a.len(), total * k);
    debug_assert_eq!(b.len(), groups * n * k);
    debug_assert_eq!(out.len(), total * n);
    if groups == 0 || total == 0 || n == 0 {
        return;
    }
    let (ranges, meta) = grouped_ranges(offsets, n);
    tutel_rt::parallel_ranges(out, &ranges, |idx, chunk| {
        let dot = dispatch::table().dot;
        let (g, r0) = meta[idx];
        let b_g = &b[g * n * k..(g + 1) * n * k];
        for (i, orow) in chunk.chunks_mut(n).enumerate() {
            let row = offsets[g] + r0 + i;
            let arow = &a[row * k..(row + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += dot(arow, &b_g[j * k..(j + 1) * k]);
            }
        }
    });
}

/// Grouped `out_g += a_gᵀ · b_g` over ragged bins: `a` packed
/// `(R, ma)`, `b` packed `(R, n)`, `out` dense `(G, ma, n)`. The
/// weight-gradient primitive (`dW = Xᵀ dY`): each group's row count is
/// its reduction length, so bins reduce independently and empty bins
/// leave their `out` slab untouched.
pub fn grouped_gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    offsets: &[usize],
    ma: usize,
    n: usize,
) {
    let groups = offsets.len().saturating_sub(1);
    let total = offsets.last().copied().unwrap_or(0);
    debug_assert_eq!(a.len(), total * ma);
    debug_assert_eq!(b.len(), total * n);
    debug_assert_eq!(out.len(), groups * ma * n);
    if groups == 0 || total == 0 || ma == 0 || n == 0 {
        return;
    }
    // Output blocks tile the dense (G, ma, n) buffer; the ragged axis
    // is the per-group reduction length k_g = rows_g.
    let blocks_per = ma.div_ceil(ROW_BLOCK);
    let mut ranges = Vec::new();
    let mut meta = Vec::new();
    for g in 0..groups {
        if offsets[g + 1] == offsets[g] {
            continue;
        }
        for blk in 0..blocks_per {
            let r0 = blk * ROW_BLOCK;
            let r1 = (r0 + ROW_BLOCK).min(ma);
            ranges.push((g * ma * n + r0 * n, g * ma * n + r1 * n));
            meta.push((g, r0));
        }
    }
    tutel_rt::parallel_ranges(out, &ranges, |idx, chunk| {
        let (g, r0) = meta[idx];
        let k_g = offsets[g + 1] - offsets[g];
        let a_g = &a[offsets[g] * ma..offsets[g + 1] * ma];
        let b_g = &b[offsets[g] * n..offsets[g + 1] * n];
        block_packed(
            a_g,
            b_g,
            chunk,
            r0,
            chunk.len() / n,
            k_g,
            n,
            Layout::Tn { m: ma },
        );
    });
}

/// Element ranges plus `(group, group-relative row0)` per row block —
/// the two halves of a grouped schedule.
type GroupedSchedule = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Row-block schedule for a packed `(R, cols)` output partitioned by
/// `offsets`: element ranges plus `(group, group-relative row0)` per
/// block. Derived from the offsets alone so the grid is identical for
/// every pool size.
fn grouped_ranges(offsets: &[usize], cols: usize) -> GroupedSchedule {
    let groups = offsets.len() - 1;
    let mut ranges = Vec::new();
    let mut meta = Vec::new();
    for g in 0..groups {
        let rows_g = offsets[g + 1] - offsets[g];
        let mut r = 0;
        while r < rows_g {
            let rows = ROW_BLOCK.min(rows_g - r);
            ranges.push(((offsets[g] + r) * cols, (offsets[g] + r + rows) * cols));
            meta.push((g, r));
            r += ROW_BLOCK;
        }
    }
    (ranges, meta)
}

/// How the A operand is laid out relative to the `m × k` iteration
/// space of one packed block.
#[derive(Clone, Copy)]
enum Layout {
    /// A is `m × k` row-major (stride `k` between rows).
    Nn { k: usize },
    /// A is `k × m` row-major — a transposed read (stride `m` between
    /// consecutive `p`).
    Tn { m: usize },
}

/// Serial packed kernel for one `rows × n` output block starting at
/// absolute row `row0`. Accumulates into `out_rows` (`rows * n`
/// elements). Same code runs regardless of which pool worker executes
/// the block, so results never depend on thread count.
#[allow(clippy::too_many_arguments)]
fn block_packed(
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    layout: Layout,
) {
    let micro_tile = dispatch::table().micro_tile;
    let mut apanel = [0.0f32; KC * MR];
    let mut pc = 0;
    while pc < k {
        let kc_len = KC.min(k - pc);
        let mut ir = 0;
        while ir < rows {
            let mr_eff = MR.min(rows - ir);
            // Pack the A micro-panel `kc_len × MR`, interleaved so the
            // microkernel reads MR values per `p` contiguously. Short
            // tiles are zero-padded: the padding rows multiply into
            // accumulators that are never written back.
            match layout {
                Layout::Nn { k } => {
                    for r in 0..MR {
                        if r < mr_eff {
                            let arow = &a[(row0 + ir + r) * k + pc..];
                            for p in 0..kc_len {
                                apanel[p * MR + r] = arow[p];
                            }
                        } else {
                            for p in 0..kc_len {
                                apanel[p * MR + r] = 0.0;
                            }
                        }
                    }
                }
                Layout::Tn { m } => {
                    for p in 0..kc_len {
                        let acol = &a[(pc + p) * m + row0 + ir..];
                        for r in 0..MR {
                            apanel[p * MR + r] = if r < mr_eff { acol[r] } else { 0.0 };
                        }
                    }
                }
            }
            let mut jc = 0;
            while jc < n {
                let nr_eff = NR.min(n - jc);
                if nr_eff == NR {
                    micro_tile(&apanel, kc_len, b, n, pc, jc, out_rows, ir, mr_eff);
                } else {
                    micro_tile_edge(&apanel, kc_len, b, n, pc, jc, nr_eff, out_rows, ir, mr_eff);
                }
                jc += NR;
            }
            ir += MR;
        }
        pc += KC;
    }
}

/// Ragged right-edge tile (`nr_eff < NR` columns). Shared scalar code
/// in both dispatch modes: it never spans a full vector, so keeping
/// one copy guarantees the bitwise contract on the N-remainder for
/// free (the full `MR × NR` tile lives in [`dispatch`]).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_tile_edge(
    apanel: &[f32],
    kc_len: usize,
    b: &[f32],
    n: usize,
    pc: usize,
    jc: usize,
    nr_eff: usize,
    out_rows: &mut [f32],
    ir: usize,
    mr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc_len {
        let boff = (pc + p) * n + jc;
        let brow = &b[boff..boff + nr_eff];
        let avals = &apanel[p * MR..p * MR + MR];
        for r in 0..MR {
            let av = avals[r];
            let accr = &mut acc[r];
            for (j, &bv) in brow.iter().enumerate() {
                accr[j] += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr_eff) {
        let ooff = (ir + r) * n + jc;
        let orow = &mut out_rows[ooff..ooff + nr_eff];
        for (j, o) in orow.iter_mut().enumerate() {
            *o += accr[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: plain i-j-p triple loop, no blocking.
    fn gemm_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_close(got: &[f32], want: &[f32], k: usize) {
        assert_eq!(got.len(), want.len());
        // Blocked accumulation reorders sums; tolerance scales with
        // the reduction length (ULP-scale, not loose).
        let tol = 1e-5 * (k as f32).sqrt().max(1.0);
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let scale = w.abs().max(1.0);
            assert!(
                (g - w).abs() <= tol * scale,
                "elem {i}: got {g}, want {w} (tol {tol})"
            );
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let id = Tensor::eye(2);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]).unwrap();
        let c = a.bmm(&b).unwrap();
        for i in 0..2 {
            let ai = a.index_axis0(i).unwrap();
            let bi = b.index_axis0(i).unwrap();
            let ci = c.index_axis0(i).unwrap();
            assert_eq!(ai.matmul(&bi).unwrap(), ci);
        }
    }

    #[test]
    fn bmm_rejects_batch_mismatch() {
        let a = Tensor::zeros(&[2, 2, 3]);
        let b = Tensor::zeros(&[3, 3, 2]);
        assert!(a.bmm(&b).is_err());
    }

    #[test]
    fn blocked_gemm_matches_naive_on_awkward_shapes() {
        let mut rng = crate::Rng::seed(7);
        // Shapes straddling every blocking edge: sub-tile, exact-tile,
        // ragged rows/cols, multi-KC-panel k.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (33, 17, 9),
            (32, 300, 40),
            (65, 513, 31),
        ] {
            let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
            let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
            let got = a.matmul(&b).unwrap();
            let want = gemm_ref(a.as_slice(), b.as_slice(), m, k, n);
            assert_close(got.as_slice(), &want, k);
        }
    }

    #[test]
    fn gemm_is_bit_identical_across_parallelism_limits() {
        let (m, k, n) = (97usize, 130usize, 57usize);
        let mut rng = crate::Rng::seed(99);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let reference = tutel_rt::with_parallelism_limit(1, || a.matmul(&b).unwrap());
        for limit in [2, 4, 8] {
            let got = tutel_rt::with_parallelism_limit(limit, || a.matmul(&b).unwrap());
            assert_eq!(got.as_slice(), reference.as_slice(), "limit {limit}");
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[4, 3]).unwrap();
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2().unwrap()).unwrap();
        let want: Vec<f32> = slow.as_slice().to_vec();
        assert_close(fast.as_slice(), &want, 3);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[3, 4]).unwrap();
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2().unwrap().matmul(&b).unwrap();
        let want: Vec<f32> = slow.as_slice().to_vec();
        assert_close(fast.as_slice(), &want, 3);
    }

    #[test]
    fn nt_and_tn_match_naive_on_larger_shapes() {
        let mut rng = crate::Rng::seed(21);
        let (m, k, n) = (37usize, 66usize, 41usize);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let bt = rng.normal_tensor(&[n, k], 0.0, 1.0);
        let nt = a.matmul_nt(&bt).unwrap();
        let b_dense = bt.transpose2().unwrap();
        let want_nt = gemm_ref(a.as_slice(), b_dense.as_slice(), m, k, n);
        assert_close(nt.as_slice(), &want_nt, k);

        let at = rng.normal_tensor(&[k, m], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let tn = at.matmul_tn(&b).unwrap();
        let a_dense = at.transpose2().unwrap();
        let want_tn = gemm_ref(a_dense.as_slice(), b.as_slice(), m, k, n);
        assert_close(tn.as_slice(), &want_tn, k);
    }

    #[test]
    fn sparse_gemm_matches_dense_kernel() {
        let mut rng = crate::Rng::seed(5);
        let (m, k, n) = (20usize, 30usize, 10usize);
        let mut a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        // Structural sparsity: zero out most of A.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        let mut sparse = vec![0.0f32; m * n];
        gemm_nn_sparse(a.as_slice(), b.as_slice(), &mut sparse, m, k, n);
        let want = gemm_ref(a.as_slice(), b.as_slice(), m, k, n);
        assert_close(&sparse, &want, k);
    }

    #[test]
    fn slice_kernels_accumulate_into_out() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 3.0, 4.0, 5.0];
        let mut out = [10.0f32; 4];
        gemm_nn(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [12.0, 13.0, 14.0, 15.0]);
    }

    /// Per-expert reference for the grouped kernels: slice each bin
    /// out and run the plain slice GEMMs group by group.
    fn grouped_ref_nn(a: &[f32], b: &[f32], offsets: &[usize], k: usize, n: usize) -> Vec<f32> {
        let total = *offsets.last().unwrap();
        let mut out = vec![0.0f32; total * n];
        for g in 0..offsets.len() - 1 {
            let rows = offsets[g + 1] - offsets[g];
            gemm_nn(
                &a[offsets[g] * k..offsets[g + 1] * k],
                &b[g * k * n..(g + 1) * k * n],
                &mut out[offsets[g] * n..offsets[g + 1] * n],
                rows,
                k,
                n,
            );
        }
        out
    }

    #[test]
    fn grouped_gemm_matches_per_group_loop() {
        let mut rng = crate::Rng::seed(11);
        let offsets = [0usize, 3, 3, 40, 41, 74];
        let (k, n) = (19usize, 13usize);
        let groups = offsets.len() - 1;
        let total = *offsets.last().unwrap();
        let a = rng.normal_tensor(&[total, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[groups, k, n], 0.0, 1.0);
        let mut out = vec![0.0f32; total * n];
        grouped_gemm(a.as_slice(), b.as_slice(), &mut out, &offsets, k, n);
        let want = grouped_ref_nn(a.as_slice(), b.as_slice(), &offsets, k, n);
        assert_eq!(out, want, "grouped must be bitwise vs the per-group loop");
    }

    #[test]
    fn grouped_gemm_nt_matches_per_group_loop() {
        let mut rng = crate::Rng::seed(12);
        let offsets = [0usize, 5, 37, 37, 50];
        let (k, n) = (9usize, 21usize);
        let groups = offsets.len() - 1;
        let total = *offsets.last().unwrap();
        let a = rng.normal_tensor(&[total, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[groups, n, k], 0.0, 1.0);
        let mut out = vec![0.0f32; total * n];
        grouped_gemm_nt(a.as_slice(), b.as_slice(), &mut out, &offsets, k, n);
        for g in 0..groups {
            let rows = offsets[g + 1] - offsets[g];
            let mut want = vec![0.0f32; rows * n];
            gemm_nt(
                &a.as_slice()[offsets[g] * k..offsets[g + 1] * k],
                &b.as_slice()[g * n * k..(g + 1) * n * k],
                &mut want,
                rows,
                k,
                n,
            );
            assert_eq!(&out[offsets[g] * n..offsets[g + 1] * n], &want[..], "g{g}");
        }
    }

    #[test]
    fn grouped_gemm_tn_matches_per_group_loop() {
        let mut rng = crate::Rng::seed(13);
        let offsets = [0usize, 0, 17, 20, 53];
        let (ma, n) = (12usize, 7usize);
        let groups = offsets.len() - 1;
        let total = *offsets.last().unwrap();
        let a = rng.normal_tensor(&[total, ma], 0.0, 1.0);
        let b = rng.normal_tensor(&[total, n], 0.0, 1.0);
        let mut out = vec![0.0f32; groups * ma * n];
        grouped_gemm_tn(a.as_slice(), b.as_slice(), &mut out, &offsets, ma, n);
        for g in 0..groups {
            let rows = offsets[g + 1] - offsets[g];
            let mut want = vec![0.0f32; ma * n];
            gemm_tn(
                &a.as_slice()[offsets[g] * ma..offsets[g + 1] * ma],
                &b.as_slice()[offsets[g] * n..offsets[g + 1] * n],
                &mut want,
                ma,
                rows,
                n,
            );
            assert_eq!(&out[g * ma * n..(g + 1) * ma * n], &want[..], "g{g}");
        }
    }

    #[test]
    fn grouped_gemm_rows_bitwise_equal_padded_bmm_rows() {
        // The dropless contract: a routed row's bits must not depend
        // on whether its bin was padded to a capacity or packed
        // ragged. Compare each grouped row against the same row of a
        // zero-padded bmm.
        let mut rng = crate::Rng::seed(14);
        let offsets = [0usize, 2, 35, 36, 36, 70];
        let (k, n) = (33usize, 17usize);
        let groups = offsets.len() - 1;
        let total = *offsets.last().unwrap();
        let cap = (0..groups)
            .map(|g| offsets[g + 1] - offsets[g])
            .max()
            .unwrap();
        let a = rng.normal_tensor(&[total, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[groups, k, n], 0.0, 1.0);
        let mut out = vec![0.0f32; total * n];
        grouped_gemm(a.as_slice(), b.as_slice(), &mut out, &offsets, k, n);

        let mut padded = vec![0.0f32; groups * cap * k];
        for g in 0..groups {
            let rows = offsets[g + 1] - offsets[g];
            padded[g * cap * k..g * cap * k + rows * k]
                .copy_from_slice(&a.as_slice()[offsets[g] * k..offsets[g + 1] * k]);
        }
        let pa = Tensor::from_vec(padded, &[groups, cap, k]).unwrap();
        let py = pa.bmm(&b).unwrap();
        for g in 0..groups {
            let rows = offsets[g + 1] - offsets[g];
            assert_eq!(
                &out[offsets[g] * n..offsets[g + 1] * n],
                &py.as_slice()[g * cap * n..g * cap * n + rows * n],
                "g{g}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
            (1usize..48, 1usize..300, 1usize..48)
        }

        /// Ragged bin sizes spanning empty, sub-tile, and
        /// multi-row-block groups.
        fn bins() -> impl Strategy<Value = Vec<usize>> {
            prop::collection::vec(0usize..70, 1..6)
        }

        /// Shapes guaranteed to leave a nonzero remainder on every
        /// blocking axis: `m % MR ≠ 0`, `k % KC ≠ 0`, `n % NR ≠ 0`.
        fn ragged_dims() -> impl Strategy<Value = (usize, usize, usize)> {
            (
                (0usize..10, 1usize..MR),
                (0usize..2, 1usize..KC),
                (0usize..5, 1usize..NR),
            )
                .prop_map(|((mq, mrr), (kq, krr), (nq, nrr))| {
                    (mq * MR + mrr, kq * KC + krr, nq * NR + nrr)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Blocked NN/TN/NT all agree with the naive triple loop
            /// within reduction-length-scaled tolerance on arbitrary
            /// shapes and values.
            #[test]
            fn blocked_gemms_match_naive((m, k, n) in dims(), seed in 0u64..1024) {
                let mut rng = crate::Rng::seed(seed);
                let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
                let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
                let want = gemm_ref(a.as_slice(), b.as_slice(), m, k, n);

                let nn = a.matmul(&b).unwrap();
                assert_close(nn.as_slice(), &want, k);

                // A stored transposed: a_t (k, m).
                let mut at = vec![0.0f32; k * m];
                for i in 0..m {
                    for p in 0..k {
                        at[p * m + i] = a.as_slice()[i * k + p];
                    }
                }
                let mut tn = vec![0.0f32; m * n];
                gemm_tn(&at, b.as_slice(), &mut tn, m, k, n);
                assert_close(&tn, &want, k);

                // B stored transposed: b_t (n, k).
                let mut btr = vec![0.0f32; n * k];
                for p in 0..k {
                    for j in 0..n {
                        btr[j * k + p] = b.as_slice()[p * n + j];
                    }
                }
                let mut nt = vec![0.0f32; m * n];
                gemm_nt(a.as_slice(), &btr, &mut nt, m, k, n);
                assert_close(&nt, &want, k);
            }

            /// The SIMD kernel table produces bit-identical results to
            /// the scalar table on every GEMM variant, on shapes that
            /// exercise all three remainder tails at once.
            #[test]
            fn simd_gemms_match_scalar_bitwise((m, k, n) in ragged_dims(), seed in 0u64..1024) {
                if crate::dispatch::simd_available() {
                    let mut rng = crate::Rng::seed(seed);
                    let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
                    let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
                    let bt = rng.normal_tensor(&[n, k], 0.0, 1.0);
                    let at = rng.normal_tensor(&[k, m], 0.0, 1.0);
                    let ba = rng.normal_tensor(&[3, m, k], 0.0, 1.0);
                    let bb = rng.normal_tensor(&[3, k, n], 0.0, 1.0);
                    let mut sp = a.clone();
                    for (i, v) in sp.as_mut_slice().iter_mut().enumerate() {
                        if i % 3 != 0 { *v = 0.0; }
                    }
                    let run = |force: bool| {
                        crate::dispatch::with_simd_mode(Some(force), || {
                            let mut sparse = vec![0.0f32; m * n];
                            gemm_nn_sparse(sp.as_slice(), b.as_slice(), &mut sparse, m, k, n);
                            (
                                a.matmul(&b).unwrap(),
                                a.matmul_nt(&bt).unwrap(),
                                at.matmul_tn(&b).unwrap(),
                                ba.bmm(&bb).unwrap(),
                                sparse,
                            )
                        })
                    };
                    let scalar = run(false);
                    let simd = run(true);
                    let bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    prop_assert_eq!(bits(scalar.0.as_slice()), bits(simd.0.as_slice()), "matmul");
                    prop_assert_eq!(bits(scalar.1.as_slice()), bits(simd.1.as_slice()), "nt");
                    prop_assert_eq!(bits(scalar.2.as_slice()), bits(simd.2.as_slice()), "tn");
                    prop_assert_eq!(bits(scalar.3.as_slice()), bits(simd.3.as_slice()), "bmm");
                    prop_assert_eq!(bits(&scalar.4), bits(&simd.4), "gemm_nn_sparse");
                }
            }

            /// Grouped GEMM equals the per-expert loop bit for bit on
            /// arbitrary ragged shapes, in both SIMD modes, at any
            /// worker count.
            #[test]
            fn grouped_gemm_bitwise_vs_per_group_loop(
                sizes in bins(),
                k in 1usize..40,
                n in 1usize..24,
                seed in 0u64..1024,
            ) {
                let mut offsets = vec![0usize];
                for s in &sizes {
                    offsets.push(offsets.last().unwrap() + s);
                }
                let groups = sizes.len();
                let total = *offsets.last().unwrap();
                let mut rng = crate::Rng::seed(seed);
                let a = rng.normal_tensor(&[total.max(1), k], 0.0, 1.0);
                let b = rng.normal_tensor(&[groups, k, n], 0.0, 1.0);
                let a = &a.as_slice()[..total * k];
                let modes: &[Option<bool>] = if crate::dispatch::simd_available() {
                    &[Some(false), Some(true)]
                } else {
                    &[Some(false)]
                };
                for &mode in modes {
                    crate::dispatch::with_simd_mode(mode, || {
                        let want = grouped_ref_nn(a, b.as_slice(), &offsets, k, n);
                        let mut got = vec![0.0f32; total * n];
                        grouped_gemm(a, b.as_slice(), &mut got, &offsets, k, n);
                        assert_eq!(got, want, "mode {mode:?}");
                        for limit in [1usize, 4] {
                            let par = tutel_rt::with_parallelism_limit(limit, || {
                                let mut out = vec![0.0f32; total * n];
                                grouped_gemm(a, b.as_slice(), &mut out, &offsets, k, n);
                                out
                            });
                            assert_eq!(par, want, "mode {mode:?} limit {limit}");
                        }
                    });
                }
            }

            /// Worker count never changes a single bit of the output.
            #[test]
            fn gemm_bits_invariant_under_parallelism((m, k, n) in dims(), seed in 0u64..1024) {
                let mut rng = crate::Rng::seed(seed);
                let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
                let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
                let reference = tutel_rt::with_parallelism_limit(1, || a.matmul(&b).unwrap());
                for limit in [2usize, 5, 8] {
                    let got = tutel_rt::with_parallelism_limit(limit, || a.matmul(&b).unwrap());
                    prop_assert_eq!(got.as_slice(), reference.as_slice());
                }
            }
        }
    }
}
