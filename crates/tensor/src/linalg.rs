//! Matrix multiplication: the `fflayer` compute primitive.
//!
//! Expert FFNs in the paper are computed as strided batched GEMMs
//! (`bgemm_strided_batched` in PyTorch); the simulator's cost model keys
//! off the same shapes these functions take.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m, k) × (k, n) → (m, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices, or
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "matmul",
            });
        }
        if rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: rhs.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(out)
    }

    /// Batched matrix product: `(b, m, k) × (b, k, n) → (b, m, n)`.
    ///
    /// This is the CPU analogue of `bgemm_strided_batched`, the operation
    /// the paper's Figure 7 profiles. Expert computation uses it with
    /// `b = ΔE` (local experts), `m = C` (capacity), `k = M`, `n = V`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-3 operands, or
    /// [`TensorError::ShapeMismatch`] if batch or inner dims disagree.
    pub fn bmm(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: self.rank(),
                op: "bmm",
            });
        }
        if rhs.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: rhs.rank(),
                op: "bmm",
            });
        }
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        if b != b2 || k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "bmm",
            });
        }
        let mut out = Tensor::zeros(&[b, m, n]);
        for i in 0..b {
            let a = &self.as_slice()[i * m * k..(i + 1) * m * k];
            let w = &rhs.as_slice()[i * k * n..(i + 1) * k * n];
            let o = &mut out.as_mut_slice()[i * m * n..(i + 1) * m * n];
            gemm(a, w, o, m, k, n);
        }
        Ok(out)
    }

    /// `self × rhsᵀ` for rank-2 tensors: `(m, k) × (n, k)ᵀ → (m, n)`.
    ///
    /// Used by backward passes (`dX = dY Wᵀ`) without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::ShapeMismatch`] analogous to [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank().max(rhs.rank()),
                op: "matmul_nt",
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul_nt",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = rhs.as_slice();
        let o = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
                o[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// `selfᵀ × rhs` for rank-2 tensors: `(k, m)ᵀ × (k, n) → (m, n)`.
    ///
    /// Used by backward passes (`dW = Xᵀ dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::ShapeMismatch`] analogous to [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || rhs.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank().max(rhs.rank()),
                op: "matmul_tn",
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: rhs.dims().to_vec(),
                op: "matmul_tn",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = rhs.as_slice();
        let o = out.as_mut_slice();
        for p in 0..k {
            for i in 0..m {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    o[i * n + j] += av * b[p * n + j];
                }
            }
        }
        Ok(out)
    }
}

/// FLOP threshold above which GEMMs split across threads. Each output
/// row is computed by exactly one thread with the same serial kernel,
/// so results are bit-identical to the single-threaded path.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// Maximum worker threads for a parallel GEMM.
const PAR_MAX_THREADS: usize = 4;

/// Inner GEMM kernel: `out[m×n] = a[m×k] · b[k×n]` (accumulating into a
/// zeroed buffer). i-k-j loop order keeps the innermost loop streaming
/// over contiguous memory; large problems split output rows across
/// threads.
fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let flops = 2 * m * k * n;
    if flops >= PAR_FLOP_THRESHOLD && m >= 2 {
        let threads = PAR_MAX_THREADS.min(m);
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (block, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = block * rows_per;
                let rows = chunk.len() / n;
                let a_block = &a[row0 * k..(row0 + rows) * k];
                scope.spawn(move || gemm_serial(a_block, b, chunk, rows, k, n));
            }
        });
    } else {
        gemm_serial(a, b, out, m, k, n);
    }
}

fn gemm_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let id = Tensor::eye(2);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[2, 3, 2]).unwrap();
        let c = a.bmm(&b).unwrap();
        for i in 0..2 {
            let ai = a.index_axis0(i).unwrap();
            let bi = b.index_axis0(i).unwrap();
            let ci = c.index_axis0(i).unwrap();
            assert_eq!(ai.matmul(&bi).unwrap(), ci);
        }
    }

    #[test]
    fn bmm_rejects_batch_mismatch() {
        let a = Tensor::zeros(&[2, 2, 3]);
        let b = Tensor::zeros(&[3, 3, 2]);
        assert!(a.bmm(&b).is_err());
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        // A problem big enough to cross the parallel threshold; compare
        // against the serial kernel directly.
        let (m, k, n) = (64usize, 128usize, 256usize);
        let mut rng = crate::Rng::seed(99);
        let a = rng.normal_tensor(&[m, k], 0.0, 1.0);
        let b = rng.normal_tensor(&[k, n], 0.0, 1.0);
        assert!(
            2 * m * k * n >= PAR_FLOP_THRESHOLD,
            "fixture must trigger threading"
        );
        let parallel = a.matmul(&b).unwrap();
        let mut serial = vec![0.0f32; m * n];
        gemm_serial(a.as_slice(), b.as_slice(), &mut serial, m, k, n);
        assert_eq!(parallel.as_slice(), serial.as_slice());
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[4, 3]).unwrap();
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2().unwrap()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[3, 4]).unwrap();
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2().unwrap().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }
}
