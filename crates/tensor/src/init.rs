//! Deterministic random initialization.
//!
//! Every experiment in the harness is seeded, so runs are reproducible
//! bit-for-bit; this module wraps a small PCG-family generator from
//! `rand` behind a stable API.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

use crate::Tensor;

/// A seeded random number generator for tensor initialization and
/// synthetic workload generation.
///
/// # Example
///
/// ```
/// use tutel_tensor::Rng;
///
/// let mut rng = Rng::seed(7);
/// let t = rng.normal_tensor(&[4, 4], 0.0, 1.0);
/// assert_eq!(t.len(), 16);
/// let again = Rng::seed(7).normal_tensor(&[4, 4], 0.0, 1.0);
/// assert_eq!(t, again);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: SmallRng,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        Rng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Tensor of i.i.d. normal samples with given mean and std.
    pub fn normal_tensor(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = mean + std * self.normal();
        }
        t
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = self.uniform_range(lo, hi);
        }
        t
    }

    /// Kaiming-style initialization for a `(fan_in, fan_out)` weight
    /// matrix: normal with std `sqrt(2 / fan_in)`.
    pub fn kaiming(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        self.normal_tensor(&[fan_in, fan_out], 0.0, std)
    }

    /// Samples an index from a categorical distribution given by
    /// (non-negative, not necessarily normalized) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights must have positive sum");
        let mut u = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = Rng::seed(42).normal_tensor(&[8], 0.0, 1.0);
        let b = Rng::seed(42).normal_tensor(&[8], 0.0, 1.0);
        assert_eq!(a, b);
        let c = Rng::seed(43).normal_tensor(&[8], 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed(1);
        let t = rng.normal_tensor(&[10_000], 0.0, 1.0);
        assert!(t.mean().abs() < 0.05);
        let var = t.sq_norm() / t.len() as f32;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = Rng::seed(2);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn categorical_respects_zero_weights() {
        let mut rng = Rng::seed(3);
        for _ in 0..100 {
            let i = rng.categorical(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed(4);
        let mut xs: Vec<usize> = (0..16).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = Rng::seed(5);
        let w = rng.kaiming(512, 4);
        let std = (w.sq_norm() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 512.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.2,
            "std {std} vs {expected}"
        );
    }
}
