//! Property tests for the fixed log-bucketed histogram: bounds are
//! strictly monotone, indexing is consistent with the bounds, and
//! merging conserves counts and is associative/commutative for
//! same-layout histograms — the algebra the per-rank trace/metric
//! merger relies on (merge order across ranks must not matter).

use proptest::prelude::*;
use tutel_obs::Histogram;

/// A valid (lo, ratio, n) layout whose top edge stays finite.
fn layout() -> impl Strategy<Value = (f64, f64, usize)> {
    (1e-9f64..1e3, 1.05f64..8.0, 1usize..64)
}

/// A fresh histogram with `values` recorded.
fn filled(lo: f64, ratio: f64, n: usize, values: &[f64]) -> Histogram {
    let h = Histogram::new(lo, ratio, n);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_bounds_are_strictly_monotone((lo, ratio, n) in layout()) {
        let h = Histogram::new(lo, ratio, n);
        let bounds = h.bounds();
        prop_assert_eq!(bounds.len(), n + 1);
        for w in bounds.windows(2) {
            prop_assert!(w[0] < w[1], "bounds not increasing: {} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn bucket_index_is_consistent_with_bounds(
        (lo, ratio, n) in layout(),
        values in proptest::collection::vec(-1e6f64..1e12, 1..50),
    ) {
        let h = Histogram::new(lo, ratio, n);
        for &v in &values {
            let idx = h.bucket_index(v);
            let bounds = h.bounds();
            // idx 0 = underflow, idx bounds.len() = overflow.
            if idx > 0 {
                prop_assert!(bounds[idx - 1] <= v, "lower edge violated for {v}");
            } else {
                prop_assert!(v < bounds[0], "underflow misplaced for {v}");
            }
            if idx < bounds.len() {
                prop_assert!(v < bounds[idx], "upper edge violated for {v}");
            } else {
                prop_assert!(v >= bounds[bounds.len() - 1], "overflow misplaced for {v}");
            }
        }
    }

    #[test]
    fn recording_conserves_counts(
        (lo, ratio, n) in layout(),
        values in proptest::collection::vec(0f64..1e9, 0..100),
    ) {
        let h = Histogram::new(lo, ratio, n);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total_count(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn merge_conserves_counts_per_bucket(
        (lo, ratio, n) in layout(),
        xs in proptest::collection::vec(0f64..1e9, 0..60),
        ys in proptest::collection::vec(0f64..1e9, 0..60),
    ) {
        let a = Histogram::new(lo, ratio, n);
        let b = Histogram::new(lo, ratio, n);
        for &v in &xs {
            a.record(v);
        }
        for &v in &ys {
            b.record(v);
        }
        let before_a = a.counts();
        let before_b = b.counts();
        a.merge(&b);
        let after = a.counts();
        for i in 0..after.len() {
            prop_assert_eq!(after[i], before_a[i] + before_b[i], "bucket {} not conserved", i);
        }
        prop_assert_eq!(a.total_count(), (xs.len() + ys.len()) as u64);
        let total_sum: f64 = xs.iter().chain(&ys).sum();
        prop_assert!((a.sum() - total_sum).abs() <= 1e-6 * total_sum.abs().max(1.0));
    }

    #[test]
    fn merge_is_commutative_for_same_layout(
        (lo, ratio, n) in layout(),
        xs in proptest::collection::vec(0f64..1e9, 0..60),
        ys in proptest::collection::vec(0f64..1e9, 0..60),
    ) {
        let ab = filled(lo, ratio, n, &xs);
        ab.merge(&filled(lo, ratio, n, &ys));
        let ba = filled(lo, ratio, n, &ys);
        ba.merge(&filled(lo, ratio, n, &xs));
        prop_assert_eq!(ab.counts(), ba.counts());
        prop_assert_eq!(ab.total_count(), ba.total_count());
        // One two-operand f64 addition either way: exactly equal.
        prop_assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());
    }

    #[test]
    fn merge_is_associative_for_same_layout(
        (lo, ratio, n) in layout(),
        xs in proptest::collection::vec(0f64..1e9, 0..40),
        ys in proptest::collection::vec(0f64..1e9, 0..40),
        zs in proptest::collection::vec(0f64..1e9, 0..40),
    ) {
        // (A ⊕ B) ⊕ C
        let left = filled(lo, ratio, n, &xs);
        left.merge(&filled(lo, ratio, n, &ys));
        left.merge(&filled(lo, ratio, n, &zs));
        // A ⊕ (B ⊕ C)
        let bc = filled(lo, ratio, n, &ys);
        bc.merge(&filled(lo, ratio, n, &zs));
        let right = filled(lo, ratio, n, &xs);
        right.merge(&bc);
        prop_assert_eq!(left.counts(), right.counts());
        prop_assert_eq!(left.total_count(), right.total_count());
        // The count algebra is exact; only the f64 sum re-associates.
        let scale = left.sum().abs().max(1.0);
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * scale);
    }
}
