//! A bounded in-process recorder: keeps the newest `cap` items and
//! counts what it had to drop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A mutex-guarded ring buffer. Push is O(1); when full, the oldest
/// item is evicted and the drop counter incremented, so a long run can
/// never exhaust memory while the exporter still knows data went
/// missing.
#[derive(Debug)]
pub struct RingBuffer<T> {
    items: Mutex<VecDeque<T>>,
    cap: usize,
    dropped: AtomicU64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring retaining at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        RingBuffer {
            items: Mutex::new(VecDeque::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&self, item: T) {
        let mut items = self.items.lock().expect("ring poisoned");
        if items.len() == self.cap {
            items.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        items.push_back(item);
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.lock().expect("ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<T: Clone> RingBuffer<T> {
    /// A copy of the retained items, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.items
            .lock()
            .expect("ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
