//! A bounded in-process recorder: keeps the newest `cap` items and
//! counts what it had to drop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A mutex-guarded ring buffer. Push is O(1); when full, the oldest
/// item is evicted and the drop counter incremented, so a long run can
/// never exhaust memory while the exporter still knows data went
/// missing.
#[derive(Debug)]
pub struct RingBuffer<T> {
    items: Mutex<VecDeque<T>>,
    cap: usize,
    dropped: AtomicU64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring retaining at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        RingBuffer {
            items: Mutex::new(VecDeque::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&self, item: T) {
        let mut items = self.items.lock().expect("ring poisoned");
        if items.len() == self.cap {
            items.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        items.push_back(item);
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.lock().expect("ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns all retained items, oldest first. The drop
    /// counter is left untouched (it counts lifetime evictions, not
    /// takes).
    pub fn take(&self) -> Vec<T> {
        self.items
            .lock()
            .expect("ring poisoned")
            .drain(..)
            .collect()
    }

    /// Scans retained items newest-first, applying `f` until it
    /// returns `Some`; that value is returned. Used to patch the most
    /// recent matching record in place (e.g. backfilling a decision's
    /// measured cost once the measurement lands).
    pub fn update_last<R>(&self, mut f: impl FnMut(&mut T) -> Option<R>) -> Option<R> {
        let mut items = self.items.lock().expect("ring poisoned");
        for item in items.iter_mut().rev() {
            if let Some(r) = f(item) {
                return Some(r);
            }
        }
        None
    }
}

impl<T: Clone> RingBuffer<T> {
    /// A copy of the retained items, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.items
            .lock()
            .expect("ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = RingBuffer::<u8>::new(0);
    }

    #[test]
    fn take_drains_but_keeps_drop_counter() {
        let ring = RingBuffer::new(2);
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.take(), vec![1, 2]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn update_last_patches_newest_match() {
        let ring = RingBuffer::new(4);
        for i in 0..4 {
            ring.push(i);
        }
        let hit = ring.update_last(|x| {
            if *x % 2 == 0 {
                *x = 100;
                Some(*x)
            } else {
                None
            }
        });
        assert_eq!(hit, Some(100));
        assert_eq!(ring.snapshot(), vec![0, 1, 100, 3]);
        assert_eq!(
            ring.update_last(|x| if *x > 500 { Some(()) } else { None }),
            None
        );
    }
}
