//! Cross-rank causal tracing: per-rank, per-track timeline events on a
//! shared monotonic timebase, with flow edges binding each message
//! send to its matching receive across ranks.
//!
//! # Model
//!
//! Every rank owns a [`Tracer`] — the same `Option<Arc<...>>` shape as
//! [`crate::Telemetry`], so a disabled tracer costs one branch per
//! call site. Enabled tracers hand out events into a bounded
//! [`RingBuffer`]; all tracers built from one [`TraceHub`] share a
//! single `Instant` epoch, which is what makes cross-rank timestamps
//! comparable (ranks are OS threads in one process).
//!
//! Within a rank, events land on small integer **tracks** (rendered as
//! Perfetto threads): [`TRACK_MAIN`], [`TRACK_COMM`], the two overlap
//! streams ([`TRACK_STREAM_COMPUTE`], [`TRACK_STREAM_COMM`]), and
//! [`TRACK_RT`] for compute-pool activity.
//!
//! **Flow edges** are the causal part: the comm runtime stamps every
//! physical transmission with `(src, dst, tag, seq, kind)` — `seq`
//! counts transmission attempts per `(peer, tag, kind)`, so a
//! retransmit triggered by the reliability layer is a *distinct* edge
//! from the original send, and duplicate deliveries are visible as
//! edges into a discarded (`accepted: false`) receive.
//!
//! [`MergedTrace`] combines per-rank buffers, matches sends to
//! receives, checks structural invariants, and exports Chrome
//! `trace_events` JSON loadable in Perfetto / `chrome://tracing`.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::Arc;
use std::time::Instant;

use crate::json::Value;
use crate::ring::RingBuffer;

/// Track: top-level per-rank activity (steps, harness phases).
pub const TRACK_MAIN: u32 = 0;
/// Track: blocking collectives, waits, and the reliability epilogue.
pub const TRACK_COMM: u32 = 1;
/// Track: the overlap schedule's compute stream (expert FFN chunks).
pub const TRACK_STREAM_COMPUTE: u32 = 2;
/// Track: the overlap schedule's communication stream (dispatch /
/// combine windows, from issue to drain).
pub const TRACK_STREAM_COMM: u32 = 3;
/// Track: compute-runtime pool activity sampled around each chunk.
pub const TRACK_RT: u32 = 4;

/// Stable human name for a track id — identical on every rank, which
/// is itself one of the merge invariants.
pub fn track_name(track: u32) -> &'static str {
    match track {
        TRACK_MAIN => "main",
        TRACK_COMM => "comm",
        TRACK_STREAM_COMPUTE => "stream-compute",
        TRACK_STREAM_COMM => "stream-comm",
        TRACK_RT => "rt-worker",
        _ => "track",
    }
}

/// The wire class of a traced transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// A payload-bearing message (original, delayed flush, duplicate,
    /// or retransmission — distinguished by `seq`).
    Data,
    /// A retransmission request from a timed-out receiver.
    Retry,
    /// A reliability-epilogue acknowledgement.
    Ack,
}

impl FlowKind {
    /// Stable serialization label.
    pub fn label(self) -> &'static str {
        match self {
            FlowKind::Data => "data",
            FlowKind::Retry => "retry",
            FlowKind::Ack => "ack",
        }
    }

    /// Inverse of [`FlowKind::label`].
    pub fn from_label(s: &str) -> Option<FlowKind> {
        match s {
            "data" => Some(FlowKind::Data),
            "retry" => Some(FlowKind::Retry),
            "ack" => Some(FlowKind::Ack),
            _ => None,
        }
    }
}

/// One timeline event on a rank. All timestamps are microseconds from
/// the hub epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed interval on a track.
    Span {
        /// Track id (see the `TRACK_*` constants).
        track: u32,
        /// Slice name.
        name: String,
        /// Start, µs from epoch.
        t0_us: f64,
        /// Duration, µs.
        dur_us: f64,
        /// Numeric arguments shown in the Perfetto details pane.
        args: Vec<(String, f64)>,
    },
    /// A point-in-time marker (e.g. 2DH intra→inter promotion).
    Instant {
        /// Track id.
        track: u32,
        /// Marker name.
        name: String,
        /// Time, µs from epoch.
        t_us: f64,
    },
    /// A physical transmission leaving this rank.
    FlowSend {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Transmission attempt number for `(dst, tag, kind)`.
        seq: u32,
        /// Wire class.
        kind: FlowKind,
        /// Payload elements.
        bytes: u64,
        /// Time, µs from epoch.
        t_us: f64,
    },
    /// A transmission arriving at this rank.
    FlowRecv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Transmission attempt number echoed from the sender.
        seq: u32,
        /// Wire class.
        kind: FlowKind,
        /// `false` when the reliability layer discarded this arrival
        /// as a duplicate.
        accepted: bool,
        /// Time, µs from epoch.
        t_us: f64,
    },
}

impl TraceEvent {
    /// The event as one self-describing JSON object.
    pub fn to_value(&self) -> Value {
        match self {
            TraceEvent::Span {
                track,
                name,
                t0_us,
                dur_us,
                args,
            } => {
                let mut pairs = vec![
                    ("type".to_string(), Value::from("span")),
                    ("track".to_string(), Value::from(u64::from(*track))),
                    ("name".to_string(), Value::from(name.clone())),
                    ("t0_us".to_string(), Value::from(*t0_us)),
                    ("dur_us".to_string(), Value::from(*dur_us)),
                ];
                if !args.is_empty() {
                    pairs.push((
                        "args".to_string(),
                        Value::Obj(
                            args.iter()
                                .map(|(k, v)| (k.clone(), Value::from(*v)))
                                .collect(),
                        ),
                    ));
                }
                Value::Obj(pairs)
            }
            TraceEvent::Instant { track, name, t_us } => Value::obj([
                ("type", Value::from("instant")),
                ("track", Value::from(u64::from(*track))),
                ("name", Value::from(name.clone())),
                ("t_us", Value::from(*t_us)),
            ]),
            TraceEvent::FlowSend {
                dst,
                tag,
                seq,
                kind,
                bytes,
                t_us,
            } => Value::obj([
                ("type", Value::from("flow_send")),
                ("dst", Value::from(*dst)),
                ("tag", Value::from(*tag)),
                ("seq", Value::from(u64::from(*seq))),
                ("kind", Value::from(kind.label())),
                ("bytes", Value::from(*bytes)),
                ("t_us", Value::from(*t_us)),
            ]),
            TraceEvent::FlowRecv {
                src,
                tag,
                seq,
                kind,
                accepted,
                t_us,
            } => Value::obj([
                ("type", Value::from("flow_recv")),
                ("src", Value::from(*src)),
                ("tag", Value::from(*tag)),
                ("seq", Value::from(u64::from(*seq))),
                ("kind", Value::from(kind.label())),
                ("accepted", Value::Bool(*accepted)),
                ("t_us", Value::from(*t_us)),
            ]),
        }
    }

    /// Inverse of [`TraceEvent::to_value`].
    ///
    /// # Errors
    ///
    /// Returns a message when the object is not a recognized event.
    pub fn from_value(v: &Value) -> Result<TraceEvent, String> {
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| "event missing \"type\"".to_string())?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{kind} event missing numeric \"{key}\""))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} event missing string \"{key}\""))
        };
        match kind {
            "span" => {
                let mut args = Vec::new();
                if let Some(Value::Obj(pairs)) = v.get("args") {
                    for (k, val) in pairs {
                        args.push((k.clone(), val.as_f64().unwrap_or(0.0)));
                    }
                }
                Ok(TraceEvent::Span {
                    track: num("track")? as u32,
                    name: text("name")?,
                    t0_us: num("t0_us")?,
                    dur_us: num("dur_us")?,
                    args,
                })
            }
            "instant" => Ok(TraceEvent::Instant {
                track: num("track")? as u32,
                name: text("name")?,
                t_us: num("t_us")?,
            }),
            "flow_send" => Ok(TraceEvent::FlowSend {
                dst: num("dst")? as usize,
                tag: num("tag")? as u64,
                seq: num("seq")? as u32,
                kind: FlowKind::from_label(&text("kind")?)
                    .ok_or_else(|| "unknown flow kind".to_string())?,
                bytes: num("bytes")? as u64,
                t_us: num("t_us")?,
            }),
            "flow_recv" => Ok(TraceEvent::FlowRecv {
                src: num("src")? as usize,
                tag: num("tag")? as u64,
                seq: num("seq")? as u32,
                kind: FlowKind::from_label(&text("kind")?)
                    .ok_or_else(|| "unknown flow kind".to_string())?,
                accepted: v.get("accepted").and_then(Value::as_bool).unwrap_or(true),
                t_us: num("t_us")?,
            }),
            other => Err(format!("unknown trace event type \"{other}\"")),
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    rank: usize,
    epoch: Instant,
    ring: RingBuffer<TraceEvent>,
}

/// A per-rank trace recorder. Cheap to clone; a disabled tracer (the
/// `Default`) records nothing and every call returns after one branch
/// with no clock read, allocation, or lock.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer(rank {})", inner.rank),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A tracer that records nothing. This is also the `Default`.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled standalone tracer with its own epoch — fine for
    /// single-rank use; multi-rank runs should share a [`TraceHub`]
    /// epoch instead.
    pub fn for_rank(rank: usize) -> Tracer {
        Tracer::with_epoch(rank, Instant::now(), DEFAULT_TRACE_CAPACITY)
    }

    fn with_epoch(rank: usize, epoch: Instant, cap: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                rank,
                epoch,
                ring: RingBuffer::new(cap),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank this tracer records for, when enabled.
    pub fn rank(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.rank)
    }

    /// Microseconds since the shared epoch; `0.0` when disabled (the
    /// caller must not record the value in that case).
    pub fn now_us(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e6,
            None => 0.0,
        }
    }

    /// Opens a span on `track`; it records itself when dropped.
    pub fn span(&self, track: u32, name: &str) -> TraceSpan {
        match &self.inner {
            Some(inner) => TraceSpan {
                state: Some(TraceSpanState {
                    inner: inner.clone(),
                    track,
                    name: name.to_string(),
                    t0_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
                }),
            },
            None => TraceSpan { state: None },
        }
    }

    /// Records a span retroactively from timestamps previously taken
    /// with [`Tracer::now_us`].
    pub fn span_at(&self, track: u32, name: &str, t0_us: f64, t1_us: f64) {
        self.span_at_args(track, name, t0_us, t1_us, &[]);
    }

    /// [`Tracer::span_at`] with numeric arguments.
    pub fn span_at_args(
        &self,
        track: u32,
        name: &str,
        t0_us: f64,
        t1_us: f64,
        args: &[(&str, f64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceEvent::Span {
                track,
                name: name.to_string(),
                t0_us,
                dur_us: t1_us - t0_us,
                args: args.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            });
        }
    }

    /// Records a point-in-time marker.
    pub fn instant(&self, track: u32, name: &str) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceEvent::Instant {
                track,
                name: name.to_string(),
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
            });
        }
    }

    /// Stamps a physical transmission to `dst`.
    pub fn flow_send(&self, dst: usize, tag: u64, seq: u32, kind: FlowKind, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceEvent::FlowSend {
                dst,
                tag,
                seq,
                kind,
                bytes,
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
            });
        }
    }

    /// Stamps an arrival from `src`.
    pub fn flow_recv(&self, src: usize, tag: u64, seq: u32, kind: FlowKind, accepted: bool) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TraceEvent::FlowRecv {
                src,
                tag,
                seq,
                kind,
                accepted,
                t_us: inner.epoch.elapsed().as_secs_f64() * 1e6,
            });
        }
    }

    /// Events evicted because the ring filled.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.dropped())
    }

    /// Snapshot of recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.ring.snapshot(),
            None => Vec::new(),
        }
    }

    /// This rank's buffer as [`RankTrace`] (empty when disabled).
    pub fn rank_trace(&self) -> RankTrace {
        RankTrace {
            rank: self.rank().unwrap_or(0),
            dropped: self.dropped(),
            events: self.events(),
        }
    }

    /// Drains the ring (for per-step online analysis), returning this
    /// step's events and leaving the tracer armed for the next step.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.ring.take(),
            None => Vec::new(),
        }
    }

    /// Writes this rank's buffer as JSONL: a `trace_meta` header
    /// carrying the rank and the ring's drop counter, then one event
    /// per line, oldest first.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `w`; a disabled tracer writes
    /// nothing and returns `Ok`.
    pub fn export_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let events = inner.ring.snapshot();
        let meta = Value::obj([
            ("type", Value::from("trace_meta")),
            ("rank", Value::from(inner.rank)),
            ("events", Value::from(events.len())),
            ("dropped", Value::from(inner.ring.dropped())),
        ]);
        writeln!(w, "{}", meta.to_json())?;
        for event in &events {
            writeln!(w, "{}", event.to_value().to_json())?;
        }
        Ok(())
    }

    /// [`Tracer::export_jsonl`] to a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn export_jsonl_to(&self, path: &str) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.export_jsonl(&mut file)?;
        file.flush()
    }
}

/// Default per-rank ring capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 262_144;

struct TraceSpanState {
    inner: Arc<TracerInner>,
    track: u32,
    name: String,
    t0_us: f64,
}

/// An open trace span; records itself on drop. No-op when the tracer
/// that produced it is disabled.
pub struct TraceSpan {
    state: Option<TraceSpanState>,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let t1 = state.inner.epoch.elapsed().as_secs_f64() * 1e6;
        state.inner.ring.push(TraceEvent::Span {
            track: state.track,
            name: state.name,
            t0_us: state.t0_us,
            dur_us: t1 - state.t0_us,
            args: Vec::new(),
        });
    }
}

/// A family of per-rank tracers sharing one monotonic epoch — the
/// shared timebase that makes cross-rank flow-edge latencies and the
/// merged timeline meaningful.
#[derive(Debug)]
pub struct TraceHub {
    tracers: Vec<Tracer>,
}

impl TraceHub {
    /// A hub for `world` ranks with the default per-rank capacity.
    pub fn new(world: usize) -> TraceHub {
        TraceHub::with_capacity(world, DEFAULT_TRACE_CAPACITY)
    }

    /// A hub for `world` ranks retaining at most `cap` events each.
    pub fn with_capacity(world: usize, cap: usize) -> TraceHub {
        let epoch = Instant::now();
        TraceHub {
            tracers: (0..world)
                .map(|rank| Tracer::with_epoch(rank, epoch, cap))
                .collect(),
        }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.tracers.len()
    }

    /// The tracer for `rank` (a cheap clone sharing the rank's ring).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn tracer(&self, rank: usize) -> Tracer {
        self.tracers[rank].clone()
    }

    /// Merges all ranks' current buffers (non-destructively).
    pub fn merged(&self) -> MergedTrace {
        MergedTrace::from_ranks(self.tracers.iter().map(Tracer::rank_trace).collect())
    }

    /// Drains all ranks' buffers into a merged trace — the per-step
    /// form: analyze this step's window, leave the rings empty for the
    /// next one.
    pub fn drain_merged(&self) -> MergedTrace {
        MergedTrace::from_ranks(
            self.tracers
                .iter()
                .map(|t| RankTrace {
                    rank: t.rank().unwrap_or(0),
                    dropped: t.dropped(),
                    events: t.drain(),
                })
                .collect(),
        )
    }

    /// Writes each rank's buffer to `{prefix}.rank{r}.jsonl`.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error.
    pub fn export_rank_jsonls(&self, prefix: &str) -> io::Result<Vec<String>> {
        let mut paths = Vec::with_capacity(self.tracers.len());
        for tracer in &self.tracers {
            let rank = tracer.rank().unwrap_or(0);
            let path = format!("{prefix}.rank{rank}.jsonl");
            tracer.export_jsonl_to(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// One rank's exported (or snapshot) trace buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank the events belong to.
    pub rank: usize,
    /// Events evicted from the ring before export.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Parses one rank's JSONL export (the output of
/// [`Tracer::export_jsonl`]).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_rank_trace(text: &str) -> Result<RankTrace, String> {
    let mut out = RankTrace::default();
    let mut saw_meta = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match v.get("type").and_then(Value::as_str) {
            Some("trace_meta") => {
                out.rank = v.get("rank").and_then(Value::as_u64).unwrap_or(0) as usize;
                out.dropped = v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                saw_meta = true;
            }
            Some(_) => out
                .events
                .push(TraceEvent::from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?),
            None => return Err(format!("line {}: untyped object", i + 1)),
        }
    }
    if !saw_meta {
        return Err("no trace_meta line found".to_string());
    }
    Ok(out)
}

/// A matched send→recv pair across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEdge {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u64,
    /// Transmission attempt number.
    pub seq: u32,
    /// Wire class.
    pub kind: FlowKind,
    /// Payload elements.
    pub bytes: u64,
    /// Send timestamp, µs from the shared epoch.
    pub send_us: f64,
    /// Receive timestamp, µs from the shared epoch.
    pub recv_us: f64,
    /// Whether the receiver kept (rather than dup-discarded) it.
    pub accepted: bool,
}

impl FlowEdge {
    /// In-flight time as seen by the shared clock. Under fault
    /// injection (delays, retries) this is the delivery latency the
    /// straggler analyzer attributes to the *sender*.
    pub fn latency_us(&self) -> f64 {
        self.recv_us - self.send_us
    }
}

/// Structural facts established by [`MergedTrace::check_invariants`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceInvariants {
    /// Total events across ranks.
    pub events: usize,
    /// Span events across ranks.
    pub spans: usize,
    /// Matched flow edges.
    pub edges: usize,
    /// Matched edges whose endpoints are different ranks.
    pub cross_rank_edges: usize,
    /// Matched edges carrying [`FlowKind::Retry`].
    pub retry_edges: usize,
    /// Whether any rank's ring evicted events before export.
    pub truncated: bool,
}

/// All ranks' traces on the shared timebase.
#[derive(Debug, Clone, Default)]
pub struct MergedTrace {
    /// Per-rank buffers, sorted by rank.
    pub ranks: Vec<RankTrace>,
}

impl MergedTrace {
    /// Builds a merged trace (sorts by rank).
    pub fn from_ranks(mut ranks: Vec<RankTrace>) -> MergedTrace {
        ranks.sort_by_key(|r| r.rank);
        MergedTrace { ranks }
    }

    /// Whether any rank's ring dropped events.
    pub fn truncated(&self) -> bool {
        self.ranks.iter().any(|r| r.dropped > 0)
    }

    /// Matches every `FlowRecv` to the unique `FlowSend` with the same
    /// `(src, dst, tag, seq, kind)` key, sorted by send time.
    pub fn flow_edges(&self) -> Vec<FlowEdge> {
        type FlowKey = (usize, usize, u64, u32, u8);
        let mut sends: HashMap<FlowKey, (f64, u64)> = HashMap::new();
        for rank in &self.ranks {
            for ev in &rank.events {
                if let TraceEvent::FlowSend {
                    dst,
                    tag,
                    seq,
                    kind,
                    bytes,
                    t_us,
                } = ev
                {
                    sends.insert((rank.rank, *dst, *tag, *seq, *kind as u8), (*t_us, *bytes));
                }
            }
        }
        let mut edges = Vec::new();
        for rank in &self.ranks {
            for ev in &rank.events {
                if let TraceEvent::FlowRecv {
                    src,
                    tag,
                    seq,
                    kind,
                    accepted,
                    t_us,
                } = ev
                {
                    if let Some(&(send_us, bytes)) =
                        sends.get(&(*src, rank.rank, *tag, *seq, *kind as u8))
                    {
                        edges.push(FlowEdge {
                            src: *src,
                            dst: rank.rank,
                            tag: *tag,
                            seq: *seq,
                            kind: *kind,
                            bytes,
                            send_us,
                            recv_us: *t_us,
                            accepted: *accepted,
                        });
                    }
                }
            }
        }
        edges.sort_by(|a, b| a.send_us.total_cmp(&b.send_us));
        edges
    }

    /// Verifies the merge's structural invariants:
    ///
    /// * no span has a negative start or duration;
    /// * no two transmissions share a `(src, dst, tag, seq, kind)`
    ///   key, so every flow edge binds exactly one send/recv pair;
    /// * unless the trace is truncated, every send matches exactly one
    ///   recv and vice versa (a complete run leaves no message in
    ///   flight — duplicates land as `accepted: false` receives).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<TraceInvariants, String> {
        let mut inv = TraceInvariants {
            truncated: self.truncated(),
            ..TraceInvariants::default()
        };
        let mut send_keys: HashMap<(usize, usize, u64, u32, u8), u32> = HashMap::new();
        let mut recv_keys: HashMap<(usize, usize, u64, u32, u8), u32> = HashMap::new();
        for rank in &self.ranks {
            inv.events += rank.events.len();
            for ev in &rank.events {
                match ev {
                    TraceEvent::Span {
                        name,
                        t0_us,
                        dur_us,
                        ..
                    } => {
                        inv.spans += 1;
                        if *t0_us < 0.0 || *dur_us < 0.0 {
                            return Err(format!(
                                "rank {} span \"{name}\" has negative time (t0 {t0_us} µs, \
                                 dur {dur_us} µs)",
                                rank.rank
                            ));
                        }
                    }
                    TraceEvent::FlowSend {
                        dst,
                        tag,
                        seq,
                        kind,
                        ..
                    } => {
                        *send_keys
                            .entry((rank.rank, *dst, *tag, *seq, *kind as u8))
                            .or_insert(0) += 1;
                    }
                    TraceEvent::FlowRecv {
                        src,
                        tag,
                        seq,
                        kind,
                        ..
                    } => {
                        *recv_keys
                            .entry((*src, rank.rank, *tag, *seq, *kind as u8))
                            .or_insert(0) += 1;
                    }
                    TraceEvent::Instant { .. } => {}
                }
            }
        }
        for (key, count) in &send_keys {
            if *count > 1 {
                return Err(format!(
                    "{count} transmissions share flow key (src {}, dst {}, tag {}, seq {}, \
                     kind {})",
                    key.0, key.1, key.2, key.3, key.4
                ));
            }
        }
        for (key, count) in &recv_keys {
            if *count > 1 {
                return Err(format!(
                    "{count} receives share flow key (src {}, dst {}, tag {}, seq {}, kind {})",
                    key.0, key.1, key.2, key.3, key.4
                ));
            }
        }
        if !inv.truncated {
            for key in send_keys.keys() {
                if !recv_keys.contains_key(key) {
                    return Err(format!(
                        "send (src {}, dst {}, tag {}, seq {}, kind {}) has no matching recv",
                        key.0, key.1, key.2, key.3, key.4
                    ));
                }
            }
            for key in recv_keys.keys() {
                if !send_keys.contains_key(key) {
                    return Err(format!(
                        "recv (src {}, dst {}, tag {}, seq {}, kind {}) has no matching send",
                        key.0, key.1, key.2, key.3, key.4
                    ));
                }
            }
        }
        for edge in self.flow_edges() {
            inv.edges += 1;
            if edge.src != edge.dst {
                inv.cross_rank_edges += 1;
            }
            if edge.kind == FlowKind::Retry {
                inv.retry_edges += 1;
            }
        }
        Ok(inv)
    }

    /// Exports the merge as Chrome `trace_events` JSON (one object
    /// with a `traceEvents` array), loadable in Perfetto and
    /// `chrome://tracing`: ranks become processes, tracks become
    /// threads, and each matched flow edge becomes an `s`/`f` pair
    /// anchored on tiny `tx`/`rx` slices on the comm track.
    pub fn to_chrome(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        for rank in &self.ranks {
            let pid = Value::from(rank.rank);
            events.push(Value::obj([
                ("name", Value::from("process_name")),
                ("ph", Value::from("M")),
                ("pid", pid.clone()),
                (
                    "args",
                    Value::obj([("name", Value::from(format!("rank {}", rank.rank)))]),
                ),
            ]));
            events.push(Value::obj([
                ("name", Value::from("process_sort_index")),
                ("ph", Value::from("M")),
                ("pid", pid.clone()),
                ("args", Value::obj([("sort_index", Value::from(rank.rank))])),
            ]));
            let mut tracks: Vec<u32> = rank
                .events
                .iter()
                .map(|ev| match ev {
                    TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => *track,
                    TraceEvent::FlowSend { .. } | TraceEvent::FlowRecv { .. } => TRACK_COMM,
                })
                .collect();
            tracks.sort_unstable();
            tracks.dedup();
            for track in tracks {
                events.push(Value::obj([
                    ("name", Value::from("thread_name")),
                    ("ph", Value::from("M")),
                    ("pid", pid.clone()),
                    ("tid", Value::from(u64::from(track))),
                    (
                        "args",
                        Value::obj([("name", Value::from(track_name(track)))]),
                    ),
                ]));
                events.push(Value::obj([
                    ("name", Value::from("thread_sort_index")),
                    ("ph", Value::from("M")),
                    ("pid", pid.clone()),
                    ("tid", Value::from(u64::from(track))),
                    (
                        "args",
                        Value::obj([("sort_index", Value::from(u64::from(track)))]),
                    ),
                ]));
            }
            for ev in &rank.events {
                match ev {
                    TraceEvent::Span {
                        track,
                        name,
                        t0_us,
                        dur_us,
                        args,
                    } => {
                        let mut pairs = vec![
                            ("name".to_string(), Value::from(name.clone())),
                            ("cat".to_string(), Value::from("span")),
                            ("ph".to_string(), Value::from("X")),
                            ("pid".to_string(), pid.clone()),
                            ("tid".to_string(), Value::from(u64::from(*track))),
                            ("ts".to_string(), Value::from(*t0_us)),
                            ("dur".to_string(), Value::from(*dur_us)),
                        ];
                        if !args.is_empty() {
                            pairs.push((
                                "args".to_string(),
                                Value::Obj(
                                    args.iter()
                                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                                        .collect(),
                                ),
                            ));
                        }
                        events.push(Value::Obj(pairs));
                    }
                    TraceEvent::Instant { track, name, t_us } => {
                        events.push(Value::obj([
                            ("name", Value::from(name.clone())),
                            ("cat", Value::from("instant")),
                            ("ph", Value::from("i")),
                            ("s", Value::from("t")),
                            ("pid", pid.clone()),
                            ("tid", Value::from(u64::from(*track))),
                            ("ts", Value::from(*t_us)),
                        ]));
                    }
                    TraceEvent::FlowSend {
                        dst,
                        tag,
                        seq,
                        kind,
                        bytes,
                        t_us,
                    } => {
                        events.push(Value::obj([
                            ("name", Value::from("tx")),
                            ("cat", Value::from(format!("flow.{}", kind.label()))),
                            ("ph", Value::from("X")),
                            ("pid", pid.clone()),
                            ("tid", Value::from(u64::from(TRACK_COMM))),
                            ("ts", Value::from(*t_us)),
                            ("dur", Value::from(1.0)),
                            (
                                "args",
                                Value::obj([
                                    ("dst", Value::from(*dst)),
                                    ("tag", Value::from(*tag)),
                                    ("seq", Value::from(u64::from(*seq))),
                                    ("bytes", Value::from(*bytes)),
                                ]),
                            ),
                        ]));
                    }
                    TraceEvent::FlowRecv {
                        src,
                        tag,
                        seq,
                        kind,
                        accepted,
                        t_us,
                    } => {
                        events.push(Value::obj([
                            ("name", Value::from(if *accepted { "rx" } else { "rx.dup" })),
                            ("cat", Value::from(format!("flow.{}", kind.label()))),
                            ("ph", Value::from("X")),
                            ("pid", pid.clone()),
                            ("tid", Value::from(u64::from(TRACK_COMM))),
                            ("ts", Value::from(*t_us)),
                            ("dur", Value::from(1.0)),
                            (
                                "args",
                                Value::obj([
                                    ("src", Value::from(*src)),
                                    ("tag", Value::from(*tag)),
                                    ("seq", Value::from(u64::from(*seq))),
                                ]),
                            ),
                        ]));
                    }
                }
            }
        }
        for (id, edge) in self.flow_edges().iter().enumerate() {
            let cat = Value::from(format!("flow.{}", edge.kind.label()));
            events.push(Value::obj([
                ("name", Value::from("msg")),
                ("cat", cat.clone()),
                ("ph", Value::from("s")),
                ("id", Value::from(id)),
                ("pid", Value::from(edge.src)),
                ("tid", Value::from(u64::from(TRACK_COMM))),
                ("ts", Value::from(edge.send_us)),
            ]));
            events.push(Value::obj([
                ("name", Value::from("msg")),
                ("cat", cat),
                ("ph", Value::from("f")),
                ("bp", Value::from("e")),
                ("id", Value::from(id)),
                ("pid", Value::from(edge.dst)),
                ("tid", Value::from(u64::from(TRACK_COMM))),
                ("ts", Value::from(edge.recv_us)),
            ]));
        }
        Value::obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::from("ms")),
        ])
    }

    /// Writes [`MergedTrace::to_chrome`] to `w`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `w`.
    pub fn write_chrome(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{}", self.to_chrome().to_json())
    }

    /// [`MergedTrace::write_chrome`] to a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_chrome_to(&self, path: &str) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_chrome(&mut file)?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        let _s = tr.span(TRACK_MAIN, "step");
        tr.flow_send(1, 7, 0, FlowKind::Data, 64);
        tr.instant(TRACK_COMM, "mark");
        assert!(tr.events().is_empty());
        assert_eq!(tr.now_us(), 0.0);
        let mut out = Vec::new();
        tr.export_jsonl(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn hub_shares_epoch_and_merges() {
        let hub = TraceHub::new(2);
        let t0 = hub.tracer(0);
        let t1 = hub.tracer(1);
        t0.flow_send(1, 42, 0, FlowKind::Data, 128);
        t1.flow_recv(0, 42, 0, FlowKind::Data, true);
        {
            let _s = t1.span(TRACK_MAIN, "work");
        }
        let merged = hub.merged();
        let edges = merged.flow_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].src, edges[0].dst, edges[0].tag), (0, 1, 42));
        assert!(edges[0].latency_us() >= 0.0);
        let inv = merged.check_invariants().unwrap();
        assert_eq!(inv.edges, 1);
        assert_eq!(inv.cross_rank_edges, 1);
        assert_eq!(inv.spans, 1);
        assert!(!inv.truncated);
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let tr = Tracer::for_rank(3);
        tr.span_at_args(TRACK_STREAM_COMM, "dispatch", 10.0, 25.5, &[("chunk", 2.0)]);
        tr.instant(TRACK_COMM, "2dh.promote");
        tr.flow_send(0, 9, 1, FlowKind::Retry, 16);
        tr.flow_recv(2, 5, 0, FlowKind::Ack, false);
        let mut out = Vec::new();
        tr.export_jsonl(&mut out).unwrap();
        let parsed = parse_rank_trace(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(parsed.rank, 3);
        assert_eq!(parsed.dropped, 0);
        assert_eq!(parsed.events, tr.events());
    }

    #[test]
    fn unmatched_recv_fails_invariants_unless_truncated() {
        let rank = RankTrace {
            rank: 1,
            dropped: 0,
            events: vec![TraceEvent::FlowRecv {
                src: 0,
                tag: 1,
                seq: 0,
                kind: FlowKind::Data,
                accepted: true,
                t_us: 5.0,
            }],
        };
        let merged = MergedTrace::from_ranks(vec![rank.clone()]);
        assert!(merged.check_invariants().is_err());
        let truncated = RankTrace { dropped: 3, ..rank };
        let merged = MergedTrace::from_ranks(vec![truncated]);
        let inv = merged.check_invariants().unwrap();
        assert!(inv.truncated);
    }

    #[test]
    fn duplicate_flow_key_is_rejected() {
        let send = TraceEvent::FlowSend {
            dst: 1,
            tag: 1,
            seq: 0,
            kind: FlowKind::Data,
            bytes: 8,
            t_us: 1.0,
        };
        let rank = RankTrace {
            rank: 0,
            dropped: 0,
            events: vec![send.clone(), send],
        };
        let merged = MergedTrace::from_ranks(vec![rank]);
        let err = merged.check_invariants().unwrap_err();
        assert!(err.contains("share flow key"), "{err}");
    }

    #[test]
    fn negative_duration_is_rejected() {
        let rank = RankTrace {
            rank: 0,
            dropped: 0,
            events: vec![TraceEvent::Span {
                track: TRACK_MAIN,
                name: "bad".into(),
                t0_us: 4.0,
                dur_us: -1.0,
                args: Vec::new(),
            }],
        };
        let merged = MergedTrace::from_ranks(vec![rank]);
        assert!(merged.check_invariants().is_err());
    }

    #[test]
    fn chrome_export_carries_flows_and_metadata() {
        let hub = TraceHub::new(2);
        hub.tracer(0).flow_send(1, 3, 0, FlowKind::Data, 32);
        hub.tracer(1).flow_recv(0, 3, 0, FlowKind::Data, true);
        hub.tracer(0).span_at(TRACK_MAIN, "step", 0.0, 10.0);
        let json = hub.merged().to_chrome().to_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("rank 1"), "{json}");
        // Loadable means parseable; round-trip through our own parser.
        assert!(Value::parse(&json).is_ok());
    }

    #[test]
    fn drain_empties_the_ring() {
        let hub = TraceHub::new(1);
        hub.tracer(0).instant(TRACK_MAIN, "a");
        let step1 = hub.drain_merged();
        assert_eq!(step1.ranks[0].events.len(), 1);
        let step2 = hub.drain_merged();
        assert!(step2.ranks[0].events.is_empty());
    }

    #[test]
    fn retransmits_are_distinct_edges() {
        let hub = TraceHub::new(2);
        let t0 = hub.tracer(0);
        let t1 = hub.tracer(1);
        // Original transmission and a retransmission of the same tag.
        t0.flow_send(1, 7, 0, FlowKind::Data, 64);
        t0.flow_send(1, 7, 1, FlowKind::Data, 64);
        t1.flow_recv(0, 7, 0, FlowKind::Data, true);
        t1.flow_recv(0, 7, 1, FlowKind::Data, false);
        let merged = hub.merged();
        assert_eq!(merged.flow_edges().len(), 2);
        merged.check_invariants().unwrap();
    }
}
