//! Lock-cheap metric primitives: counters, gauges, and fixed
//! log-bucketed histograms.
//!
//! All three record through atomics, so a handle can be shared across
//! threads and updated without taking a lock. The registry itself
//! (name → handle) is behind a mutex, but lookups return `Arc`s that
//! instrumentation sites may cache.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, x: f64) {
        self.bits.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over positive values with *fixed log-bucketing*: the
/// bucket layout is decided at construction and never changes, so two
/// histograms with the same layout can be merged bucket-by-bucket.
///
/// Bucket `i` (for `1 ≤ i ≤ n`) covers `[lo·r^(i-1), lo·r^i)`; bucket
/// `0` is the underflow bucket (`v < lo`, including zero and negative
/// values) and bucket `n + 1` the overflow bucket (`v ≥ lo·r^n`).
/// Bounds are materialized once by cumulative multiplication and
/// indexed by binary search, so [`Histogram::bucket_index`] is always
/// consistent with [`Histogram::bounds`].
#[derive(Debug)]
pub struct Histogram {
    /// The `n + 1` bucket edges `lo·r^0 .. lo·r^n`, strictly increasing.
    bounds: Vec<f64>,
    /// `n + 2` counts: underflow, the `n` log buckets, overflow.
    counts: Vec<AtomicU64>,
    /// Sum of recorded values (f64 bits, CAS-updated).
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with `n` log buckets starting at `lo` and
    /// growing by factor `ratio` per bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `lo > 0`, `ratio > 1`, `n ≥ 1`, and the top edge
    /// `lo·ratio^n` stays finite.
    pub fn new(lo: f64, ratio: f64, n: usize) -> Self {
        assert!(
            lo > 0.0 && lo.is_finite(),
            "histogram lo must be positive and finite"
        );
        assert!(
            ratio > 1.0 && ratio.is_finite(),
            "histogram ratio must exceed 1"
        );
        assert!(n >= 1, "histogram needs at least one bucket");
        let mut bounds = Vec::with_capacity(n + 1);
        let mut edge = lo;
        for _ in 0..=n {
            bounds.push(edge);
            edge *= ratio;
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram top edge overflowed to infinity"
        );
        let counts = (0..n + 2).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// The default layout for durations in seconds: 1 ns to ~16 s in
    /// ×2 steps.
    pub fn timing() -> Self {
        Histogram::new(1e-9, 2.0, 34)
    }

    /// The default layout for integer-ish magnitudes (token counts,
    /// element counts): 1 to ~10^9 in roughly ×2 steps.
    pub fn magnitude() -> Self {
        Histogram::new(1.0, 2.0, 30)
    }

    /// The bucket edges (length = number of log buckets + 1).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of counts slots: log buckets + underflow + overflow.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// The bucket slot a value lands in: number of edges ≤ `v`.
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b <= v)
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bucket_index(v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS loop to accumulate an f64 through an AtomicU64.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Per-slot counts snapshot.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn total_count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Whether `other` has the identical bucket layout.
    pub fn same_layout(&self, other: &Histogram) -> bool {
        self.bounds == other.bounds
    }

    /// Merges `other` into `self` bucket-by-bucket.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge(&self, other: &Histogram) {
        assert!(
            self.same_layout(other),
            "cannot merge histograms with different layouts"
        );
        for (dst, count) in self.counts.iter().zip(other.counts()) {
            dst.fetch_add(count, Ordering::Relaxed);
        }
        self.total.fetch_add(other.total_count(), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Name → metric registry. One mutexed map per metric kind; handles
/// are `Arc`s so hot paths can look up once and update lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram `name` with [`Histogram::timing`]
    /// layout; use [`MetricsRegistry::histogram_with`] for a custom one.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::timing)
    }

    /// Gets or creates the histogram `name`, building a missing one
    /// with `make`.
    pub fn histogram_with(&self, name: &str, make: impl FnOnce() -> Histogram) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(make()))
            .clone()
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("metrics registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let map = self.gauges.lock().expect("metrics registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all histograms (name, handle).
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let map = self.histograms.lock().expect("metrics registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::default();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        assert_eq!(reg.counter("a").get(), 7);
        reg.gauge("g").set(1.25);
        assert_eq!(reg.gauge("g").get(), 1.25);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(1.0, 2.0, 3); // edges 1, 2, 4, 8
        for v in [0.5, 1.0, 1.9, 2.0, 7.9, 8.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), vec![1, 2, 1, 1, 2]);
        assert_eq!(h.total_count(), 7);
        assert!((h.sum() - 121.3).abs() < 1e-9);
    }

    #[test]
    fn merge_conserves_counts() {
        let a = Histogram::new(1.0, 2.0, 4);
        let b = Histogram::new(1.0, 2.0, 4);
        for v in [0.1, 3.0, 5.0] {
            a.record(v);
        }
        for v in [2.0, 40.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.total_count(), 5);
        assert_eq!(a.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_layout_mismatch() {
        let a = Histogram::new(1.0, 2.0, 4);
        let b = Histogram::new(1.0, 3.0, 4);
        a.merge(&b);
    }
}
