//! Online analysis over a merged trace: critical-path extraction,
//! straggler detection, and expert-imbalance alerts.
//!
//! The analyzer runs per step (or per run) over a [`MergedTrace`] and
//! produces typed [`AnomalyRecord`]s that land in the same audit ring
//! as the adaptive decisions ([`crate::Telemetry::anomaly`]), so when
//! `MeasuredStrategySearch` sees a chosen strategy regress the cause
//! sits next to the decision.
//!
//! Straggler detection uses two independent signals:
//!
//! 1. **Wall clock**: each rank's busy window (span extent) against
//!    the median; the slowest rank is flagged when it exceeds
//!    `straggler_ratio × median`.
//! 2. **Delivery latency**: every data *message* (grouped by
//!    `(src, dst, tag)` across retransmissions) gets a delivery
//!    latency — earliest send to earliest accepted receive — and the
//!    latencies are attributed to the **sender**, summarized per rank
//!    by the median. A rank whose median outgoing delivery exceeds
//!    `straggler_ratio ×` the median rank's is flagged. This is the
//!    signal that names the right rank under fault injection — a rank
//!    that *delays its sends* stalls other ranks' walls, so wall
//!    clock alone blames the victims; and the median (not the worst)
//!    keeps a slow *receiver* from smearing every sender, since only
//!    the culprit is slow on all of its outgoing messages.

use std::collections::HashMap;

use crate::events::AnomalyRecord;
use crate::trace::{FlowKind, MergedTrace, TraceEvent};
use crate::Telemetry;

/// Thresholds for the analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerConfig {
    /// A rank is a straggler when its signal exceeds this multiple of
    /// the median rank's.
    pub straggler_ratio: f64,
    /// Ignore wall-clock stragglers on steps shorter than this (µs) —
    /// scheduling noise dominates tiny windows.
    pub min_wall_us: f64,
    /// Ignore delivery-latency stragglers below this absolute
    /// median-latency floor (µs); healthy park/unpark jitter stays
    /// well under it, reliability-layer retry delays sit far above.
    pub min_latency_us: f64,
    /// An expert is hot when its load exceeds this multiple of the
    /// mean per-expert load.
    pub imbalance_ratio: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            straggler_ratio: 1.5,
            min_wall_us: 100.0,
            min_latency_us: 5_000.0,
            imbalance_ratio: 4.0,
        }
    }
}

/// Where a step's time went on the rank that bounded it.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The slowest rank — the one whose timeline bounds the step.
    pub rank: usize,
    /// That rank's busy window (first span start to last span end), µs.
    pub wall_us: f64,
    /// Exclusive per-phase time on that rank (innermost-active span
    /// attribution; un-spanned gaps count as `idle`), largest first.
    pub phases: Vec<(String, f64)>,
}

impl CriticalPath {
    /// The phase that bounds the step (largest exclusive share).
    pub fn bounding_phase(&self) -> Option<&(String, f64)> {
        self.phases.first()
    }
}

/// The analyzer's output for one merged trace window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// `(rank, busy window µs)` for every rank, rank order.
    pub rank_walls: Vec<(usize, f64)>,
    /// Critical path of the slowest rank, when any rank had spans.
    pub critical_path: Option<CriticalPath>,
    /// Typed anomalies, ready for the audit log.
    pub anomalies: Vec<AnomalyRecord>,
}

impl Analysis {
    /// Records every anomaly into `tel`'s audit ring (stamped with the
    /// current step).
    pub fn record_into(&self, tel: &Telemetry) {
        for anomaly in &self.anomalies {
            tel.anomaly(anomaly.clone());
        }
    }

    /// The flagged straggler rank, if any (first straggler anomaly).
    pub fn straggler(&self) -> Option<usize> {
        self.anomalies
            .iter()
            .find(|a| a.kind == "straggler")
            .and_then(|a| a.rank)
    }
}

/// Runs the trace-only analyses (critical path + both straggler
/// signals). Use [`analyze_with_load`] to add expert-imbalance alerts
/// from a routing histogram.
pub fn analyze(trace: &MergedTrace, cfg: &AnalyzerConfig) -> Analysis {
    let mut analysis = Analysis {
        rank_walls: rank_walls(trace),
        ..Analysis::default()
    };
    critical_path(trace, &mut analysis);
    wall_straggler(cfg, &mut analysis);
    latency_straggler(trace, cfg, &mut analysis);
    analysis
}

/// [`analyze`] plus an expert-imbalance check over per-expert token
/// counts (e.g. [`crate::StepRecord::expert_load`]).
pub fn analyze_with_load(
    trace: &MergedTrace,
    cfg: &AnalyzerConfig,
    expert_load: &[u64],
) -> Analysis {
    let mut analysis = analyze(trace, cfg);
    expert_imbalance(expert_load, cfg, None, &mut analysis);
    analysis
}

/// [`analyze_with_load`] plus the padding-waste telemetry published
/// by the gate (`dispatch.padded_slots` / `dispatch.routed_tokens`
/// gauges): when a hot expert trips the imbalance alert, the anomaly
/// detail also quantifies the fraction of dispatch FLOPs the *padded*
/// compute path wastes on empty capacity slots this step — the cost
/// the dropless grouped path avoids entirely.
pub fn analyze_with_dispatch(
    trace: &MergedTrace,
    cfg: &AnalyzerConfig,
    expert_load: &[u64],
    tel: &crate::Telemetry,
) -> Analysis {
    let mut analysis = analyze(trace, cfg);
    let waste = match (
        tel.gauge_value("dispatch.padded_slots"),
        tel.gauge_value("dispatch.routed_tokens"),
    ) {
        (Some(padded), Some(routed)) if padded > 0.0 => Some((padded, routed)),
        _ => None,
    };
    expert_imbalance(expert_load, cfg, waste, &mut analysis);
    analysis
}

/// Renders an analysis as the text report the `tutel-trace` CLI
/// prints.
pub fn report(analysis: &Analysis) -> String {
    let mut out = String::new();
    match &analysis.critical_path {
        Some(cp) => {
            out.push_str(&format!(
                "critical path: rank {} bounds the step ({:.1} µs busy window)\n",
                cp.rank, cp.wall_us
            ));
            for (name, us) in &cp.phases {
                let pct = if cp.wall_us > 0.0 {
                    100.0 * us / cp.wall_us
                } else {
                    0.0
                };
                out.push_str(&format!("  {name:<20} {us:>12.1} µs  {pct:>5.1}%\n"));
            }
        }
        None => out.push_str("critical path: no spans recorded\n"),
    }
    out.push_str("rank walls (µs):");
    for (rank, wall) in &analysis.rank_walls {
        out.push_str(&format!("  r{rank}={wall:.1}"));
    }
    out.push('\n');
    if analysis.anomalies.is_empty() {
        out.push_str("anomalies: none\n");
    } else {
        out.push_str("anomalies:\n");
        for anomaly in &analysis.anomalies {
            out.push_str(&format!(
                "  {} (ratio {:.2})\n",
                anomaly.summary(),
                anomaly.ratio
            ));
        }
    }
    out
}

/// Median of a sorted slice (mean of the middle pair for even
/// lengths); `0.0` when empty.
fn median_sorted(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => 0.5 * (xs[n / 2 - 1] + xs[n / 2]),
    }
}

/// Each rank's busy window: last span end − first span start.
fn rank_walls(trace: &MergedTrace) -> Vec<(usize, f64)> {
    trace
        .ranks
        .iter()
        .map(|rank| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for ev in &rank.events {
                if let TraceEvent::Span { t0_us, dur_us, .. } = ev {
                    lo = lo.min(*t0_us);
                    hi = hi.max(t0_us + dur_us);
                }
            }
            (rank.rank, if hi > lo { hi - lo } else { 0.0 })
        })
        .collect()
}

fn critical_path(trace: &MergedTrace, analysis: &mut Analysis) {
    let Some(&(slowest, wall_us)) = analysis
        .rank_walls
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        return;
    };
    if wall_us <= 0.0 {
        return;
    }
    let Some(rank) = trace.ranks.iter().find(|r| r.rank == slowest) else {
        return;
    };
    // Innermost-active sweep: between consecutive span boundaries the
    // segment is attributed to the active span with the latest start
    // (the innermost for nested spans, the most recent for the
    // overlap streams); gaps with nothing active are `idle`.
    let mut spans: Vec<(&str, f64, f64)> = rank
        .events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Span {
                name,
                t0_us,
                dur_us,
                ..
            } => Some((name.as_str(), *t0_us, t0_us + dur_us)),
            _ => None,
        })
        .collect();
    spans.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut bounds: Vec<f64> = spans.iter().flat_map(|&(_, t0, t1)| [t0, t1]).collect();
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    let mut phases: Vec<(String, f64)> = Vec::new();
    for pair in bounds.windows(2) {
        let (seg0, seg1) = (pair[0], pair[1]);
        if seg1 <= seg0 {
            continue;
        }
        let mid = 0.5 * (seg0 + seg1);
        let active = spans
            .iter()
            .filter(|&&(_, t0, t1)| t0 <= mid && mid < t1)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let name = active.map_or("idle", |&(name, _, _)| name);
        match phases.iter_mut().find(|(k, _)| k == name) {
            Some((_, total)) => *total += seg1 - seg0,
            None => phases.push((name.to_string(), seg1 - seg0)),
        }
    }
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    let bounding = phases.first().cloned();
    analysis.critical_path = Some(CriticalPath {
        rank: slowest,
        wall_us,
        phases,
    });
    if let Some((name, us)) = bounding {
        let share = us / wall_us;
        analysis.anomalies.push(AnomalyRecord {
            kind: "critical_path".into(),
            rank: Some(slowest),
            request_id: None,
            ratio: share,
            detail: format!(
                "step bounded by `{name}` ({:.0}% of rank {slowest}'s {wall_us:.0} µs window)",
                100.0 * share
            ),
            step: None,
        });
    }
}

fn wall_straggler(cfg: &AnalyzerConfig, analysis: &mut Analysis) {
    let mut walls: Vec<f64> = analysis.rank_walls.iter().map(|&(_, w)| w).collect();
    if walls.len() < 2 {
        return;
    }
    walls.sort_by(f64::total_cmp);
    let median = median_sorted(&walls);
    let Some(&(slowest, worst)) = analysis
        .rank_walls
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        return;
    };
    if worst >= cfg.min_wall_us && median > 0.0 && worst > cfg.straggler_ratio * median {
        analysis.anomalies.push(AnomalyRecord {
            kind: "straggler".into(),
            rank: Some(slowest),
            request_id: None,
            ratio: worst / median,
            detail: format!("rank {slowest} busy window {worst:.0} µs vs median {median:.0} µs"),
            step: None,
        });
    }
}

fn latency_straggler(trace: &MergedTrace, cfg: &AnalyzerConfig, analysis: &mut Analysis) {
    // Per-message delivery latency: retransmissions of one message
    // share `(src, dst, tag)`, and what matters is the gap from the
    // first transmission attempt to the first *useful* (accepted)
    // arrival — a retry that lands late still delivered late, however
    // quick the retransmission itself was.
    let mut messages: HashMap<(usize, usize, u64), (f64, Option<f64>)> = HashMap::new();
    for edge in trace.flow_edges() {
        if edge.kind != FlowKind::Data {
            continue;
        }
        let entry = messages
            .entry((edge.src, edge.dst, edge.tag))
            .or_insert((edge.send_us, None));
        entry.0 = entry.0.min(edge.send_us);
        if edge.accepted {
            entry.1 = Some(match entry.1 {
                Some(t) => t.min(edge.recv_us),
                None => edge.recv_us,
            });
        }
    }
    // Median outgoing delivery latency per *sending* rank; the median
    // (not the worst) keeps one slow receiver from smearing every
    // rank that sent to it.
    let mut per_sender: HashMap<usize, Vec<f64>> = HashMap::new();
    for (&(src, _, _), &(send_us, recv_us)) in &messages {
        if let Some(recv_us) = recv_us {
            per_sender.entry(src).or_default().push(recv_us - send_us);
        }
    }
    if per_sender.len() < 2 {
        return;
    }
    let mut medians: Vec<(usize, f64)> = per_sender
        .into_iter()
        .map(|(rank, mut lats)| {
            lats.sort_by(f64::total_cmp);
            (rank, median_sorted(&lats))
        })
        .collect();
    medians.sort_by_key(|&(rank, _)| rank);
    let mut stats: Vec<f64> = medians.iter().map(|&(_, m)| m).collect();
    stats.sort_by(f64::total_cmp);
    let median = median_sorted(&stats);
    let Some(&(rank, slowest)) = medians.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
        return;
    };
    if slowest >= cfg.min_latency_us && slowest > cfg.straggler_ratio * median.max(1.0) {
        analysis.anomalies.push(AnomalyRecord {
            kind: "straggler".into(),
            rank: Some(rank),
            request_id: None,
            ratio: slowest / median.max(1.0),
            detail: format!(
                "rank {rank}'s data lands a median {slowest:.0} µs after sending \
                 (median rank {median:.0} µs) — delayed or retransmitted sends"
            ),
            step: None,
        });
    }
}

fn expert_imbalance(
    expert_load: &[u64],
    cfg: &AnalyzerConfig,
    waste: Option<(f64, f64)>,
    analysis: &mut Analysis,
) {
    if expert_load.is_empty() {
        return;
    }
    let total: u64 = expert_load.iter().sum();
    if total == 0 {
        return;
    }
    let mean = total as f64 / expert_load.len() as f64;
    let (hot, &load) = expert_load
        .iter()
        .enumerate()
        .max_by_key(|&(_, &l)| l)
        .unwrap_or((0, &0));
    let ratio = load as f64 / mean;
    if ratio > cfg.imbalance_ratio {
        let mut detail =
            format!("expert {hot} holds {load} of {total} tokens ({ratio:.1}x the mean load)");
        if let Some((padded, routed)) = waste {
            let wasted = 100.0 * (1.0 - routed / padded).max(0.0);
            detail.push_str(&format!(
                "; padded dispatch wastes {wasted:.0}% of its FLOPs \
                 ({routed:.0} routed rows in {padded:.0} capacity slots)"
            ));
        }
        analysis.anomalies.push(AnomalyRecord {
            kind: "expert_imbalance".into(),
            rank: None,
            request_id: None,
            ratio,
            detail,
            step: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RankTrace, TRACK_COMM, TRACK_MAIN};

    fn span(name: &str, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent::Span {
            track: TRACK_MAIN,
            name: name.into(),
            t0_us: t0,
            dur_us: t1 - t0,
            args: Vec::new(),
        }
    }

    fn rank_with_spans(rank: usize, spans: Vec<TraceEvent>) -> RankTrace {
        RankTrace {
            rank,
            dropped: 0,
            events: spans,
        }
    }

    #[test]
    fn wall_straggler_names_the_slowest_rank() {
        let trace = MergedTrace::from_ranks(vec![
            rank_with_spans(0, vec![span("step", 0.0, 1_000.0)]),
            rank_with_spans(1, vec![span("step", 0.0, 1_100.0)]),
            rank_with_spans(2, vec![span("step", 0.0, 5_000.0)]),
            rank_with_spans(3, vec![span("step", 0.0, 900.0)]),
        ]);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(analysis.straggler(), Some(2));
    }

    #[test]
    fn balanced_ranks_raise_no_straggler() {
        let trace = MergedTrace::from_ranks(vec![
            rank_with_spans(0, vec![span("step", 0.0, 1_000.0)]),
            rank_with_spans(1, vec![span("step", 0.0, 1_050.0)]),
        ]);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(analysis.straggler(), None);
    }

    #[test]
    fn latency_straggler_blames_the_sender() {
        // Rank 1's delivery arrives 20 ms after the send; everyone
        // else delivers in microseconds. Walls are balanced, so only
        // the flow-latency signal can name rank 1.
        let mk = |src: usize, dst: usize, send: f64, recv: f64| {
            vec![
                (
                    src,
                    TraceEvent::FlowSend {
                        dst,
                        tag: (src * 10 + dst) as u64,
                        seq: 0,
                        kind: FlowKind::Data,
                        bytes: 8,
                        t_us: send,
                    },
                ),
                (
                    dst,
                    TraceEvent::FlowRecv {
                        src,
                        tag: (src * 10 + dst) as u64,
                        seq: 0,
                        kind: FlowKind::Data,
                        accepted: true,
                        t_us: recv,
                    },
                ),
            ]
        };
        let mut per_rank: Vec<Vec<TraceEvent>> = vec![Vec::new(); 4];
        for (src, dst, send, recv) in [
            (0usize, 1usize, 0.0, 5.0),
            (1, 2, 0.0, 20_000.0),
            (2, 3, 0.0, 6.0),
            (3, 0, 0.0, 4.0),
        ] {
            for (owner, ev) in mk(src, dst, send, recv) {
                per_rank[owner].push(ev);
            }
        }
        for (r, events) in per_rank.iter_mut().enumerate() {
            events.push(span("step", 0.0, 1_000.0 + r as f64));
        }
        let trace = MergedTrace::from_ranks(
            per_rank
                .into_iter()
                .enumerate()
                .map(|(r, events)| rank_with_spans(r, events))
                .collect(),
        );
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(analysis.straggler(), Some(1));
    }

    #[test]
    fn critical_path_attributes_innermost_and_idle() {
        let events = vec![
            span("step", 0.0, 100.0),
            span("ffn", 10.0, 70.0),
            TraceEvent::Span {
                track: TRACK_COMM,
                name: "all_to_all".into(),
                t0_us: 70.0,
                dur_us: 20.0,
                args: Vec::new(),
            },
        ];
        let trace = MergedTrace::from_ranks(vec![rank_with_spans(0, events)]);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        let cp = analysis.critical_path.expect("critical path");
        assert_eq!(cp.rank, 0);
        assert!((cp.wall_us - 100.0).abs() < 1e-9);
        assert_eq!(cp.bounding_phase().map(|(n, _)| n.as_str()), Some("ffn"));
        let get = |name: &str| {
            cp.phases
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        assert!((get("ffn") - 60.0).abs() < 1e-9);
        assert!((get("all_to_all") - 20.0).abs() < 1e-9);
        // `step` keeps only its exclusive head/tail segments.
        assert!((get("step") - 20.0).abs() < 1e-9);
        assert!(analysis.anomalies.iter().any(|a| a.kind == "critical_path"));
    }

    #[test]
    fn expert_imbalance_flags_hot_expert() {
        let trace = MergedTrace::default();
        let analysis = analyze_with_load(
            &trace,
            &AnalyzerConfig::default(),
            &[10, 10, 10, 500, 10, 10, 10, 10],
        );
        let hot = analysis
            .anomalies
            .iter()
            .find(|a| a.kind == "expert_imbalance")
            .expect("imbalance anomaly");
        assert!(hot.detail.contains("expert 3"), "{}", hot.detail);

        let balanced = analyze_with_load(&trace, &AnalyzerConfig::default(), &[10; 8]);
        assert!(!balanced
            .anomalies
            .iter()
            .any(|a| a.kind == "expert_imbalance"));
    }

    #[test]
    fn imbalance_detail_quantifies_padded_flop_waste() {
        // With the gate's dispatch gauges available, the alert prices
        // what the skew costs the padded path: one 500-token expert
        // pads all 8 bins to 500 slots, so 4000 slots carry 580 rows.
        let tel = crate::Telemetry::enabled();
        tel.set_gauge("dispatch.padded_slots", 4000.0);
        tel.set_gauge("dispatch.routed_tokens", 580.0);
        let trace = MergedTrace::default();
        let load = [10, 10, 10, 500, 10, 10, 10, 10];
        let analysis = analyze_with_dispatch(&trace, &AnalyzerConfig::default(), &load, &tel);
        let hot = analysis
            .anomalies
            .iter()
            .find(|a| a.kind == "expert_imbalance")
            .expect("imbalance anomaly");
        assert!(
            hot.detail.contains("wastes 86% of its FLOPs"),
            "{}",
            hot.detail
        );
        // Without the gauges the detail stays load-only.
        let plain = analyze_with_dispatch(
            &trace,
            &AnalyzerConfig::default(),
            &load,
            &crate::Telemetry::disabled(),
        );
        let hot = plain
            .anomalies
            .iter()
            .find(|a| a.kind == "expert_imbalance")
            .expect("imbalance anomaly");
        assert!(!hot.detail.contains("wastes"), "{}", hot.detail);
    }

    #[test]
    fn report_is_human_readable() {
        let trace = MergedTrace::from_ranks(vec![
            rank_with_spans(0, vec![span("step", 0.0, 1_000.0)]),
            rank_with_spans(1, vec![span("step", 0.0, 4_000.0)]),
        ]);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        let text = report(&analysis);
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("straggler"), "{text}");
    }
}
