//! The telemetry event model: spans, modeled collectives, per-step
//! training records, and adaptive-decision audit entries.
//!
//! Every event serializes to one self-describing JSON object (a
//! `"type"` field plus payload) so a JSONL export can be filtered with
//! `jq 'select(.type == "...")'`.

use crate::json::Value;

/// A tag attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// A string tag.
    Str(String),
    /// A float tag.
    F64(f64),
    /// An integer tag.
    U64(u64),
}

impl TagValue {
    fn to_value(&self) -> Value {
        match self {
            TagValue::Str(s) => Value::Str(s.clone()),
            TagValue::F64(x) => Value::Num(*x),
            TagValue::U64(n) => Value::Num(*n as f64),
        }
    }
}

impl From<&str> for TagValue {
    fn from(s: &str) -> TagValue {
        TagValue::Str(s.to_string())
    }
}

impl From<String> for TagValue {
    fn from(s: String) -> TagValue {
        TagValue::Str(s)
    }
}

impl From<f64> for TagValue {
    fn from(x: f64) -> TagValue {
        TagValue::F64(x)
    }
}

impl From<u64> for TagValue {
    fn from(n: u64) -> TagValue {
        TagValue::U64(n)
    }
}

impl From<usize> for TagValue {
    fn from(n: usize) -> TagValue {
        TagValue::U64(n as u64)
    }
}

/// A completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (also the stage key it accumulates under).
    pub name: String,
    /// Start offset from telemetry creation, seconds.
    pub start_s: f64,
    /// Wall-clock duration, seconds.
    pub dur_s: f64,
    /// Training step active when the span closed, if any.
    pub step: Option<u64>,
    /// Serving request the span worked on behalf of, if any — lets a
    /// serve-path trace be filtered down to one victim request.
    pub request_id: Option<u64>,
    /// Free-form tags.
    pub tags: Vec<(String, TagValue)>,
}

/// A priced (modeled) collective: the simulated cluster never moves
/// real bytes, so instead of a wall-clock span the comm layer records
/// the algorithm, payload, and the cost model's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveRecord {
    /// Operation: `all_to_all`, `all_gather`, `all_reduce`.
    pub op: String,
    /// Algorithm tag (`linear`, `2DH`, or a group size).
    pub algo: String,
    /// Per-GPU payload bytes.
    pub bytes: f64,
    /// Modeled seconds from the cost model.
    pub modeled_s: f64,
    /// Training step active when recorded, if any.
    pub step: Option<u64>,
}

/// One training iteration, assembled by the trainer (or an example's
/// hand-rolled loop) after the optimizer step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepRecord {
    /// Step index.
    pub step: u64,
    /// Training loss.
    pub loss: f64,
    /// Learning rate used.
    pub lr: f64,
    /// Summed auxiliary loss over MoE layers.
    pub aux_loss: f64,
    /// Capacity factor in effect (first MoE layer).
    pub capacity_factor: f64,
    /// Per-MoE-layer minimum no-drop capacity factor.
    pub needed_factors: Vec<f64>,
    /// Per-expert token counts, summed element-wise over MoE layers.
    pub expert_load: Vec<u64>,
    /// Tokens dropped by the capacity clamp, summed over MoE layers.
    pub dropped: u64,
    /// Per-stage durations in seconds (`gate`, `encode`, `ffn`,
    /// `decode` measured; `a2a_dispatch`, `a2a_combine` modeled).
    pub stages: Vec<(String, f64)>,
}

/// One adaptive-decision audit entry: what the search considered, what
/// it predicted, and what it picked.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Which adaptive mechanism decided: `pipeline` (exhaustive model
    /// search), `pipeline.online` (Algorithm 2), or `parallelism`
    /// (P1/P2 router).
    pub kind: String,
    /// Capacity factor the decision was made for.
    pub capacity_factor: f64,
    /// Candidate name → predicted/measured cost in seconds.
    pub candidates: Vec<(String, f64)>,
    /// The winning candidate.
    pub chosen: String,
    /// Predicted cost of the winner, when the search has one
    /// (`None` while Algorithm 2 is still exploring).
    pub predicted_s: Option<f64>,
    /// Measured cost of the winner (normalized per-chunk wall-clock),
    /// when the search ranks by execution rather than by model
    /// (`None` for purely modeled decisions or before the first
    /// measurement lands).
    pub measured_s: Option<f64>,
    /// Attributed cause carried over from the trace analyzer when the
    /// previously chosen strategy regressed (e.g. `straggler: rank 1`);
    /// `None` for ordinary decisions.
    pub cause: Option<String>,
    /// Storage-precision mode the costs were priced under (`f32`,
    /// `bf16`), when the deciding mechanism is precision-aware —
    /// reduced-precision weights halve parameter-collective bytes, so
    /// the audit trail must say which price book was in effect.
    pub precision: Option<String>,
    /// Whether the decided configuration runs the dropless compute
    /// path (ragged bins + grouped GEMM, no capacity padding) — the
    /// cost books differ, so the audit trail records which one priced
    /// the candidates.
    pub dropless: bool,
    /// Training step active when recorded, if any.
    pub step: Option<u64>,
}

/// A typed anomaly flagged by the online trace analyzer
/// (`tutel_obs::analyze`): stragglers, expert-load imbalance, and
/// critical-path shifts, recorded into the same audit ring as
/// adaptive decisions so a regression and its cause sit side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRecord {
    /// Anomaly class: `straggler`, `expert_imbalance`, `critical_path`.
    pub kind: String,
    /// The rank the anomaly is attributed to, when rank-specific.
    pub rank: Option<usize>,
    /// The serving request the anomaly victimized, when the alert
    /// comes from the serve path (`serve.straggler`,
    /// `serve.deadline_miss`) — names the victim request directly.
    pub request_id: Option<u64>,
    /// Severity as a ratio against the healthy baseline (slowest rank
    /// vs. median, hottest expert vs. mean load).
    pub ratio: f64,
    /// Human-readable attribution.
    pub detail: String,
    /// Training step active when recorded, if any.
    pub step: Option<u64>,
}

impl AnomalyRecord {
    /// One-line `kind: detail` form for text reports.
    pub fn summary(&self) -> String {
        format!("{}: {}", self.kind, self.detail)
    }
}

/// Any recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A wall-clock span.
    Span(SpanRecord),
    /// A modeled collective.
    Collective(CollectiveRecord),
    /// A training step.
    Step(StepRecord),
    /// An adaptive decision.
    Decision(DecisionRecord),
    /// A trace-analyzer anomaly.
    Anomaly(AnomalyRecord),
}

fn opt_step(step: Option<u64>) -> Value {
    match step {
        Some(s) => Value::from(s),
        None => Value::Null,
    }
}

impl Event {
    /// The event as one self-describing JSON object.
    pub fn to_value(&self) -> Value {
        match self {
            Event::Span(s) => {
                let mut pairs = vec![
                    ("type".to_string(), Value::from("span")),
                    ("name".to_string(), Value::from(s.name.clone())),
                    ("start_s".to_string(), Value::from(s.start_s)),
                    ("dur_s".to_string(), Value::from(s.dur_s)),
                    ("step".to_string(), opt_step(s.step)),
                ];
                if let Some(id) = s.request_id {
                    pairs.push(("request_id".to_string(), Value::from(id)));
                }
                if !s.tags.is_empty() {
                    pairs.push((
                        "tags".to_string(),
                        Value::Obj(
                            s.tags
                                .iter()
                                .map(|(k, v)| (k.clone(), v.to_value()))
                                .collect(),
                        ),
                    ));
                }
                Value::Obj(pairs)
            }
            Event::Collective(c) => Value::obj([
                ("type", Value::from("collective")),
                ("op", Value::from(c.op.clone())),
                ("algo", Value::from(c.algo.clone())),
                ("bytes", Value::from(c.bytes)),
                ("modeled_s", Value::from(c.modeled_s)),
                ("step", opt_step(c.step)),
            ]),
            Event::Step(s) => Value::obj([
                ("type", Value::from("step")),
                ("step", Value::from(s.step)),
                ("loss", Value::from(s.loss)),
                ("lr", Value::from(s.lr)),
                ("aux_loss", Value::from(s.aux_loss)),
                ("capacity_factor", Value::from(s.capacity_factor)),
                (
                    "needed_factors",
                    Value::Arr(s.needed_factors.iter().map(|&f| Value::from(f)).collect()),
                ),
                (
                    "expert_load",
                    Value::Arr(s.expert_load.iter().map(|&n| Value::from(n)).collect()),
                ),
                ("dropped", Value::from(s.dropped)),
                (
                    "stages",
                    Value::Obj(
                        s.stages
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(*v)))
                            .collect(),
                    ),
                ),
            ]),
            Event::Decision(d) => Value::obj([
                ("type", Value::from("adaptive_decision")),
                ("kind", Value::from(d.kind.clone())),
                ("capacity_factor", Value::from(d.capacity_factor)),
                (
                    "candidates",
                    Value::Arr(
                        d.candidates
                            .iter()
                            .map(|(name, cost)| {
                                Value::obj([
                                    ("name", Value::from(name.clone())),
                                    ("cost_s", Value::from(*cost)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("chosen", Value::from(d.chosen.clone())),
                (
                    "predicted_s",
                    d.predicted_s.map(Value::from).unwrap_or(Value::Null),
                ),
                (
                    "measured_s",
                    d.measured_s.map(Value::from).unwrap_or(Value::Null),
                ),
                (
                    "cause",
                    d.cause
                        .as_ref()
                        .map(|c| Value::from(c.clone()))
                        .unwrap_or(Value::Null),
                ),
                (
                    "precision",
                    d.precision
                        .as_ref()
                        .map(|p| Value::from(p.clone()))
                        .unwrap_or(Value::Null),
                ),
                ("dropless", Value::Bool(d.dropless)),
                ("step", opt_step(d.step)),
            ]),
            Event::Anomaly(a) => Value::obj([
                ("type", Value::from("anomaly")),
                ("kind", Value::from(a.kind.clone())),
                ("rank", a.rank.map(Value::from).unwrap_or(Value::Null)),
                (
                    "request_id",
                    a.request_id.map(Value::from).unwrap_or(Value::Null),
                ),
                ("ratio", Value::from(a.ratio)),
                ("detail", Value::from(a.detail.clone())),
                ("step", opt_step(a.step)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_type_tags() {
        let span = Event::Span(SpanRecord {
            name: "gate".into(),
            start_s: 0.5,
            dur_s: 0.25,
            step: Some(3),
            request_id: None,
            tags: vec![("algo".into(), TagValue::from("2DH"))],
        });
        let json = span.to_value().to_json();
        assert!(json.starts_with(r#"{"type":"span""#), "{json}");
        assert!(json.contains(r#""step":3"#), "{json}");
        assert!(json.contains(r#""algo":"2DH""#), "{json}");

        let dec = Event::Decision(DecisionRecord {
            kind: "pipeline".into(),
            capacity_factor: 1.0,
            candidates: vec![("linear×d1".into(), 0.002)],
            chosen: "linear×d1".into(),
            predicted_s: None,
            measured_s: Some(0.0021),
            cause: Some("straggler: rank 1".into()),
            precision: Some("bf16".into()),
            dropless: true,
            step: None,
        });
        let json = dec.to_value().to_json();
        assert!(json.contains(r#""type":"adaptive_decision""#), "{json}");
        assert!(json.contains(r#""predicted_s":null"#), "{json}");
        assert!(json.contains(r#""measured_s":0.0021"#), "{json}");
        assert!(json.contains(r#""cause":"straggler: rank 1""#), "{json}");
        assert!(json.contains(r#""precision":"bf16""#), "{json}");
        assert!(json.contains(r#""dropless":true"#), "{json}");
    }

    #[test]
    fn anomalies_serialize_with_rank_attribution() {
        let a = Event::Anomaly(AnomalyRecord {
            kind: "straggler".into(),
            rank: Some(2),
            request_id: None,
            ratio: 3.5,
            detail: "rank 2 wall 3.5x median".into(),
            step: Some(4),
        });
        let json = a.to_value().to_json();
        assert!(json.contains(r#""type":"anomaly""#), "{json}");
        assert!(json.contains(r#""rank":2"#), "{json}");
        assert!(json.contains(r#""request_id":null"#), "{json}");
        assert!(json.contains(r#""step":4"#), "{json}");
    }

    #[test]
    fn serve_records_carry_the_victim_request_id() {
        let span = Event::Span(SpanRecord {
            name: "serve.request".into(),
            start_s: 0.0,
            dur_s: 0.001,
            step: None,
            request_id: Some(42),
            tags: Vec::new(),
        });
        let json = span.to_value().to_json();
        assert!(json.contains(r#""request_id":42"#), "{json}");

        let a = Event::Anomaly(AnomalyRecord {
            kind: "serve.straggler".into(),
            rank: None,
            request_id: Some(7),
            ratio: 2.5,
            detail: "request 7 latency 2.5x p50".into(),
            step: None,
        });
        let json = a.to_value().to_json();
        assert!(json.contains(r#""request_id":7"#), "{json}");
    }
}
