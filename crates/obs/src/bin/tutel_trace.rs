//! `tutel-trace`: merge per-rank trace JSONLs into one Perfetto-
//! loadable Chrome `trace_events` JSON and print a critical-path
//! report.
//!
//! ```text
//! tutel-trace <out.trace.json> <rank0.jsonl> [rank1.jsonl ...]
//! ```
//!
//! Exit codes: `0` merged and invariants hold, `1` usage or I/O
//! error, `2` the merged trace violates a structural invariant.
//! Truncated inputs (a rank's ring dropped events) merge with a
//! warning on stderr — the completeness invariants are skipped in
//! that case, so the analysis window is explicit, never silent.

use std::process::ExitCode;

use tutel_obs::analyze::{analyze, report, AnalyzerConfig};
use tutel_obs::{parse_rank_trace, MergedTrace, RankTrace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: tutel-trace <out.trace.json> <rank0.jsonl> [rank1.jsonl ...]");
        return ExitCode::FAILURE;
    }
    let out_path = &args[0];
    let mut ranks: Vec<RankTrace> = Vec::new();
    for path in &args[1..] {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("tutel-trace: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match parse_rank_trace(&text) {
            Ok(rank) => {
                if rank.dropped > 0 {
                    eprintln!(
                        "tutel-trace: warning: rank {} dropped {} events before export — \
                         the merged trace is truncated",
                        rank.rank, rank.dropped
                    );
                }
                ranks.push(rank);
            }
            Err(err) => {
                eprintln!("tutel-trace: {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = MergedTrace::from_ranks(ranks);
    let invariants = match merged.check_invariants() {
        Ok(inv) => inv,
        Err(err) => {
            eprintln!("tutel-trace: invariant violated: {err}");
            return ExitCode::from(2);
        }
    };
    if let Err(err) = merged.write_chrome_to(out_path) {
        eprintln!("tutel-trace: cannot write {out_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!(
        "merged {} ranks: {} events, {} spans, {} flow edges ({} cross-rank, {} retries){}",
        merged.ranks.len(),
        invariants.events,
        invariants.spans,
        invariants.edges,
        invariants.cross_rank_edges,
        invariants.retry_edges,
        if invariants.truncated {
            " [TRUNCATED]"
        } else {
            ""
        }
    );
    println!("wrote {out_path}");
    print!("{}", report(&analyze(&merged, &AnalyzerConfig::default())));
    ExitCode::SUCCESS
}
