//! Compute-runtime gauges: pool utilization, steal counts, arena
//! hit-rate.
//!
//! `tutel-obs` sits at the bottom of the workspace layering and must
//! not depend on `tutel-rt`, so the runtime's counters arrive here as
//! a plain-number [`RuntimeSnapshot`] filled in by the caller (the
//! trainer, the bench harness) from `tutel_rt::pool_stats()` and
//! `tutel_rt::arena().stats()`. [`record_runtime`] turns one snapshot
//! into the stable gauge names below, so JSONL exports from any
//! harness agree on spelling.

use crate::Telemetry;

/// Gauge: worker threads in the pool (including the caller's slot).
pub const POOL_WORKERS: &str = "rt.pool.workers";
/// Gauge: parallel jobs dispatched through the pool so far.
pub const POOL_JOBS: &str = "rt.pool.jobs";
/// Gauge: chunks executed across all jobs so far.
pub const POOL_CHUNKS: &str = "rt.pool.chunks";
/// Gauge: fraction of chunks executed by background workers rather
/// than the calling thread (0 on a single-core host).
pub const POOL_UTILIZATION: &str = "rt.pool.utilization";
/// Gauge: chunks claimed out of another participant's region.
pub const POOL_STEALS: &str = "rt.pool.steals";
/// Gauge: fraction of arena takes served from the free lists.
pub const ARENA_HIT_RATE: &str = "rt.arena.hit_rate";
/// Gauge: `f32` elements currently retained in the arena free lists.
pub const ARENA_RETAINED_ELEMS: &str = "rt.arena.retained_elems";
/// Gauge: buffers the arena dropped because a retention cap was hit.
pub const ARENA_EVICTIONS: &str = "rt.arena.evictions";

/// A point-in-time copy of the compute runtime's cumulative counters,
/// decoupled from `tutel-rt`'s own stats types.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeSnapshot {
    /// Worker threads in the pool, including the caller's slot.
    pub pool_workers: usize,
    /// Parallel jobs dispatched through the pool.
    pub pool_jobs: u64,
    /// Chunks executed across all jobs.
    pub pool_chunks: u64,
    /// Fraction of chunks executed by background workers.
    pub pool_utilization: f64,
    /// Chunks claimed out of another participant's region.
    pub pool_steals: u64,
    /// Fraction of arena takes served from the free lists.
    pub arena_hit_rate: f64,
    /// `f32` elements currently retained in the arena free lists.
    pub arena_retained_elems: usize,
    /// Buffers dropped because an arena retention cap was hit.
    pub arena_evictions: u64,
}

/// Publishes `snap` as gauges on `tel` under the `rt.*` names. A
/// no-op (one branch per gauge) when telemetry is disabled.
pub fn record_runtime(tel: &Telemetry, snap: &RuntimeSnapshot) {
    if !tel.is_enabled() {
        return;
    }
    tel.set_gauge(POOL_WORKERS, snap.pool_workers as f64);
    tel.set_gauge(POOL_JOBS, snap.pool_jobs as f64);
    tel.set_gauge(POOL_CHUNKS, snap.pool_chunks as f64);
    tel.set_gauge(POOL_UTILIZATION, snap.pool_utilization);
    tel.set_gauge(POOL_STEALS, snap.pool_steals as f64);
    tel.set_gauge(ARENA_HIT_RATE, snap.arena_hit_rate);
    tel.set_gauge(ARENA_RETAINED_ELEMS, snap.arena_retained_elems as f64);
    tel.set_gauge(ARENA_EVICTIONS, snap.arena_evictions as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_runtime_sets_all_gauges() {
        let tel = Telemetry::enabled();
        let snap = RuntimeSnapshot {
            pool_workers: 4,
            pool_jobs: 10,
            pool_chunks: 80,
            pool_utilization: 0.75,
            pool_steals: 3,
            arena_hit_rate: 0.9,
            arena_retained_elems: 1024,
            arena_evictions: 1,
        };
        record_runtime(&tel, &snap);
        assert_eq!(tel.gauge_value(POOL_WORKERS), Some(4.0));
        assert_eq!(tel.gauge_value(POOL_UTILIZATION), Some(0.75));
        assert_eq!(tel.gauge_value(POOL_STEALS), Some(3.0));
        assert_eq!(tel.gauge_value(ARENA_HIT_RATE), Some(0.9));
        assert_eq!(tel.gauge_value(ARENA_RETAINED_ELEMS), Some(1024.0));
        assert_eq!(tel.gauge_value(ARENA_EVICTIONS), Some(1.0));
    }

    #[test]
    fn disabled_telemetry_is_a_no_op() {
        let tel = Telemetry::disabled();
        record_runtime(&tel, &RuntimeSnapshot::default());
        assert_eq!(tel.gauge_value(POOL_WORKERS), None);
    }
}
