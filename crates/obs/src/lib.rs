//! Iteration-level observability for the tutel-rs MoE stack.
//!
//! The paper's adaptive mechanisms — dynamic capacity factors
//! (Figure 1), the online pipelining search (Algorithm 2), and the
//! P1/P2 parallelism router — all act on *per-iteration* signals. This
//! crate makes those signals inspectable: every crate in the workspace
//! reports into one shared [`Telemetry`] handle, and the whole run
//! exports as JSONL for offline analysis.
//!
//! # Pieces
//!
//! * **Metrics** ([`metrics`]): lock-cheap [`Counter`]s, [`Gauge`]s,
//!   and [`Histogram`]s with *fixed log-bucketing* — the bucket layout
//!   is fixed at construction, bucket bounds grow geometrically, and
//!   two histograms with the same layout merge bucket-by-bucket (used
//!   to aggregate per-thread or per-run loads).
//! * **Spans** ([`Telemetry::span`]): wall-clock scopes recorded into
//!   an in-process [`RingBuffer`] — bounded, oldest-first eviction,
//!   with a drop counter so truncation is never silent. A span's
//!   duration also accumulates into the current training step's
//!   per-stage map (`gate`, `encode`, `ffn`, `decode`, ...).
//! * **Events** ([`events`]): besides spans, the ring records modeled
//!   collectives ([`CollectiveRecord`]: algorithm, payload bytes, cost
//!   model's seconds), per-training-step summaries ([`StepRecord`]:
//!   loss, per-expert load, dropped tokens, per-stage durations), and
//!   the adaptive-decision audit log ([`DecisionRecord`]: candidate
//!   strategies, their predicted costs, and the winner).
//! * **Export** ([`Telemetry::export_jsonl`]): one self-describing
//!   JSON object per line (`"type"`: `meta`, `span`, `collective`,
//!   `step`, `adaptive_decision`, `anomaly`, `counter`, `gauge`,
//!   `histogram`), hand-written by [`json`] because the offline build
//!   has no serde serialization (the same module also parses, for the
//!   trace merger).
//! * **Causal tracing** ([`trace`]): per-rank [`Tracer`]s on a shared
//!   [`TraceHub`] epoch record per-track timeline events and
//!   `(src, dst, tag, seq)`-stamped flow edges; [`MergedTrace`]
//!   combines ranks, checks invariants, and exports Chrome
//!   `trace_events` JSON for Perfetto (see the `tutel-trace` CLI).
//! * **Analysis** ([`analyze`]): per-step critical-path extraction,
//!   straggler detection (wall clock and sender-attributed delivery
//!   latency), and expert-imbalance alerts, emitted as typed
//!   [`AnomalyRecord`]s into the decision audit log.
//!
//! # Cost when disabled
//!
//! [`Telemetry`] is an `Option<Arc<...>>`. [`Telemetry::disabled`]
//! (also its `Default`) holds `None`: cloning copies a `None`, and
//! every recording call returns after one branch — no clock reads, no
//! allocation, no locking. Instrumented hot paths are therefore safe
//! to leave in release builds; the `moe_layer` criterion bench gates
//! this (< 2 % overhead with telemetry off).
//!
//! # Example
//!
//! ```
//! use tutel_obs::{StepRecord, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! tel.begin_step(0);
//! {
//!     let _gate = tel.span("gate").tag("experts", 8u64);
//!     // ... route tokens ...
//! }
//! tel.add_counter("gate.dropped_tokens", 3);
//! tel.record_step(StepRecord { step: 0, loss: 2.3, ..StepRecord::default() });
//!
//! let mut jsonl = Vec::new();
//! tel.export_jsonl(&mut jsonl).unwrap();
//! assert!(String::from_utf8(jsonl).unwrap().contains("\"type\":\"step\""));
//! ```

pub mod analyze;
pub mod events;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod runtime;
mod telemetry;
pub mod trace;

pub use analyze::{
    analyze, analyze_with_dispatch, analyze_with_load, Analysis, AnalyzerConfig, CriticalPath,
};
pub use events::{
    AnomalyRecord, CollectiveRecord, DecisionRecord, Event, SpanRecord, StepRecord, TagValue,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use ring::RingBuffer;
pub use runtime::{record_runtime, RuntimeSnapshot};
pub use telemetry::{Span, Telemetry};
pub use trace::{
    parse_rank_trace, FlowEdge, FlowKind, MergedTrace, RankTrace, TraceEvent, TraceHub,
    TraceInvariants, Tracer,
};
