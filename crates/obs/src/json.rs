//! A minimal JSON value and writer.
//!
//! The workspace builds offline without serde's serialization
//! machinery, so the telemetry exporter hand-writes its JSONL. Only
//! what export needs is implemented: objects, arrays, strings,
//! numbers, booleans, and null. Non-finite floats serialize as `null`
//! (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; written via [`fmt_f64`].
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact one-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => out.push_str(&fmt_f64(*x)),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Num(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Formats a float the way the exporter wants it: integers without a
/// fraction, everything else in shortest-roundtrip form, non-finite as
/// `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without the trailing ".0" Rust's
        // Display would add via {:?}; {} already does this.
        let mut s = String::new();
        let _ = write!(s, "{x}");
        if s.contains('.') {
            s.truncate(s.find('.').unwrap_or(s.len()));
        }
        s
    } else {
        format!("{x}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd")),
            (
                "xs",
                Value::Arr(vec![Value::from(1u64), Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(v.to_json(), r#"{"name":"a\"b\\c\nd","xs":[1,true,null]}"#);
    }

    #[test]
    fn floats_format_compactly() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
