//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline without serde's serialization
//! machinery, so the telemetry exporter hand-writes its JSONL. Only
//! what export needs is implemented: objects, arrays, strings,
//! numbers, booleans, and null. Non-finite floats serialize as `null`
//! (JSON has no NaN/Infinity). The parser ([`Value::parse`]) is the
//! inverse used by the trace merger and the `tutel-trace` CLI to read
//! per-rank JSONL exports back in.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; written via [`fmt_f64`].
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact one-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON document (object, array, or scalar), rejecting
    /// trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an unsigned integer (truncated), if this is a
    /// non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => out.push_str(&fmt_f64(*x)),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Num(x as f64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Num(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Formats a float the way the exporter wants it: integers without a
/// fraction, everything else in shortest-roundtrip form, non-finite as
/// `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without the trailing ".0" Rust's
        // Display would add via {:?}; {} already does this.
        let mut s = String::new();
        let _ = write!(s, "{x}");
        if s.contains('.') {
            s.truncate(s.find('.').unwrap_or(s.len()));
        }
        s
    } else {
        format!("{x}")
    }
}

/// Recursive-descent JSON parser over raw bytes. Accepts exactly what
/// the writer above emits (plus ordinary JSON whitespace), which keeps
/// it small: no comments, no trailing commas, numbers via Rust's f64
/// parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs only arise for non-BMP
                            // input; combine when both halves appear.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                    let c = rest.chars().next().unwrap_or('\u{FFFD}');
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd")),
            (
                "xs",
                Value::Arr(vec![Value::from(1u64), Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(v.to_json(), r#"{"name":"a\"b\\c\nd","xs":[1,true,null]}"#);
    }

    #[test]
    fn floats_format_compactly() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd\té")),
            ("n", Value::from(0.125)),
            ("neg", Value::Num(-3.0)),
            (
                "xs",
                Value::Arr(vec![Value::from(1u64), Value::Bool(false), Value::Null]),
            ),
            ("inner", Value::obj([("k", Value::from("v"))])),
        ]);
        let parsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accessors() {
        let v = Value::parse(r#"{"a": [1, 2.5], "s": "x", "b": true}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} extra").is_err());
        assert!(Value::parse(r#"{"k" 1}"#).is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        // BMP escapes plus a surrogate pair (U+1F600).
        let v = Value::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}\u{1F600}"));
    }
}
