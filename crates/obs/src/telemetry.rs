//! The [`Telemetry`] handle: a cheap-to-clone, no-op-when-disabled
//! front door to the metrics registry, span tracer, and event ring.

use std::io::{self, Write};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::events::{
    AnomalyRecord, CollectiveRecord, DecisionRecord, Event, SpanRecord, StepRecord, TagValue,
};
use crate::json::Value;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::ring::RingBuffer;

/// Sentinel for "no training step active".
const NO_STEP: i64 = -1;

#[derive(Debug)]
struct Inner {
    metrics: MetricsRegistry,
    events: RingBuffer<Event>,
    /// Stage-name → accumulated seconds for the current step; drained
    /// into each [`StepRecord`].
    stages: Mutex<Vec<(String, f64)>>,
    /// Current training step, or [`NO_STEP`].
    step: AtomicI64,
    epoch: Instant,
}

/// A shared telemetry handle.
///
/// Cloning is an `Arc` clone (or a `None` copy when disabled). Every
/// recording method first checks the inner `Option`; a disabled handle
/// does no timing, no allocation, and no locking, so instrumented hot
/// paths cost one branch when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Telemetry {
    /// A handle that records nothing. This is also the `Default`.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default event-ring capacity (65,536
    /// events; oldest dropped first).
    pub fn enabled() -> Self {
        Telemetry::with_capacity(65_536)
    }

    /// An enabled handle retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: MetricsRegistry::default(),
                events: RingBuffer::new(cap),
                stages: Mutex::new(Vec::new()),
                step: AtomicI64::new(NO_STEP),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // --- metrics ---

    /// Adds `n` to counter `name`.
    pub fn add_counter(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&self, name: &str, x: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name).set(x);
        }
    }

    /// Records `v` into histogram `name` (created with `make` on first
    /// use).
    pub fn record_hist_with(&self, name: &str, v: f64, make: impl FnOnce() -> Histogram) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram_with(name, make).record(v);
        }
    }

    /// Records `v` into histogram `name` with the default timing
    /// layout.
    pub fn record_hist(&self, name: &str, v: f64) {
        self.record_hist_with(name, v, Histogram::timing);
    }

    /// Counter snapshot, `None` when disabled or unknown.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        inner
            .metrics
            .counters()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Gauge snapshot, `None` when disabled or unknown.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        inner
            .metrics
            .gauges()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Histogram handle, `None` when disabled or unknown.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        let inner = self.inner.as_ref()?;
        inner
            .metrics
            .histograms()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    // --- spans ---

    /// Opens a wall-clock span; it records itself when dropped. The
    /// span's duration also accumulates into the current step's stage
    /// map under `name`.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(inner) => Span {
                inner: Some(SpanState {
                    telemetry: inner.clone(),
                    name: name.to_string(),
                    start: Instant::now(),
                    request_id: None,
                    tags: Vec::new(),
                }),
            },
            None => Span { inner: None },
        }
    }

    /// Adds `seconds` to the current step's stage `name` without a
    /// wall-clock span — for stage costs that are *modeled* rather
    /// than measured (the simulated All-to-All legs).
    pub fn add_stage(&self, name: &str, seconds: f64) {
        if let Some(inner) = &self.inner {
            inner.add_stage(name, seconds);
        }
    }

    // --- events ---

    /// Records a modeled collective, stamped with the current step.
    pub fn collective(&self, op: &str, algo: &str, bytes: f64, modeled_s: f64) {
        if let Some(inner) = &self.inner {
            inner.events.push(Event::Collective(CollectiveRecord {
                op: op.to_string(),
                algo: algo.to_string(),
                bytes,
                modeled_s,
                step: inner.current_step(),
            }));
        }
    }

    /// Records an adaptive decision, stamped with the current step.
    pub fn decision(&self, mut rec: DecisionRecord) {
        if let Some(inner) = &self.inner {
            rec.step = inner.current_step();
            inner.events.push(Event::Decision(rec));
        }
    }

    /// Records a trace-analyzer anomaly into the audit ring, stamped
    /// with the current step.
    pub fn anomaly(&self, mut rec: AnomalyRecord) {
        if let Some(inner) = &self.inner {
            rec.step = inner.current_step();
            inner.events.push(Event::Anomaly(rec));
        }
    }

    /// Patches the newest decision matching `kind` and `chosen` with a
    /// measured cost — decisions are emitted when a strategy is
    /// *picked*, but the measurement only exists after the step ran,
    /// so the EWMA update backfills it here. Returns whether a record
    /// was found.
    pub fn backfill_decision(&self, kind: &str, chosen: &str, measured_s: f64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        inner
            .events
            .update_last(|event| match event {
                Event::Decision(d) if d.kind == kind && d.chosen == chosen => {
                    d.measured_s = Some(measured_s);
                    Some(())
                }
                _ => None,
            })
            .is_some()
    }

    /// Marks the start of training step `step`: stamps subsequent
    /// spans/decisions/collectives and clears the stage accumulator.
    pub fn begin_step(&self, step: u64) {
        if let Some(inner) = &self.inner {
            inner.step.store(step as i64, Ordering::Relaxed);
            inner.stages.lock().expect("stages poisoned").clear();
        }
    }

    /// Completes a training step: drains the accumulated stage
    /// durations into `rec.stages` (modeled stages already in `rec`
    /// are kept) and records the event.
    pub fn record_step(&self, mut rec: StepRecord) {
        if let Some(inner) = &self.inner {
            let mut acc = inner.stages.lock().expect("stages poisoned");
            for (name, secs) in acc.drain(..) {
                merge_stage(&mut rec.stages, &name, secs);
            }
            drop(acc);
            inner.events.push(Event::Step(rec));
            inner.step.store(NO_STEP, Ordering::Relaxed);
        }
    }

    /// Snapshot of all recorded events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.snapshot(),
            None => Vec::new(),
        }
    }

    /// All adaptive-decision events, oldest first.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Decision(d) => Some(d),
                _ => None,
            })
            .collect()
    }

    /// All analyzer anomalies, oldest first.
    pub fn anomalies(&self) -> Vec<AnomalyRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Anomaly(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// All step events, oldest first.
    pub fn steps(&self) -> Vec<StepRecord> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Step(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Number of events dropped because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.dropped())
    }

    // --- export ---

    /// Writes the full telemetry state as JSONL: a `meta` header line,
    /// one line per event (oldest first), then one line per metric.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `w`; a disabled handle writes
    /// nothing and returns `Ok`.
    pub fn export_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let events = inner.events.snapshot();
        let meta = Value::obj([
            ("type", Value::from("meta")),
            ("events", Value::from(events.len())),
            ("dropped_events", Value::from(inner.events.dropped())),
        ]);
        writeln!(w, "{}", meta.to_json())?;
        for event in &events {
            writeln!(w, "{}", event.to_value().to_json())?;
        }
        for (name, value) in inner.metrics.counters() {
            let line = Value::obj([
                ("type", Value::from("counter")),
                ("name", Value::from(name)),
                ("value", Value::from(value)),
            ]);
            writeln!(w, "{}", line.to_json())?;
        }
        for (name, value) in inner.metrics.gauges() {
            let line = Value::obj([
                ("type", Value::from("gauge")),
                ("name", Value::from(name)),
                ("value", Value::from(value)),
            ]);
            writeln!(w, "{}", line.to_json())?;
        }
        for (name, hist) in inner.metrics.histograms() {
            let line = Value::obj([
                ("type", Value::from("histogram")),
                ("name", Value::from(name)),
                (
                    "bounds",
                    Value::Arr(hist.bounds().iter().map(|&b| Value::from(b)).collect()),
                ),
                (
                    "counts",
                    Value::Arr(hist.counts().iter().map(|&c| Value::from(c)).collect()),
                ),
                ("sum", Value::from(hist.sum())),
                ("count", Value::from(hist.total_count())),
            ]);
            writeln!(w, "{}", line.to_json())?;
        }
        Ok(())
    }

    /// [`Telemetry::export_jsonl`] to a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn export_jsonl_to(&self, path: &str) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.export_jsonl(&mut file)?;
        file.flush()
    }
}

impl Inner {
    fn current_step(&self) -> Option<u64> {
        match self.step.load(Ordering::Relaxed) {
            NO_STEP => None,
            s => Some(s as u64),
        }
    }

    fn add_stage(&self, name: &str, seconds: f64) {
        let mut acc = self.stages.lock().expect("stages poisoned");
        merge_stage(&mut acc, name, seconds);
    }
}

fn merge_stage(stages: &mut Vec<(String, f64)>, name: &str, seconds: f64) {
    match stages.iter_mut().find(|(k, _)| k == name) {
        Some((_, total)) => *total += seconds,
        None => stages.push((name.to_string(), seconds)),
    }
}

struct SpanState {
    telemetry: Arc<Inner>,
    name: String,
    start: Instant,
    request_id: Option<u64>,
    tags: Vec<(String, TagValue)>,
}

/// An open span; closes (and records itself) on drop. No-op when the
/// telemetry handle that produced it is disabled.
pub struct Span {
    inner: Option<SpanState>,
}

impl Span {
    /// Attaches a tag.
    pub fn tag(mut self, key: &str, value: impl Into<TagValue>) -> Self {
        if let Some(state) = &mut self.inner {
            state.tags.push((key.to_string(), value.into()));
        }
        self
    }

    /// Attributes the span to a serving request, so a serve-path trace
    /// can be filtered down to one victim request by id.
    pub fn request(mut self, id: u64) -> Self {
        if let Some(state) = &mut self.inner {
            state.request_id = Some(id);
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.inner.take() else {
            return;
        };
        let dur_s = state.start.elapsed().as_secs_f64();
        let start_s = state
            .start
            .duration_since(state.telemetry.epoch)
            .as_secs_f64();
        state.telemetry.add_stage(&state.name, dur_s);
        state.telemetry.events.push(Event::Span(SpanRecord {
            name: state.name,
            start_s,
            dur_s,
            step: state.telemetry.current_step(),
            request_id: state.request_id,
            tags: state.tags,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        tel.add_counter("c", 5);
        tel.set_gauge("g", 1.0);
        let _span = tel.span("s");
        tel.record_step(StepRecord::default());
        assert!(tel.events().is_empty());
        assert_eq!(tel.counter_value("c"), None);
        let mut out = Vec::new();
        tel.export_jsonl(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn spans_feed_events_and_stages() {
        let tel = Telemetry::enabled();
        tel.begin_step(7);
        {
            let _s = tel.span("gate").tag("experts", 8u64);
        }
        tel.add_stage("a2a_dispatch", 0.001);
        tel.record_step(StepRecord {
            step: 7,
            ..StepRecord::default()
        });
        let steps = tel.steps();
        assert_eq!(steps.len(), 1);
        let stages = &steps[0].stages;
        assert!(stages.iter().any(|(k, _)| k == "gate"));
        assert!(stages
            .iter()
            .any(|(k, v)| k == "a2a_dispatch" && (*v - 0.001).abs() < 1e-12));
        // The span itself is also in the ring, stamped with the step.
        let span = tel
            .events()
            .into_iter()
            .find_map(|e| match e {
                Event::Span(s) => Some(s),
                _ => None,
            })
            .expect("span recorded");
        assert_eq!(span.step, Some(7));
        assert_eq!(span.tags.len(), 1);
    }

    #[test]
    fn export_emits_one_json_object_per_line() {
        let tel = Telemetry::enabled();
        tel.add_counter("kernels.encode.elements", 1024);
        tel.set_gauge("gate.capacity_factor", 1.25);
        tel.record_hist("dur", 0.5);
        tel.collective("all_to_all", "2DH", 4096.0, 0.002);
        let mut out = Vec::new();
        tel.export_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 5,
            "meta + event + 3 metrics, got {}",
            lines.len()
        );
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not an object: {line}"
            );
            assert!(line.contains("\"type\":"), "untyped line: {line}");
        }
    }

    #[test]
    fn anomalies_are_step_stamped() {
        let tel = Telemetry::enabled();
        tel.begin_step(11);
        tel.anomaly(AnomalyRecord {
            kind: "straggler".into(),
            rank: Some(1),
            request_id: None,
            ratio: 2.0,
            detail: "slow".into(),
            step: None,
        });
        let anomalies = tel.anomalies();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].step, Some(11));
        assert_eq!(anomalies[0].rank, Some(1));
    }

    #[test]
    fn request_ids_survive_the_jsonl_export() {
        let tel = Telemetry::enabled();
        {
            let _s = tel.span("serve.request").request(42).tag("tokens", 3u64);
        }
        tel.anomaly(AnomalyRecord {
            kind: "serve.deadline_miss".into(),
            rank: None,
            request_id: Some(42),
            ratio: 1.8,
            detail: "request 42 finished 1.8x past its deadline".into(),
            step: None,
        });
        let mut out = Vec::new();
        tel.export_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let span_line = text
            .lines()
            .find(|l| l.contains(r#""type":"span""#))
            .expect("span exported");
        assert!(span_line.contains(r#""request_id":42"#), "{span_line}");
        let anomaly_line = text
            .lines()
            .find(|l| l.contains(r#""type":"anomaly""#))
            .expect("anomaly exported");
        assert!(
            anomaly_line.contains(r#""request_id":42"#),
            "{anomaly_line}"
        );
        assert!(
            anomaly_line.contains(r#""kind":"serve.deadline_miss""#),
            "{anomaly_line}"
        );
    }

    #[test]
    fn backfill_patches_newest_matching_decision() {
        let tel = Telemetry::enabled();
        let rec = |chosen: &str| DecisionRecord {
            kind: "pipeline.measured".into(),
            capacity_factor: 1.0,
            candidates: Vec::new(),
            chosen: chosen.into(),
            predicted_s: None,
            measured_s: None,
            cause: None,
            precision: None,
            dropless: false,
            step: None,
        };
        tel.decision(rec("linear×d2"));
        tel.decision(rec("2dh×d4"));
        assert!(tel.backfill_decision("pipeline.measured", "linear×d2", 0.005));
        assert!(!tel.backfill_decision("pipeline.measured", "missing", 1.0));
        let decisions = tel.decisions();
        assert_eq!(decisions[0].measured_s, Some(0.005));
        assert_eq!(decisions[1].measured_s, None);
    }

    #[test]
    fn clone_shares_state() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.add_counter("shared", 2);
        assert_eq!(tel.counter_value("shared"), Some(2));
    }
}
