//! MoE gating for the tutel-rs stack.
//!
//! Implements the paper's gating features:
//!
//! * routers producing token→expert scores: [`LinearRouter`] (the
//!   GShard/Fairseq standard), [`CosineRouter`] (Section 5.3.4,
//!   Equation 2), and [`HashRouter`] (a parameter-free baseline);
//! * **top-ANY routing** ([`route`]): any `k`, changeable per
//!   iteration;
//! * **expert capacity** (Equation 1) with the dynamic
//!   [`CapacityPolicy`] of Figure 16 (`positive` = fixed, `0` = auto
//!   minimum that drops no token, `negative` = auto with upper bound);
//! * **batch prioritized routing** (BPR) — location assignment ordered
//!   by gate confidence instead of token order, crucial at low
//!   inference capacity factors (Figure 25);
//! * the GShard **auxiliary load-balancing loss** ([`aux_loss`]).

mod aux;
mod capacity;
mod controller;
mod obs;
mod router;
mod routing;

pub use aux::{aux_loss, aux_loss_grad};
pub use capacity::{expert_capacity, needed_capacity_factor, CapacityPolicy};
pub use controller::CapacityController;
pub use obs::observe_routing;
pub use router::{CosineRouter, HashRouter, LinearRouter, Router};
pub use routing::{route, RaggedRouting, RouteConfig, Routing};
