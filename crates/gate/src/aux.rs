//! The GShard auxiliary load-balancing loss.
//!
//! `l_aux = E · Σ_e fraction_e · mean_prob_e`, where `fraction_e` is the
//! share of tokens whose top-1 choice is expert `e` and `mean_prob_e`
//! the mean gate probability of expert `e` over the batch. Perfectly
//! balanced routing yields `l_aux = 1`; concentration raises it.

use tutel_tensor::{Tensor, TensorError};

use crate::Routing;

/// Computes the auxiliary load-balancing loss from gate probabilities
/// `probs` (shape `(T, E)`) and the routing decision.
///
/// # Errors
///
/// Returns a [`TensorError`] if `probs` does not match the routing's
/// token/expert counts.
#[allow(clippy::needless_range_loop)]
pub fn aux_loss(probs: &Tensor, routing: &Routing) -> Result<f32, TensorError> {
    let (t, e) = check(probs, routing)?;
    let mut fraction = vec![0.0f32; e];
    for choice in &routing.expert_of {
        if let Some(&top1) = choice.first() {
            fraction[top1] += 1.0 / t as f32;
        }
    }
    let mut mean_prob = vec![0.0f32; e];
    for ti in 0..t {
        for ei in 0..e {
            mean_prob[ei] += probs.at(&[ti, ei]) / t as f32;
        }
    }
    Ok(e as f32
        * fraction
            .iter()
            .zip(&mean_prob)
            .map(|(f, p)| f * p)
            .sum::<f32>())
}

/// Gradient of [`aux_loss`] with respect to `probs`, treating the
/// routing decision (the `fraction` term) as constant — the GShard
/// straight-through convention.
///
/// # Errors
///
/// Returns a [`TensorError`] if `probs` does not match the routing.
#[allow(clippy::needless_range_loop)]
pub fn aux_loss_grad(probs: &Tensor, routing: &Routing) -> Result<Tensor, TensorError> {
    let (t, e) = check(probs, routing)?;
    let mut fraction = vec![0.0f32; e];
    for choice in &routing.expert_of {
        if let Some(&top1) = choice.first() {
            fraction[top1] += 1.0 / t as f32;
        }
    }
    // d l / d probs[t][e] = E · fraction_e / T.
    let mut grad = Tensor::zeros(&[t, e]);
    for ti in 0..t {
        for ei in 0..e {
            grad.set(&[ti, ei], e as f32 * fraction[ei] / t as f32);
        }
    }
    Ok(grad)
}

fn check(probs: &Tensor, routing: &Routing) -> Result<(usize, usize), TensorError> {
    if probs.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: probs.rank(),
            op: "aux_loss",
        });
    }
    let (t, e) = (probs.dims()[0], probs.dims()[1]);
    if t != routing.num_tokens() || e != routing.experts {
        return Err(TensorError::ShapeMismatch {
            left: probs.dims().to_vec(),
            right: vec![routing.num_tokens(), routing.experts],
            op: "aux_loss",
        });
    }
    Ok((t, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route, RouteConfig};

    #[test]
    fn balanced_routing_has_unit_loss() {
        // Uniform probabilities, diagonal routing: fraction_e = 1/E,
        // mean_prob_e = 1/E → l = E · E · (1/E²) = 1.
        let (t, e) = (8, 4);
        let mut probs = Tensor::full(&[t, e], 1.0 / e as f32);
        // Tip the diagonal very slightly to pin top-1 choices evenly.
        for ti in 0..t {
            let ei = ti % e;
            probs.set(&[ti, ei], 1.0 / e as f32 + 1e-4);
        }
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        let l = aux_loss(&probs, &r).unwrap();
        assert!((l - 1.0).abs() < 0.01, "l = {l}");
    }

    #[test]
    fn concentrated_routing_raises_loss() {
        let (t, e) = (8, 4);
        let mut probs = Tensor::zeros(&[t, e]);
        for ti in 0..t {
            probs.set(&[ti, 0], 0.97);
            for ei in 1..e {
                probs.set(&[ti, ei], 0.01);
            }
        }
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        let l = aux_loss(&probs, &r).unwrap();
        // fraction_0 = 1, mean_prob_0 = 0.97 → l ≈ E · 0.97 ≈ 3.88.
        assert!(l > 3.0, "l = {l}");
    }

    #[test]
    fn grad_matches_finite_difference_on_mean_prob_term() {
        let (t, e) = (4, 3);
        let mut probs = Tensor::zeros(&[t, e]);
        for ti in 0..t {
            for ei in 0..e {
                probs.set(&[ti, ei], 0.2 + 0.1 * ((ti + ei) % 3) as f32);
            }
        }
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        let g = aux_loss_grad(&probs, &r).unwrap();
        let eps = 1e-3;
        for i in 0..probs.len() {
            let mut pp = probs.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = probs.clone();
            pm.as_mut_slice()[i] -= eps;
            // Hold routing fixed (straight-through).
            let lp = aux_loss(&pp, &r).unwrap();
            let lm = aux_loss(&pm, &r).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g.as_slice()[i]).abs() < 1e-3,
                "i={i} fd={fd} got={}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let probs = Tensor::zeros(&[4, 3]);
        let r = route(&probs.softmax_last(), &RouteConfig::top1()).unwrap();
        let wrong = Tensor::zeros(&[4, 5]);
        assert!(aux_loss(&wrong, &r).is_err());
        assert!(aux_loss_grad(&wrong, &r).is_err());
    }
}
