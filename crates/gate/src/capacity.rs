//! Expert capacity (Equation 1) and the dynamic capacity-factor policy
//! of Figure 16.

use serde::{Deserialize, Serialize};

/// Expert capacity per Equation 1 of the paper:
/// `capacity = k · f · T / E`, rounded up, and at least 1.
///
/// # Example
///
/// ```
/// use tutel_gate::expert_capacity;
///
/// assert_eq!(expert_capacity(2, 1.0, 4096, 64), 128);
/// assert_eq!(expert_capacity(1, 1.25, 4096, 64), 80);
/// assert_eq!(expert_capacity(1, 0.001, 4096, 64), 1); // floor of 1
/// ```
pub fn expert_capacity(k: usize, f: f64, tokens: usize, experts: usize) -> usize {
    assert!(experts > 0, "capacity of zero experts");
    assert!(f > 0.0, "capacity factor must be positive");
    let cap = (k as f64 * f * tokens as f64 / experts as f64).ceil() as usize;
    cap.max(1)
}

/// The minimum capacity factor that would drop no token, given the
/// per-expert routed token counts *before* capacity clamping:
/// `f_min = max_e count[e] · E / (k · T)`.
///
/// This is the quantity plotted in Figure 1 — the "needed expert
/// capacity at runtime".
pub fn needed_capacity_factor(counts: &[usize], k: usize, tokens: usize) -> f64 {
    let experts = counts.len();
    if experts == 0 || tokens == 0 || k == 0 {
        return 0.0;
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    max as f64 * experts as f64 / (k as f64 * tokens as f64)
}

/// Dynamic capacity-factor policy, mirroring the paper's
/// `capacity_factor = x` API argument (Figure 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityPolicy {
    /// `x > 0`: the value is applied directly as the capacity factor.
    Fixed(f64),
    /// `x == 0`: adapt to the minimum factor that drops no token.
    AutoMin,
    /// `x < 0`: adapt like [`CapacityPolicy::AutoMin`] but never exceed
    /// `-x`.
    AutoCapped(f64),
}

impl CapacityPolicy {
    /// Parses the paper's single-argument convention.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn from_arg(x: f64) -> Self {
        assert!(!x.is_nan(), "capacity_factor must not be NaN");
        if x > 0.0 {
            CapacityPolicy::Fixed(x)
        } else if x == 0.0 {
            CapacityPolicy::AutoMin
        } else {
            CapacityPolicy::AutoCapped(-x)
        }
    }

    /// Resolves the capacity factor to use this iteration, given the
    /// routed (unclamped) per-expert counts.
    ///
    /// Always strictly positive: the variants are constructible
    /// directly (bypassing [`CapacityPolicy::from_arg`]), so a
    /// degenerate `Fixed(0.0)` or `AutoCapped(0.0)` is clamped to
    /// `f64::EPSILON` here rather than tripping [`expert_capacity`]'s
    /// positivity assert from deep inside `route`.
    pub fn resolve(&self, counts: &[usize], k: usize, tokens: usize) -> f64 {
        match *self {
            CapacityPolicy::Fixed(f) => f.max(f64::EPSILON),
            CapacityPolicy::AutoMin => needed_capacity_factor(counts, k, tokens).max(f64::EPSILON),
            CapacityPolicy::AutoCapped(bound) => needed_capacity_factor(counts, k, tokens)
                .min(bound)
                .max(f64::EPSILON),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_formula_matches_equation1() {
        // T = 16384, E = 64, k = 2, f = 1 → 512 (the Table 4 setting).
        assert_eq!(expert_capacity(2, 1.0, 16384, 64), 512);
        // Rounds up.
        assert_eq!(expert_capacity(1, 1.0, 10, 3), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn capacity_rejects_zero_factor() {
        expert_capacity(1, 0.0, 16, 4);
    }

    #[test]
    fn needed_factor_is_one_for_perfect_balance() {
        // 4 experts, 16 tokens, k=1, perfectly balanced: 4 each.
        let f = needed_capacity_factor(&[4, 4, 4, 4], 1, 16);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needed_factor_tracks_imbalance() {
        // One expert got half of all 16 tokens: f = 8·4/16 = 2.
        let f = needed_capacity_factor(&[8, 4, 2, 2], 1, 16);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn needed_factor_degenerate_inputs() {
        assert_eq!(needed_capacity_factor(&[], 1, 16), 0.0);
        assert_eq!(needed_capacity_factor(&[1, 2], 1, 0), 0.0);
        assert_eq!(needed_capacity_factor(&[1, 2], 0, 16), 0.0);
    }

    #[test]
    fn policy_parsing_follows_figure16() {
        assert_eq!(CapacityPolicy::from_arg(4.0), CapacityPolicy::Fixed(4.0));
        assert_eq!(CapacityPolicy::from_arg(0.0), CapacityPolicy::AutoMin);
        assert_eq!(
            CapacityPolicy::from_arg(-4.0),
            CapacityPolicy::AutoCapped(4.0)
        );
    }

    #[test]
    fn policy_resolution() {
        let counts = [8, 4, 2, 2]; // f_min = 2 for k=1, T=16
        assert_eq!(CapacityPolicy::Fixed(4.0).resolve(&counts, 1, 16), 4.0);
        assert!((CapacityPolicy::AutoMin.resolve(&counts, 1, 16) - 2.0).abs() < 1e-12);
        // Cap binds below the needed factor.
        assert!((CapacityPolicy::AutoCapped(1.5).resolve(&counts, 1, 16) - 1.5).abs() < 1e-12);
        // Cap does not bind above it.
        assert!((CapacityPolicy::AutoCapped(4.0).resolve(&counts, 1, 16) - 2.0).abs() < 1e-12);
    }
}
