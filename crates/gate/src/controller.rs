//! The dynamic capacity-factor controller.
//!
//! Section 2.1 of the paper: "f is dynamically adjusted during
//! training ... it is increased/decreased when the token distribution
//! is uneven/even". This module provides that control loop: it watches
//! the per-iteration *needed* capacity factor (the Figure 1 telemetry)
//! and emits a smoothed, hysteresis-damped capacity factor to use next
//! iteration — large enough to drop few tokens, small enough not to
//! waste compute on padding.

use serde::{Deserialize, Serialize};

/// Exponential-moving-average capacity controller with hysteresis.
///
/// Each iteration, feed it the routing's `needed_factor`; it tracks an
/// EMA with headroom and only moves the emitted factor when the target
/// drifts outside a dead band — avoiding the per-iteration capacity
/// churn that would defeat Algorithm 2's bucketing (every new `f`
/// triggers a bucket lookup; a noisy `f` stream would thrash).
///
/// # Example
///
/// ```
/// use tutel_gate::CapacityController;
///
/// let mut ctl = CapacityController::new(1.0);
/// // A burst of imbalance pushes the factor up...
/// for _ in 0..50 {
///     ctl.observe(3.0);
/// }
/// assert!(ctl.factor() > 2.0);
/// // ...and sustained balance brings it back down.
/// for _ in 0..200 {
///     ctl.observe(1.0);
/// }
/// assert!(ctl.factor() < 1.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityController {
    ema: f64,
    emitted: f64,
    /// EMA smoothing coefficient (weight of the new observation).
    pub alpha: f64,
    /// Multiplicative headroom over the EMA of needed factors.
    pub headroom: f64,
    /// Relative dead band: the emitted factor only moves when the
    /// target leaves `emitted · (1 ± deadband)`.
    pub deadband: f64,
    /// Hard bounds on the emitted factor.
    pub min_factor: f64,
    /// Upper bound on the emitted factor.
    pub max_factor: f64,
}

impl CapacityController {
    /// Creates a controller starting at `initial` (also the minimum).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not positive.
    pub fn new(initial: f64) -> Self {
        assert!(initial > 0.0, "initial capacity factor must be positive");
        CapacityController {
            ema: initial,
            emitted: initial,
            alpha: 0.1,
            headroom: 1.1,
            deadband: 0.15,
            min_factor: initial.min(1.0),
            max_factor: 16.0,
        }
    }

    /// The capacity factor to use next iteration.
    pub fn factor(&self) -> f64 {
        self.emitted
    }

    /// The smoothed estimate of the needed factor.
    pub fn ema(&self) -> f64 {
        self.ema
    }

    /// Feeds one iteration's needed factor; returns the (possibly
    /// updated) factor to use next.
    pub fn observe(&mut self, needed_factor: f64) -> f64 {
        let needed = needed_factor.max(0.0);
        self.ema += self.alpha * (needed - self.ema);
        let target = (self.ema * self.headroom).clamp(self.min_factor, self.max_factor);
        let lo = self.emitted * (1.0 - self.deadband);
        let hi = self.emitted * (1.0 + self.deadband);
        if target < lo || target > hi {
            self.emitted = target;
        }
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_sustained_imbalance_up_and_down() {
        let mut ctl = CapacityController::new(1.0);
        for _ in 0..100 {
            ctl.observe(4.0);
        }
        assert!(
            ctl.factor() > 3.5,
            "must rise toward 4·headroom, got {}",
            ctl.factor()
        );
        for _ in 0..300 {
            ctl.observe(1.0);
        }
        assert!(ctl.factor() < 1.3, "must fall back, got {}", ctl.factor());
        assert!(ctl.factor() >= ctl.min_factor);
    }

    #[test]
    fn deadband_suppresses_jitter() {
        let mut ctl = CapacityController::new(2.0);
        // Warm the EMA to the operating point.
        for _ in 0..200 {
            ctl.observe(2.0);
        }
        let settled = ctl.factor();
        let mut changes = 0;
        // ±5 % noise stays inside the 15 % dead band.
        for i in 0..100 {
            let noisy = 2.0 * (1.0 + if i % 2 == 0 { 0.05 } else { -0.05 });
            let before = ctl.factor();
            ctl.observe(noisy);
            if (ctl.factor() - before).abs() > 1e-12 {
                changes += 1;
            }
        }
        assert_eq!(
            changes, 0,
            "noise within the dead band must not move the factor"
        );
        assert!((ctl.factor() - settled).abs() < 1e-9);
    }

    #[test]
    fn respects_bounds() {
        let mut ctl = CapacityController::new(1.0);
        for _ in 0..500 {
            ctl.observe(1000.0);
        }
        assert!(ctl.factor() <= ctl.max_factor);
        for _ in 0..500 {
            ctl.observe(0.0);
        }
        assert!(ctl.factor() >= ctl.min_factor);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_initial() {
        CapacityController::new(0.0);
    }

    #[test]
    fn emitted_factor_changes_are_infrequent_under_figure1_like_trace() {
        // A wandering needed-factor trace: the controller must emit far
        // fewer distinct factors than it observes (good for Algorithm
        // 2's bucket reuse).
        let mut ctl = CapacityController::new(1.0);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..1000usize {
            let needed = 1.5 + (i as f64 / 80.0).sin() * 0.8 + ((i * 7919) % 13) as f64 * 0.02;
            ctl.observe(needed);
            distinct.insert((ctl.factor() * 1e6) as u64);
        }
        assert!(
            distinct.len() < 40,
            "{} distinct emitted factors",
            distinct.len()
        );
    }
}
