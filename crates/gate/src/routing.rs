//! Top-k / top-ANY routing with expert capacity and batch prioritized
//! routing (BPR).

use serde::{Deserialize, Serialize};
use tutel_tensor::{Tensor, TensorError};

use crate::{expert_capacity, needed_capacity_factor, CapacityPolicy};

/// Configuration of one routing invocation.
///
/// Every field may change between iterations — this is the paper's
/// "Dynamic Top-ANY MoE Gating" (`k` is arbitrary and per-iteration)
/// and "Dynamic Capacity Factor" (Figure 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Experts per token (`1 ≤ k ≤ E`), changeable at every iteration.
    pub k: usize,
    /// Capacity factor policy (Equation 1 / Figure 16).
    pub capacity: CapacityPolicy,
    /// Batch prioritized routing: assign capacity slots in order of
    /// gate confidence rather than token order (Figure 25).
    pub bpr: bool,
    /// Normalize the selected top-k gate values to sum to 1 (GShard
    /// convention for k > 1).
    pub normalize_gates: bool,
}

impl RouteConfig {
    /// The paper's SwinV2-MoE default: top-1, `f = 1.0`, no BPR.
    pub fn top1() -> Self {
        RouteConfig {
            k: 1,
            capacity: CapacityPolicy::Fixed(1.0),
            bpr: false,
            normalize_gates: true,
        }
    }

    /// GShard-style top-2 with `f = 1.0`.
    pub fn top2() -> Self {
        RouteConfig {
            k: 2,
            ..RouteConfig::top1()
        }
    }

    /// Replaces the capacity factor.
    pub fn with_capacity_factor(mut self, x: f64) -> Self {
        self.capacity = CapacityPolicy::from_arg(x);
        self
    }

    /// Enables or disables BPR.
    pub fn with_bpr(mut self, bpr: bool) -> Self {
        self.bpr = bpr;
        self
    }
}

/// The outcome of routing `T` tokens to `E` experts: everything encode,
/// combine, and the framework's telemetry need.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Number of global experts.
    pub experts: usize,
    /// Capacity per expert (`ΔC` before world-splitting).
    pub capacity: usize,
    /// The capacity factor actually used this iteration.
    pub capacity_factor: f64,
    /// The minimum factor that would have dropped no token — the
    /// Figure 1 telemetry signal.
    pub needed_factor: f64,
    /// For each token, its selected experts (up to `k`).
    pub expert_of: Vec<Vec<usize>>,
    /// For each token, the gate weight per selected expert (post
    /// normalization); dropped assignments keep their weight but have
    /// no location.
    pub gate_of: Vec<Vec<f32>>,
    /// For each token, the capacity slot per selected expert, `None` if
    /// the token overflowed the expert's capacity and was dropped.
    pub location_of: Vec<Vec<Option<usize>>>,
    /// Tokens routed to each expert after capacity clamping.
    pub counts: Vec<usize>,
    /// Tokens routed to each expert before capacity clamping.
    pub raw_counts: Vec<usize>,
}

impl Routing {
    /// Number of tokens routed.
    pub fn num_tokens(&self) -> usize {
        self.expert_of.len()
    }

    /// Total (token, expert) assignments that were dropped by the
    /// capacity clamp.
    pub fn dropped(&self) -> usize {
        self.location_of
            .iter()
            .flatten()
            .filter(|l| l.is_none())
            .count()
    }

    /// Fraction of assignments that survived the capacity clamp.
    pub fn survival_rate(&self) -> f64 {
        let total: usize = self.location_of.iter().map(|l| l.len()).sum();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.dropped() as f64 / total as f64
    }
}

/// CSR-style ragged view of a [`Routing`]: per-expert bins packed
/// back-to-back with **no capacity dimension** — the dropless dispatch
/// layout.
///
/// `offsets` is the prefix sum of the clamped per-expert counts
/// (`len == experts + 1`, `offsets[experts] == total routed
/// assignments`); expert `e`'s bin is packed rows
/// `offsets[e]..offsets[e + 1]`. The slot-major permutation arrays
/// name the owner of every packed row: `slot_token[s]` is the source
/// token and `slot_select[s]` which of its top-k selections landed
/// there. Within a bin, rows keep the padded layout's capacity-slot
/// order (`packed slot = offsets[e] + location`), so a row holds
/// *identical bytes* in both layouts and grouped compute is bitwise
/// comparable to the padded twin row by row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaggedRouting {
    /// Number of global experts (`offsets.len() - 1`).
    pub experts: usize,
    /// Per-expert bin boundaries: monotone prefix sum of the clamped
    /// counts.
    pub offsets: Vec<usize>,
    /// Source token per packed slot.
    pub slot_token: Vec<u32>,
    /// Top-k selection index per packed slot.
    pub slot_select: Vec<u32>,
}

impl RaggedRouting {
    /// Builds the ragged view of `routing`. Dropped assignments (only
    /// possible under a clamping policy — the dropless path never has
    /// any) simply own no packed slot.
    pub fn from_routing(routing: &Routing) -> Self {
        let experts = routing.experts;
        let mut offsets = Vec::with_capacity(experts + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &routing.counts {
            acc += c;
            offsets.push(acc);
        }
        let mut slot_token = vec![0u32; acc];
        let mut slot_select = vec![0u32; acc];
        for (t, (experts_of, locs)) in routing
            .expert_of
            .iter()
            .zip(&routing.location_of)
            .enumerate()
        {
            for (i, (&e, loc)) in experts_of.iter().zip(locs).enumerate() {
                if let Some(l) = loc {
                    let s = offsets[e] + l;
                    slot_token[s] = t as u32;
                    slot_select[s] = i as u32;
                }
            }
        }
        RaggedRouting {
            experts,
            offsets,
            slot_token,
            slot_select,
        }
    }

    /// Total packed rows (routed assignments after clamping).
    pub fn total(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Rows in expert `e`'s bin.
    pub fn bin_len(&self, e: usize) -> usize {
        self.offsets[e + 1] - self.offsets[e]
    }
}

/// Routes tokens given gating probabilities `probs` of shape `(T, E)`.
///
/// Implements GShard-compatible top-k routing: per-token top-k expert
/// selection, optional gate normalization, capacity-slot assignment in
/// token order (or confidence order under BPR), and the dynamic
/// capacity policy of Figure 16.
///
/// # Errors
///
/// Returns a [`TensorError`] if `probs` is not a rank-2 tensor or `k`
/// exceeds the number of experts.
///
/// # Example
///
/// ```
/// use tutel_gate::{route, RouteConfig};
/// use tutel_tensor::Tensor;
///
/// // 4 tokens, 2 experts; all tokens prefer expert 0.
/// let probs = Tensor::from_vec(vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4], &[4, 2])?;
/// let routing = route(&probs, &RouteConfig::top1())?;
/// // f = 1, k = 1 → capacity 2: two tokens overflow expert 0.
/// assert_eq!(routing.capacity, 2);
/// assert_eq!(routing.dropped(), 2);
/// # Ok::<(), tutel_tensor::TensorError>(())
/// ```
pub fn route(probs: &Tensor, cfg: &RouteConfig) -> Result<Routing, TensorError> {
    if probs.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: probs.rank(),
            op: "route",
        });
    }
    let (tokens, experts) = (probs.dims()[0], probs.dims()[1]);
    if cfg.k == 0 || cfg.k > experts {
        return Err(TensorError::InvalidArgument(format!(
            "top-k with k={} over {experts} experts",
            cfg.k
        )));
    }

    let (idxs, vals) = probs.topk_last(cfg.k)?;

    // Gate weights, optionally normalized over the selected k.
    let gate_of: Vec<Vec<f32>> = vals
        .iter()
        .map(|v| {
            if cfg.normalize_gates && cfg.k > 1 {
                let s: f32 = v.iter().sum::<f32>().max(1e-9);
                v.iter().map(|g| g / s).collect()
            } else {
                v.clone()
            }
        })
        .collect();

    // Raw (unclamped) per-expert demand, for the dynamic policy and the
    // Figure 1 telemetry.
    let mut raw_counts = vec![0usize; experts];
    for tk in &idxs {
        for &e in tk {
            raw_counts[e] += 1;
        }
    }
    let needed = needed_capacity_factor(&raw_counts, cfg.k, tokens);
    let factor = cfg.capacity.resolve(&raw_counts, cfg.k, tokens);
    let capacity = expert_capacity(cfg.k, factor, tokens, experts);

    // Capacity-slot assignment order: token order, or confidence order
    // under BPR (descending top-1 gate probability).
    let mut order: Vec<usize> = (0..tokens).collect();
    if cfg.bpr {
        order.sort_by(|&a, &b| {
            let ga = vals[a].first().copied().unwrap_or(0.0);
            let gb = vals[b].first().copied().unwrap_or(0.0);
            gb.partial_cmp(&ga)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
    }

    let mut counts = vec![0usize; experts];
    let mut location_of = vec![Vec::new(); tokens];
    for &t in &order {
        let mut locs = Vec::with_capacity(cfg.k);
        for &e in &idxs[t] {
            if counts[e] < capacity {
                locs.push(Some(counts[e]));
                counts[e] += 1;
            } else {
                locs.push(None);
            }
        }
        location_of[t] = locs;
    }

    Ok(Routing {
        experts,
        capacity,
        capacity_factor: factor,
        needed_factor: needed,
        expert_of: idxs,
        gate_of,
        location_of,
        counts,
        raw_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_tensor::Rng;

    fn probs_preferring_expert0(tokens: usize, experts: usize) -> Tensor {
        let mut t = Tensor::zeros(&[tokens, experts]);
        for ti in 0..tokens {
            for e in 0..experts {
                let v = if e == 0 {
                    0.5 + 0.4 / (ti + 1) as f32
                } else {
                    0.5 / experts as f32
                };
                t.set(&[ti, e], v);
            }
        }
        t
    }

    #[test]
    fn capacity_clamp_drops_overflow_in_token_order() {
        let probs = probs_preferring_expert0(8, 4);
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        // k=1, f=1, T=8, E=4 → capacity 2; expert 0 keeps tokens 0, 1.
        assert_eq!(r.capacity, 2);
        assert_eq!(r.location_of[0][0], Some(0));
        assert_eq!(r.location_of[1][0], Some(1));
        assert_eq!(r.location_of[2][0], None);
        assert_eq!(r.counts[0], 2);
        assert_eq!(r.raw_counts[0], 8);
    }

    #[test]
    fn bpr_prioritizes_confident_tokens() {
        // Token 7 has the *lowest* confidence for expert 0 under the
        // fixture (0.5 + 0.4/8); token 0 the highest. Flip the fixture
        // so late tokens are more confident, then BPR must keep them.
        let mut probs = Tensor::zeros(&[8, 4]);
        for ti in 0..8 {
            probs.set(&[ti, 0], 0.5 + 0.05 * ti as f32);
            for e in 1..4 {
                probs.set(&[ti, e], 0.01);
            }
        }
        let no_bpr = route(&probs, &RouteConfig::top1()).unwrap();
        // Token order: tokens 0 and 1 survive.
        assert_eq!(no_bpr.location_of[0][0], Some(0));
        assert!(no_bpr.location_of[7][0].is_none());
        let bpr = route(&probs, &RouteConfig::top1().with_bpr(true)).unwrap();
        // Confidence order: tokens 7 and 6 survive.
        assert!(bpr.location_of[7][0].is_some());
        assert!(bpr.location_of[6][0].is_some());
        assert!(bpr.location_of[0][0].is_none());
    }

    #[test]
    fn top2_gates_normalize() {
        let mut rng = Rng::seed(1);
        let probs = rng.uniform_tensor(&[16, 8], 0.0, 1.0).softmax_last();
        let r = route(&probs, &RouteConfig::top2()).unwrap();
        for g in &r.gate_of {
            assert_eq!(g.len(), 2);
            assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn top_any_supports_large_k() {
        let mut rng = Rng::seed(2);
        let probs = rng.uniform_tensor(&[8, 8], 0.0, 1.0).softmax_last();
        for k in [1, 3, 5, 8] {
            let cfg = RouteConfig {
                k,
                ..RouteConfig::top1()
            };
            let r = route(&probs, &cfg).unwrap();
            assert!(r.expert_of.iter().all(|e| e.len() == k));
        }
        let cfg = RouteConfig {
            k: 9,
            ..RouteConfig::top1()
        };
        assert!(route(&probs, &cfg).is_err());
    }

    #[test]
    fn auto_min_capacity_drops_nothing() {
        let probs = probs_preferring_expert0(8, 4);
        let cfg = RouteConfig::top1().with_capacity_factor(0.0);
        let r = route(&probs, &cfg).unwrap();
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity, 8); // all 8 tokens fit in expert 0
        assert!((r.capacity_factor - 4.0).abs() < 1e-9); // 8·4/(1·8)
    }

    #[test]
    fn auto_capped_capacity_respects_bound() {
        let probs = probs_preferring_expert0(8, 4);
        let cfg = RouteConfig::top1().with_capacity_factor(-2.0);
        let r = route(&probs, &cfg).unwrap();
        assert!((r.capacity_factor - 2.0).abs() < 1e-9);
        assert_eq!(r.capacity, 4);
        assert_eq!(r.dropped(), 4);
    }

    #[test]
    fn needed_factor_reported_for_telemetry() {
        let probs = probs_preferring_expert0(8, 4);
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        assert!((r.needed_factor - 4.0).abs() < 1e-9);
        assert!((r.survival_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ragged_view_packs_bins_in_capacity_slot_order() {
        let probs = probs_preferring_expert0(8, 4);
        let cfg = RouteConfig::top1().with_capacity_factor(0.0);
        let r = route(&probs, &cfg).unwrap();
        let ragged = RaggedRouting::from_routing(&r);
        assert_eq!(ragged.offsets, vec![0, 8, 8, 8, 8]);
        assert_eq!(ragged.total(), 8);
        assert_eq!(ragged.bin_len(0), 8);
        // Token order == capacity-slot order under top-1 without BPR.
        assert_eq!(ragged.slot_token, (0..8u32).collect::<Vec<_>>());
        assert!(ragged.slot_select.iter().all(|&s| s == 0));
    }

    #[test]
    fn ragged_view_skips_dropped_assignments() {
        let probs = probs_preferring_expert0(8, 4);
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        let ragged = RaggedRouting::from_routing(&r);
        assert_eq!(ragged.total(), r.counts.iter().sum::<usize>());
        assert_eq!(ragged.total(), 8 - r.dropped());
        assert_eq!(ragged.offsets.len(), r.experts + 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The ragged offsets are a monotone prefix sum ending at
            /// the total routed-token count, and every packed slot is
            /// owned by exactly one surviving (token, selection) pair
            /// whose padded location maps back to the same slot.
            #[test]
            fn offsets_are_a_monotone_prefix_sum(
                tokens in 1usize..40,
                experts in 1usize..12,
                k in 1usize..4,
                factor in (0usize..3).prop_map(|i| [0.0, 1.0, 2.0][i]),
                seed in 0u64..1024,
            ) {
                let k = k.min(experts);
                let mut rng = Rng::seed(seed);
                let probs = rng.uniform_tensor(&[tokens, experts], 0.0, 1.0).softmax_last();
                let cfg = RouteConfig {
                    k,
                    ..RouteConfig::top1().with_capacity_factor(factor)
                };
                let r = route(&probs, &cfg).unwrap();
                let ragged = RaggedRouting::from_routing(&r);

                prop_assert_eq!(ragged.offsets.len(), experts + 1);
                prop_assert_eq!(ragged.offsets[0], 0);
                for e in 0..experts {
                    prop_assert!(ragged.offsets[e] <= ragged.offsets[e + 1]);
                    prop_assert_eq!(ragged.bin_len(e), r.counts[e]);
                }
                let routed: usize = r.counts.iter().sum();
                prop_assert_eq!(ragged.total(), routed);
                prop_assert_eq!(ragged.total(), tokens * k - r.dropped());

                // The permutation is a bijection onto surviving
                // assignments, consistent with the padded layout.
                let mut seen = vec![false; ragged.total()];
                for (t, locs) in r.location_of.iter().enumerate() {
                    for (i, loc) in locs.iter().enumerate() {
                        if let Some(l) = loc {
                            let e = r.expert_of[t][i];
                            let s = ragged.offsets[e] + l;
                            prop_assert!(!seen[s]);
                            seen[s] = true;
                            prop_assert_eq!(ragged.slot_token[s] as usize, t);
                            prop_assert_eq!(ragged.slot_select[s] as usize, i);
                        }
                    }
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn balanced_routing_has_no_drops_at_f1() {
        // Diagonal-preference probabilities: token t prefers expert t%E.
        let (tokens, experts) = (16, 4);
        let mut probs = Tensor::zeros(&[tokens, experts]);
        for t in 0..tokens {
            probs.set(&[t, t % experts], 1.0);
        }
        let r = route(&probs, &RouteConfig::top1()).unwrap();
        assert_eq!(r.dropped(), 0);
        assert!((r.needed_factor - 1.0).abs() < 1e-9);
    }
}
