//! Telemetry reporting for the gate: per-expert load, drops, and
//! capacity, pushed into a shared [`Telemetry`] handle.

use tutel_obs::{Histogram, Telemetry};

use crate::routing::Routing;

/// Reports one routing decision's statistics:
///
/// * histogram `gate.expert_load` — post-capacity token count of every
///   expert (one observation per expert per iteration);
/// * counter `gate.routed_tokens` / `gate.dropped_tokens` — tokens
///   seen and tokens lost to the capacity clamp;
/// * gauges `gate.capacity_factor`, `gate.needed_factor`,
///   `gate.survival_rate` — the Figure 1 signals driving the adaptive
///   layer;
/// * gauges `dispatch.padded_slots` / `dispatch.routed_tokens` — the
///   padded `(E, C)` buffer's slot count vs the assignments that
///   actually landed. Their gap is the zero-fill the padded twin
///   burns FLOPs on and the ragged path never materializes; the
///   analyzer turns the ratio into a wasted-FLOP fraction.
///
/// No-op (one branch) when `tel` is disabled.
pub fn observe_routing(routing: &Routing, tel: &Telemetry) {
    if !tel.is_enabled() {
        return;
    }
    for &count in &routing.counts {
        tel.record_hist_with("gate.expert_load", count as f64, Histogram::magnitude);
    }
    tel.add_counter("gate.routed_tokens", routing.num_tokens() as u64);
    tel.add_counter("gate.dropped_tokens", routing.dropped() as u64);
    tel.set_gauge("gate.capacity_factor", routing.capacity_factor);
    tel.set_gauge("gate.needed_factor", routing.needed_factor);
    tel.set_gauge("gate.survival_rate", routing.survival_rate());
    let routed: usize = routing.counts.iter().sum();
    tel.set_gauge(
        "dispatch.padded_slots",
        (routing.experts * routing.capacity) as f64,
    );
    tel.set_gauge("dispatch.routed_tokens", routed as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{route, RouteConfig};
    use tutel_tensor::Tensor;

    #[test]
    fn routing_statistics_land_in_telemetry() {
        let probs = Tensor::from_vec(
            vec![
                0.7, 0.1, 0.2, //
                0.2, 0.7, 0.1, //
                0.6, 0.3, 0.1, //
                0.1, 0.2, 0.7,
            ],
            &[4, 3],
        )
        .unwrap()
        .softmax_last();
        let routing = route(&probs, &RouteConfig::top1().with_capacity_factor(4.0)).unwrap();
        let tel = Telemetry::enabled();
        observe_routing(&routing, &tel);
        assert_eq!(tel.counter_value("gate.routed_tokens"), Some(4));
        assert_eq!(
            tel.counter_value("gate.dropped_tokens"),
            Some(routing.dropped() as u64)
        );
        assert_eq!(
            tel.gauge_value("gate.capacity_factor"),
            Some(routing.capacity_factor)
        );
        let hist = tel
            .histogram("gate.expert_load")
            .expect("histogram registered");
        assert_eq!(hist.total_count(), routing.counts.len() as u64);
        assert_eq!(
            tel.gauge_value("dispatch.padded_slots"),
            Some((routing.experts * routing.capacity) as f64)
        );
        assert_eq!(
            tel.gauge_value("dispatch.routed_tokens"),
            Some(routing.counts.iter().sum::<usize>() as f64)
        );
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9], &[2, 2])
            .unwrap()
            .softmax_last();
        let routing = route(&probs, &RouteConfig::top1()).unwrap();
        let tel = Telemetry::disabled();
        observe_routing(&routing, &tel);
        assert_eq!(tel.counter_value("gate.routed_tokens"), None);
    }
}
