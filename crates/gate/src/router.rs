//! Routers: the trainable functions producing token→expert logits.

use tutel_tensor::{gemm_tn, Rng, Tensor, TensorError};

/// A gating router: maps token features `(T, C)` to expert logits
/// `(T, E)`.
///
/// Implemented by [`LinearRouter`] (GShard standard), [`CosineRouter`]
/// (Section 5.3.4) and [`HashRouter`] (parameter-free baseline).
pub trait Router {
    /// Number of global experts this router scores.
    fn num_experts(&self) -> usize;

    /// Computes logits `(T, E)` for token features `x` of shape
    /// `(T, C)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `x` has the wrong shape.
    fn logits(&self, x: &Tensor) -> Result<Tensor, TensorError>;

    /// Backward pass: given `x` and `d_logits`, accumulates parameter
    /// gradients internally and returns `d_x`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] on shape mismatch.
    fn backward(&mut self, x: &Tensor, d_logits: &Tensor) -> Result<Tensor, TensorError>;

    /// Applies accumulated gradients with learning rate `lr` and clears
    /// them.
    fn step(&mut self, lr: f32);
}

/// The standard linear router: `logits = x · W`, `W ∈ R^{C×E}`.
#[derive(Debug, Clone)]
pub struct LinearRouter {
    w: Tensor,
    dw: Tensor,
}

impl LinearRouter {
    /// Creates a router for `channels`-dim tokens over `experts`
    /// experts, with small random initialization.
    pub fn new(channels: usize, experts: usize, rng: &mut Rng) -> Self {
        let w = rng.normal_tensor(&[channels, experts], 0.0, 0.02);
        let dw = Tensor::zeros(&[channels, experts]);
        LinearRouter { w, dw }
    }

    /// The weight matrix (for tests / checkpointing).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// Replaces the weight matrix (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the shape differs.
    pub fn set_weights(&mut self, w: Tensor) -> Result<(), TensorError> {
        if w.dims() != self.w.dims() {
            return Err(TensorError::shape_mismatch(
                "set_weights",
                w.dims(),
                self.w.dims(),
            ));
        }
        self.w = w;
        Ok(())
    }
}

impl Router for LinearRouter {
    fn num_experts(&self) -> usize {
        self.w.dims()[1]
    }

    fn logits(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        x.matmul(&self.w)
    }

    // check:hot
    fn backward(&mut self, x: &Tensor, d_logits: &Tensor) -> Result<Tensor, TensorError> {
        let (c, e) = (self.w.dims()[0], self.w.dims()[1]);
        if x.rank() != 2
            || d_logits.rank() != 2
            || x.dims()[0] != d_logits.dims()[0]
            || x.dims()[1] != c
            || d_logits.dims()[1] != e
        {
            return Err(TensorError::shape_mismatch(
                "linear_router_backward",
                x.dims(),
                d_logits.dims(),
            ));
        }
        // dW += xᵀ · d_logits, straight into the gradient buffer.
        gemm_tn(
            x.as_slice(),
            d_logits.as_slice(),
            self.dw.as_mut_slice(),
            c,
            x.dims()[0],
            e,
        );
        d_logits.matmul_nt(&self.w)
    }

    fn step(&mut self, lr: f32) {
        self.dw.clip_norm(1.0);
        self.w
            .axpy(-lr, &self.dw)
            // check:allow(no_panic, dw is allocated with w's dims at construction)
            .expect("gradient shape matches weights");
        self.dw.as_mut_slice().fill(0.0);
    }
}

/// The cosine router of Equation 2:
/// `P = softmax( (Wx · M) / (‖Wx‖ ‖M‖ τ) )` — this type produces the
/// pre-softmax logits `cos(Wx, m_e) / τ`.
///
/// `W ∈ R^{C×D}` projects tokens to dimension `D` (256 by default in
/// the paper); `M ∈ R^{E×D}` holds one embedding per expert; the
/// learnable temperature `τ` is clamped to at least 0.01.
#[derive(Debug, Clone)]
pub struct CosineRouter {
    w: Tensor,
    m: Tensor,
    tau: f32,
    dw: Tensor,
    dm: Tensor,
    dtau: f32,
}

impl CosineRouter {
    /// Minimum temperature, per the paper ("set lowest 0.01").
    pub const MIN_TAU: f32 = 0.01;

    /// Creates a cosine router projecting `channels` → `proj_dim` over
    /// `experts` experts, with `τ = 0.07` initial temperature.
    pub fn new(channels: usize, proj_dim: usize, experts: usize, rng: &mut Rng) -> Self {
        CosineRouter {
            w: rng.normal_tensor(&[channels, proj_dim], 0.0, 0.02),
            m: rng.normal_tensor(&[experts, proj_dim], 0.0, 0.02),
            tau: 0.07,
            dw: Tensor::zeros(&[channels, proj_dim]),
            dm: Tensor::zeros(&[experts, proj_dim]),
            dtau: 0.0,
        }
    }

    /// Current temperature.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// The projection and expert-embedding matrices (checkpointing).
    pub fn weights(&self) -> (&Tensor, &Tensor) {
        (&self.w, &self.m)
    }

    /// Restores the router's parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if any shape differs.
    pub fn set_weights(&mut self, w: Tensor, m: Tensor, tau: f32) -> Result<(), TensorError> {
        if w.dims() != self.w.dims() || m.dims() != self.m.dims() {
            return Err(TensorError::shape_mismatch(
                "set_weights",
                w.dims(),
                self.w.dims(),
            ));
        }
        self.w = w;
        self.m = m;
        self.tau = tau.max(Self::MIN_TAU);
        Ok(())
    }
}

impl Router for CosineRouter {
    fn num_experts(&self) -> usize {
        self.m.dims()[0]
    }

    fn logits(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let y = x.matmul(&self.w)?; // (T, D)
        let (t, d) = (y.dims()[0], y.dims()[1]);
        let e = self.m.dims()[0];
        let mut out = Tensor::zeros(&[t, e]);
        for ti in 0..t {
            let yv = &y.as_slice()[ti * d..(ti + 1) * d];
            let ynorm = yv.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
            for ei in 0..e {
                let mv = &self.m.as_slice()[ei * d..(ei + 1) * d];
                let mnorm = mv.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
                let dot: f32 = yv.iter().zip(mv).map(|(a, b)| a * b).sum();
                out.set(&[ti, ei], dot / (ynorm * mnorm * self.tau));
            }
        }
        Ok(out)
    }

    fn backward(&mut self, x: &Tensor, d_logits: &Tensor) -> Result<Tensor, TensorError> {
        let y = x.matmul(&self.w)?;
        let (t, d) = (y.dims()[0], y.dims()[1]);
        let e = self.m.dims()[0];
        if d_logits.dims() != [t, e] {
            return Err(TensorError::shape_mismatch(
                "cosine_router_backward",
                d_logits.dims(),
                &[t, e],
            ));
        }
        let mut dy = Tensor::zeros(&[t, d]);
        for ti in 0..t {
            let yv = &y.as_slice()[ti * d..(ti + 1) * d];
            let ynorm = yv.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
            for ei in 0..e {
                let g = d_logits.at(&[ti, ei]);
                if g == 0.0 {
                    continue;
                }
                let mv = &self.m.as_slice()[ei * d..(ei + 1) * d];
                let mnorm = mv.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
                let dot: f32 = yv.iter().zip(mv).map(|(a, b)| a * b).sum();
                let cos = dot / (ynorm * mnorm);
                let scale = g / self.tau;
                // d cos / d y = m/(‖y‖‖m‖) − cos · y/‖y‖².
                for j in 0..d {
                    let dcos_dy = mv[j] / (ynorm * mnorm) - cos * yv[j] / (ynorm * ynorm);
                    dy.as_mut_slice()[ti * d + j] += scale * dcos_dy;
                    let dcos_dm = yv[j] / (ynorm * mnorm) - cos * mv[j] / (mnorm * mnorm);
                    self.dm.as_mut_slice()[ei * d + j] += scale * dcos_dm;
                }
                // d logit / d τ = −cos / τ².
                self.dtau += -g * cos / (self.tau * self.tau);
            }
        }
        self.dw.axpy(1.0, &x.matmul_tn(&dy)?)?;
        dy.matmul_nt(&self.w)
    }

    fn step(&mut self, lr: f32) {
        self.dw.clip_norm(1.0);
        self.dm.clip_norm(1.0);
        self.w
            .axpy(-lr, &self.dw)
            // check:allow(no_panic, dw is allocated with w's dims at construction)
            .expect("gradient shape matches weights");
        self.m
            .axpy(-lr, &self.dm)
            // check:allow(no_panic, dm is allocated with m's dims at construction)
            .expect("gradient shape matches embeddings");
        self.tau = (self.tau - lr * self.dtau).max(Self::MIN_TAU);
        self.dw.as_mut_slice().fill(0.0);
        self.dm.as_mut_slice().fill(0.0);
        self.dtau = 0.0;
    }
}

/// A parameter-free hash router: token `t` deterministically maps to
/// expert `hash(t) mod E` with full confidence. A non-learned baseline
/// in the spirit of Hash Layers.
#[derive(Debug, Clone)]
pub struct HashRouter {
    experts: usize,
}

impl HashRouter {
    /// Creates a hash router over `experts` experts.
    ///
    /// # Panics
    ///
    /// Panics if `experts == 0`.
    pub fn new(experts: usize) -> Self {
        assert!(experts > 0, "hash router needs at least one expert");
        HashRouter { experts }
    }
}

impl Router for HashRouter {
    fn num_experts(&self) -> usize {
        self.experts
    }

    fn logits(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let t = x.dims()[0];
        let mut out = Tensor::full(&[t, self.experts], -10.0);
        for ti in 0..t {
            // Hash the token's position (stable across feature noise).
            let h = (ti as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 33;
            out.set(&[ti, (h as usize) % self.experts], 10.0);
        }
        Ok(out)
    }

    fn backward(&mut self, x: &Tensor, d_logits: &Tensor) -> Result<Tensor, TensorError> {
        let _ = d_logits;
        Ok(Tensor::zeros(x.dims()))
    }

    fn step(&mut self, _lr: f32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_router_shapes() {
        let mut rng = Rng::seed(1);
        let r = LinearRouter::new(16, 4, &mut rng);
        let x = rng.normal_tensor(&[8, 16], 0.0, 1.0);
        let l = r.logits(&x).unwrap();
        assert_eq!(l.dims(), &[8, 4]);
        assert_eq!(r.num_experts(), 4);
    }

    #[test]
    fn linear_router_gradient_matches_finite_difference() {
        let mut rng = Rng::seed(2);
        let mut r = LinearRouter::new(3, 2, &mut rng);
        let x = rng.normal_tensor(&[4, 3], 0.0, 1.0);
        let up = rng.normal_tensor(&[4, 2], 0.0, 1.0);
        let dx = r.backward(&x, &up).unwrap();
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = r.logits(&xp).unwrap().mul(&up).unwrap().sum();
            let lm = r.logits(&xm).unwrap().mul(&up).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "i={i} fd={fd} got={}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn linear_router_step_descends() {
        let mut rng = Rng::seed(3);
        let mut r = LinearRouter::new(3, 2, &mut rng);
        let x = rng.normal_tensor(&[4, 3], 0.0, 1.0);
        let up = Tensor::ones(&[4, 2]);
        let before = r.logits(&x).unwrap().sum();
        r.backward(&x, &up).unwrap();
        r.step(0.1);
        let after = r.logits(&x).unwrap().sum();
        assert!(
            after < before,
            "loss ∑logits must decrease: {before} → {after}"
        );
    }

    #[test]
    fn cosine_logits_are_bounded_by_inverse_tau() {
        let mut rng = Rng::seed(4);
        let r = CosineRouter::new(8, 4, 6, &mut rng);
        let x = rng.normal_tensor(&[10, 8], 0.0, 1.0);
        let l = r.logits(&x).unwrap();
        let bound = 1.0 / r.tau() + 1e-3;
        assert!(l.max_abs() <= bound, "max {} bound {bound}", l.max_abs());
    }

    #[test]
    fn cosine_logits_are_scale_invariant_in_input_amplitude() {
        // The paper's motivation: normalization stabilizes routing when
        // the input amplitude scales.
        let mut rng = Rng::seed(5);
        let r = CosineRouter::new(8, 4, 6, &mut rng);
        let x = rng.normal_tensor(&[5, 8], 0.0, 1.0);
        let l1 = r.logits(&x).unwrap();
        let l2 = r.logits(&x.scale(100.0)).unwrap();
        let diff = l1.sub(&l2).unwrap().max_abs();
        assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn cosine_gradient_matches_finite_difference() {
        let mut rng = Rng::seed(6);
        let mut r = CosineRouter::new(4, 3, 2, &mut rng);
        let x = rng.normal_tensor(&[3, 4], 0.0, 1.0);
        let up = rng.normal_tensor(&[3, 2], 0.0, 1.0);
        let dx = r.backward(&x, &up).unwrap();
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = r.logits(&xp).unwrap().mul(&up).unwrap().sum();
            let lm = r.logits(&xm).unwrap().mul(&up).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 2e-2,
                "i={i} fd={fd} got={}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn cosine_tau_never_drops_below_minimum() {
        let mut rng = Rng::seed(7);
        let mut r = CosineRouter::new(4, 3, 2, &mut rng);
        let x = rng.normal_tensor(&[3, 4], 0.0, 1.0);
        let up = Tensor::ones(&[3, 2]);
        for _ in 0..50 {
            r.backward(&x, &up).unwrap();
            r.step(1.0);
        }
        assert!(r.tau() >= CosineRouter::MIN_TAU);
    }

    #[test]
    fn hash_router_is_deterministic_and_parameterless() {
        let mut r = HashRouter::new(4);
        let x = Tensor::zeros(&[6, 8]);
        let l1 = r.logits(&x).unwrap();
        let l2 = r.logits(&x).unwrap();
        assert_eq!(l1, l2);
        let dx = r.backward(&x, &Tensor::ones(&[6, 4])).unwrap();
        assert_eq!(dx.max_abs(), 0.0);
    }
}
