//! Property-based tests for routing invariants (Equation 1, Figure 16,
//! BPR).

use proptest::prelude::*;
use tutel_gate::{route, CapacityPolicy, RouteConfig};
use tutel_tensor::{Rng, Tensor};

fn random_probs(tokens: usize, experts: usize, seed: u64) -> Tensor {
    Rng::seed(seed)
        .uniform_tensor(&[tokens, experts], 0.0, 1.0)
        .softmax_last()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counts_never_exceed_capacity(
        tokens in 1usize..40,
        experts in 1usize..8,
        k_off in 0usize..8,
        f in 0.25f64..4.0,
        bpr in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + k_off % experts;
        let cfg = RouteConfig { k, capacity: CapacityPolicy::Fixed(f), bpr, normalize_gates: true };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        for (e, &c) in r.counts.iter().enumerate() {
            prop_assert!(c <= r.capacity, "expert {e}: {c} > {}", r.capacity);
        }
        // Equation 1: capacity = ceil(k·f·T/E), at least 1.
        let expect = ((k as f64 * f * tokens as f64 / experts as f64).ceil() as usize).max(1);
        prop_assert_eq!(r.capacity, expect);
    }

    #[test]
    fn locations_are_unique_slots_per_expert(
        tokens in 1usize..40,
        experts in 1usize..8,
        bpr in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = RouteConfig { bpr, ..RouteConfig::top1() };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (t, (es, ls)) in r.expert_of.iter().zip(&r.location_of).enumerate() {
            for (&e, l) in es.iter().zip(ls) {
                if let Some(slot) = l {
                    prop_assert!(*slot < r.capacity);
                    prop_assert!(seen.insert((e, *slot)), "token {t}: slot ({e},{slot}) reused");
                }
            }
        }
    }

    #[test]
    fn auto_min_never_drops(
        tokens in 1usize..40,
        experts in 1usize..8,
        k_off in 0usize..4,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_off % experts;
        let cfg = RouteConfig { k, capacity: CapacityPolicy::AutoMin, bpr: false, normalize_gates: true };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        prop_assert_eq!(r.dropped(), 0);
        prop_assert!((r.survival_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_capped_respects_bound(
        tokens in 4usize..40,
        experts in 2usize..8,
        bound in 0.5f64..2.0,
        seed in any::<u64>(),
    ) {
        let cfg = RouteConfig {
            k: 1,
            capacity: CapacityPolicy::AutoCapped(bound),
            bpr: false,
            normalize_gates: true,
        };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        prop_assert!(r.capacity_factor <= bound + 1e-12);
    }

    #[test]
    fn bpr_only_reorders_who_survives_not_how_many(
        tokens in 2usize..40,
        experts in 2usize..6,
        seed in any::<u64>(),
    ) {
        // With fixed capacity, BPR changes *which* assignments survive,
        // never the per-expert totals (slots are the binding resource).
        let probs = random_probs(tokens, experts, seed);
        let base = route(&probs, &RouteConfig::top1()).unwrap();
        let bpr = route(&probs, &RouteConfig::top1().with_bpr(true)).unwrap();
        prop_assert_eq!(&base.counts, &bpr.counts);
        prop_assert_eq!(base.dropped(), bpr.dropped());
    }

    #[test]
    fn bpr_survivor_confidence_dominates(
        tokens in 4usize..32,
        seed in any::<u64>(),
    ) {
        // Under BPR, every surviving top-1 assignment to expert e has
        // confidence ≥ every dropped assignment to e.
        let experts = 3;
        let probs = random_probs(tokens, experts, seed);
        let r = route(&probs, &RouteConfig::top1().with_bpr(true)).unwrap();
        for e in 0..experts {
            let mut survived = Vec::new();
            let mut dropped = Vec::new();
            for t in 0..tokens {
                if r.expert_of[t][0] == e {
                    let conf = probs.at(&[t, e]);
                    if r.location_of[t][0].is_some() {
                        survived.push(conf);
                    } else {
                        dropped.push(conf);
                    }
                }
            }
            if let (Some(min_s), Some(max_d)) = (
                survived.iter().copied().reduce(f32::min),
                dropped.iter().copied().reduce(f32::max),
            ) {
                prop_assert!(min_s >= max_d, "expert {e}: {min_s} < {max_d}");
            }
        }
    }

    #[test]
    fn zero_tokens_route_cleanly(
        experts in 1usize..8,
        k_off in 0usize..4,
        policy_sel in 0usize..4,
        seed in any::<u64>(),
    ) {
        // T = 0 must not divide-by-zero inside the auto policies or
        // produce a zero capacity: Equation 1 floors at 1.
        let k = 1 + k_off % experts;
        let capacity = match policy_sel {
            0 => CapacityPolicy::Fixed(1.0),
            1 => CapacityPolicy::AutoMin,
            2 => CapacityPolicy::AutoCapped(2.0),
            _ => CapacityPolicy::AutoCapped(0.0), // degenerate direct construction
        };
        let cfg = RouteConfig { k, capacity, bpr: false, normalize_gates: true };
        let r = route(&random_probs(0, experts, seed), &cfg).unwrap();
        prop_assert_eq!(r.num_tokens(), 0);
        prop_assert!(r.capacity >= 1, "capacity {} < 1", r.capacity);
        prop_assert_eq!(r.dropped(), 0);
        prop_assert!(r.counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn all_tokens_to_one_expert_is_clamped_or_kept(
        tokens in 1usize..40,
        experts in 2usize..8,
        auto in any::<bool>(),
    ) {
        // One-hot rows: every token demands expert 0. AutoMin must
        // grow capacity to hold all of them; Fixed(1.0) must clamp to
        // exactly ceil(T/E) survivors and drop the rest.
        let mut data = vec![0.0f32; tokens * experts];
        for t in 0..tokens {
            data[t * experts] = 1.0;
        }
        let probs = Tensor::from_vec(data, &[tokens, experts]).unwrap();
        let capacity = if auto { CapacityPolicy::AutoMin } else { CapacityPolicy::Fixed(1.0) };
        let cfg = RouteConfig { k: 1, capacity, bpr: false, normalize_gates: true };
        let r = route(&probs, &cfg).unwrap();
        prop_assert_eq!(r.raw_counts[0], tokens);
        if auto {
            prop_assert_eq!(r.counts[0], tokens);
            prop_assert_eq!(r.dropped(), 0);
        } else {
            let cap = (tokens as f64 / experts as f64).ceil() as usize;
            prop_assert_eq!(r.counts[0], cap.min(tokens));
            prop_assert_eq!(r.dropped(), tokens - cap.min(tokens));
        }
    }

    #[test]
    fn tiny_capacity_factor_rounds_to_one_slot(
        tokens in 1usize..40,
        experts in 1usize..8,
        f in 1e-9f64..1e-3,
        seed in any::<u64>(),
    ) {
        // Equation 1 rounding at the bottom edge: a vanishing factor
        // yields capacity exactly 1 (never 0), so routing still
        // admits one token per expert.
        let cfg = RouteConfig { k: 1, capacity: CapacityPolicy::Fixed(f), bpr: false, normalize_gates: true };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        prop_assert_eq!(r.capacity, 1);
        prop_assert!(r.counts.iter().all(|&c| c <= 1));
    }

    #[test]
    fn degenerate_policies_resolve_without_panicking(
        tokens in 0usize..20,
        experts in 1usize..6,
        seed in any::<u64>(),
    ) {
        // The enum fields are public, so Fixed(0.0) / AutoCapped(0.0)
        // are constructible without from_arg's sign convention; they
        // must resolve to a positive factor instead of tripping
        // expert_capacity's positivity assert mid-route.
        for capacity in [CapacityPolicy::Fixed(0.0), CapacityPolicy::AutoCapped(0.0)] {
            let cfg = RouteConfig { k: 1, capacity, bpr: false, normalize_gates: true };
            let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
            prop_assert!(r.capacity_factor > 0.0);
            prop_assert!(r.capacity >= 1);
        }
    }

    #[test]
    fn raw_counts_conserve_assignments(
        tokens in 1usize..40,
        experts in 1usize..8,
        k_off in 0usize..4,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_off % experts;
        let cfg = RouteConfig { k, ..RouteConfig::top1() };
        let r = route(&random_probs(tokens, experts, seed), &cfg).unwrap();
        let total: usize = r.raw_counts.iter().sum();
        prop_assert_eq!(total, tokens * k, "every (token, choice) appears exactly once");
        prop_assert!(r.counts.iter().zip(&r.raw_counts).all(|(c, rc)| c <= rc));
    }
}
