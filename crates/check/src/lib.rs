//! `tutel-check`: workspace correctness tooling for the Tutel
//! reproduction.
//!
//! Two halves:
//!
//! 1. A repo-specific **lint engine** — a hand-rolled Rust lexer plus
//!    rule framework that walks every `crates/*/src/**/*.rs`:
//!    - `no_panic` (L1): no `unwrap`/`expect`/`panic!`/
//!      `unimplemented!` in non-test code of the data-path crates;
//!    - `layout_doc` (L2): pub fns taking raw `&[f32]` buffers with
//!      dimension args must name the tensor layout in their docs;
//!    - `layering` (L3): the crate DAG points strictly downward;
//!    - `shim_hygiene` (L4): only documented shim APIs may be used;
//!    - `test_determinism` (L5): no wall-clock time or unseeded
//!      randomness in test trees or the conformance harness — every
//!      test failure must be replayable from an explicit seed. Test
//!      trees (`tests/` at the root and per crate) are walked with
//!      this rule alone, since the strict data-path contracts exempt
//!      test code by design.
//!
//!    Pre-existing violations are pinned by a committed baseline
//!    ([`Baseline`] / [`Ratchet`]): new ones fail, counts may only
//!    ratchet down. Per-site escapes use
//!    `// check:allow(rule, reason)`.
//!
//! 2. **Dynamic schedule-exploration checkers** on the shared
//!    [`explore`] framework (seeded choice points, canonical
//!    candidate ordering, FNV schedule signatures, replay-by-seed
//!    diagnostics):
//!    - [`sweep`] replays seeded adversarial schedules through
//!      `tutel-comm`'s `check-sched` runtime and diffs every
//!      collective against its sequential reference;
//!    - [`race`] is a vector-clock happens-before race and
//!      arena-aliasing checker over the `rt` runtime's event log,
//!      swept across steal-order and delivery-order perturbations of
//!      the combined overlap+pool+comm surface.
//!
//!    Every dynamic failure prints a replayable seed.

use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod diag;
pub mod explore;
pub mod lexer;
pub mod race;
pub mod rules;
pub mod source;
pub mod sweep;

pub use baseline::{Baseline, Ratchet};
pub use diag::{diagnostics_to_json, Diagnostic};
pub use explore::{finding_to_anomaly, finding_to_diagnostic};
pub use rules::layering::{check_layering, parse_manifest, Manifest};
pub use rules::{check_source, check_test_source, STRICT_CRATES};
pub use source::SourceFile;

/// Result of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Crate manifests scanned.
    pub crates_scanned: usize,
}

/// Lints a single in-memory source file (used by tests and fixtures).
pub fn lint_source(crate_name: &str, rel_path: &str, text: &str) -> Vec<Diagnostic> {
    check_source(&SourceFile::parse(crate_name, rel_path, text))
}

/// Lints every crate under `<root>/crates/`: each `Cargo.toml` feeds
/// the layering rule, each `src/**/*.rs` feeds the source rules, and
/// each test tree (`crates/*/tests/` and the root `tests/`) feeds the
/// test-only rules ([`check_test_source`]). The walk order is sorted,
/// so output and baselines are deterministic.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs = read_dir_sorted(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    crate_dirs.retain(|p| p.is_dir());
    if crate_dirs.is_empty() {
        return Err(format!("no crates found under {}", crates_dir.display()));
    }

    let mut report = LintReport::default();
    let mut manifests = Vec::new();
    for dir in &crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest_path) else {
            continue;
        };
        let manifest = parse_manifest(&rel_path(root, &manifest_path), &text);
        let crate_name = manifest.name.clone();
        manifests.push(manifest);
        report.crates_scanned += 1;

        for file in walk_rs_files(&dir.join("src")) {
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let parsed = SourceFile::parse(&crate_name, &rel_path(root, &file), &text);
            report.diagnostics.extend(check_source(&parsed));
            report.files_scanned += 1;
        }
        for file in walk_rs_files(&dir.join("tests")) {
            // `tests/fixtures/` holds deliberately-broken lint inputs,
            // not tests.
            if rel_path(root, &file).contains("tests/fixtures/") {
                continue;
            }
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let parsed = SourceFile::parse(&crate_name, &rel_path(root, &file), &text);
            report.diagnostics.extend(check_test_source(&parsed));
            report.files_scanned += 1;
        }
    }
    // Root-level integration tests belong to the façade package.
    for file in walk_rs_files(&root.join("tests")) {
        let text = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let parsed = SourceFile::parse("tutel-suite", &rel_path(root, &file), &text);
        report.diagnostics.extend(check_test_source(&parsed));
        report.files_scanned += 1;
    }
    report.diagnostics.extend(check_layering(&manifests));
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn walk_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = read_dir_sorted(dir) else {
        return out;
    };
    for path in entries {
        if path.is_dir() {
            out.extend(walk_rs_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_all_rules() {
        let src = "use rand::thread_rng;\n\npub fn f(x: &[f32], n: usize) {\n    let v = x.first().unwrap();\n}\n";
        let diags = lint_source("tutel-gate", "crates/gate/src/lib.rs", src);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"shim_hygiene"), "{rules:?}");
        assert!(rules.contains(&"layout_doc"), "{rules:?}");
        assert!(rules.contains(&"no_panic"), "{rules:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let src = "pub fn b(x: &[f32], n: usize) { x.first().unwrap(); }\npub fn a(y: &[f32], m: usize) { y.first().unwrap(); }\n";
        let diags = lint_source("tutel-kernels", "k.rs", src);
        let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
