//! The deterministic concurrency sweep: drives `tutel-comm`'s
//! scheduler-backed runtime (`feature = "check-sched"`) across a
//! seeded family of adversarial schedules per collective, comparing
//! every run bit-for-bit against the sequential reference and
//! reporting any deadlock, value corruption, or message leak as an
//! [`explore`](crate::explore) [`Finding`] carrying the seed that
//! replays it.

use std::collections::HashSet;

use crate::explore::Finding;

use tutel_comm::runtime::Communicator;
use tutel_comm::sched::run_sched;
use tutel_comm::{linear_all_to_all, two_dh_all_to_all, CommError, RankBuffers};
use tutel_simgpu::Topology;

/// Sweep parameters: the topology and how many seeds to explore.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    pub nnodes: usize,
    pub gpus_per_node: usize,
    pub seeds: u64,
    /// Elements each rank contributes per peer.
    pub chunk: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        // The paper's minimal hierarchical case: 2 nodes × 2 GPUs.
        SweepConfig {
            nnodes: 2,
            gpus_per_node: 2,
            seeds: 128,
            chunk: 3,
        }
    }
}

/// Sweep outcome for one collective.
#[derive(Debug)]
pub struct CollectiveSweep {
    pub name: &'static str,
    /// Schedules executed (= seeds).
    pub schedules: u64,
    /// Distinct schedule signatures observed.
    pub distinct: usize,
    /// Schedule failures as framework findings (`rule` in
    /// {deadlock, mailbox-leak, message-leak, rank-error, corruption}).
    pub failures: Vec<Finding>,
}

impl CollectiveSweep {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn labeled(n: usize, chunk: usize, salt: usize) -> RankBuffers {
    (0..n)
        .map(|r| {
            (0..n * chunk)
                .map(|i| (salt * 100_000 + r * n * chunk + i) as f32)
                .collect()
        })
        .collect()
}

/// Judges one scheduled run against its oracle.
fn judge(
    name: &'static str,
    seed: u64,
    results: &[Result<Vec<f32>, CommError>],
    report: &tutel_comm::sched::SchedReport,
    expect: &RankBuffers,
    failures: &mut Vec<Finding>,
) {
    if let Some(detail) = &report.deadlock {
        failures.push(Finding::new("deadlock", seed, format!("{name}: {detail}")));
        return;
    }
    for (rank, leaked) in &report.mailbox_leaks {
        failures.push(Finding::new(
            "mailbox-leak",
            seed,
            format!("{name}: rank {rank} ended with {leaked} parked message(s)"),
        ));
    }
    if report.undelivered > 0 {
        failures.push(Finding::new(
            "message-leak",
            seed,
            format!("{name}: {} message(s) never delivered", report.undelivered),
        ));
    }
    for (rank, res) in results.iter().enumerate() {
        match res {
            Err(e) => failures.push(Finding::new(
                "rank-error",
                seed,
                format!("{name}: rank {rank}: {e}"),
            )),
            Ok(got) if *got != expect[rank] => failures.push(Finding::new(
                "corruption",
                seed,
                format!(
                    "{name}: rank {rank} result diverged from the sequential reference \
                     (tag-collision style mixing)"
                ),
            )),
            Ok(_) => {}
        }
    }
}

/// Sweeps one collective across `cfg.seeds` schedules.
fn sweep_one<F>(
    name: &'static str,
    cfg: &SweepConfig,
    inputs: &RankBuffers,
    expect: &RankBuffers,
    collective: F,
) -> CollectiveSweep
where
    F: Fn(&mut Communicator, &[f32]) -> Result<Vec<f32>, CommError> + Send + Sync,
{
    let topo = Topology::new(cfg.nnodes, cfg.gpus_per_node);
    let mut signatures = HashSet::new();
    let mut failures = Vec::new();
    for seed in 0..cfg.seeds {
        let (results, report) =
            run_sched(topo, seed, |comm| collective(comm, &inputs[comm.rank()]));
        signatures.insert(report.signature);
        judge(name, seed, &results, &report, expect, &mut failures);
    }
    CollectiveSweep {
        name,
        schedules: cfg.seeds,
        distinct: signatures.len(),
        failures,
    }
}

/// Runs the full sweep over the four threaded collectives.
pub fn sweep_collectives(cfg: &SweepConfig) -> Vec<CollectiveSweep> {
    let topo = Topology::new(cfg.nnodes, cfg.gpus_per_node);
    let n = topo.world_size();

    let a2a_in = labeled(n, cfg.chunk, 1);
    let a2a_expect = linear_all_to_all(&a2a_in);

    let twodh_in = labeled(n, cfg.chunk, 2);
    let twodh_expect = two_dh_all_to_all(&twodh_in, &topo);

    let gather_in: RankBuffers = (0..n)
        .map(|r| (0..cfg.chunk).map(|i| (r * 10 + i) as f32).collect())
        .collect();
    let gather_flat: Vec<f32> = gather_in.iter().flatten().copied().collect();
    let gather_expect: RankBuffers = vec![gather_flat; n];

    let reduce_in = labeled(n, cfg.chunk, 3);
    let mut reduce_sum = vec![0.0f32; n * cfg.chunk];
    for r in &reduce_in {
        for (o, v) in reduce_sum.iter_mut().zip(r) {
            *o += v;
        }
    }
    let reduce_expect: RankBuffers = vec![reduce_sum; n];

    vec![
        sweep_one("all_to_all", cfg, &a2a_in, &a2a_expect, |c, x| {
            c.all_to_all(x)
        }),
        sweep_one("all_to_all_2dh", cfg, &twodh_in, &twodh_expect, |c, x| {
            c.all_to_all_2dh(x)
        }),
        sweep_one("all_gather", cfg, &gather_in, &gather_expect, |c, x| {
            c.all_gather(x)
        }),
        sweep_one("all_reduce_sum", cfg, &reduce_in, &reduce_expect, |c, x| {
            c.all_reduce_sum(x)
        }),
    ]
}

/// A hand-rolled linear All-to-All that (incorrectly) reuses one
/// fixed tag for every round — the canonical tag-collision bug the
/// monotone `fresh_tag` discipline exists to prevent.
fn manual_all_to_all(
    comm: &mut Communicator,
    input: &[f32],
    tag: u64,
) -> Result<Vec<f32>, CommError> {
    let n = comm.world_size();
    let rank = comm.rank();
    let chunk = input.len() / n;
    for peer in 0..n {
        if peer != rank {
            comm.send(peer, tag, input[peer * chunk..(peer + 1) * chunk].to_vec())?;
        }
    }
    let mut out = vec![0.0f32; input.len()];
    out[rank * chunk..(rank + 1) * chunk].copy_from_slice(&input[rank * chunk..(rank + 1) * chunk]);
    for src in 0..n {
        if src != rank {
            let payload = comm.recv(src, tag)?;
            out[src * chunk..(src + 1) * chunk].copy_from_slice(&payload);
        }
    }
    Ok(out)
}

/// Self-test for the checker: two back-to-back all-to-alls sharing a
/// tag MUST be caught mixing messages under some schedule. Returns
/// the sweep (whose failures carry the replayable seed) — an *empty*
/// failure list here means the checker has lost its teeth.
pub fn broken_tag_selftest(cfg: &SweepConfig) -> CollectiveSweep {
    let topo = Topology::new(cfg.nnodes, cfg.gpus_per_node);
    let n = topo.world_size();
    let round1 = labeled(n, cfg.chunk, 4);
    let round2 = labeled(n, cfg.chunk, 5);
    let expect1 = linear_all_to_all(&round1);
    let expect2 = linear_all_to_all(&round2);
    // The per-rank oracle is the concatenation of both rounds.
    let expect: RankBuffers = (0..n)
        .map(|r| {
            let mut v = expect1[r].clone();
            v.extend_from_slice(&expect2[r]);
            v
        })
        .collect();
    let mut signatures = HashSet::new();
    let mut failures = Vec::new();
    for seed in 0..cfg.seeds {
        let (results, report) = run_sched(topo, seed, |comm| {
            let rank = comm.rank();
            let mut out = manual_all_to_all(comm, &round1[rank], 7)?;
            out.extend(manual_all_to_all(comm, &round2[rank], 7)?);
            Ok::<_, CommError>(out)
        });
        signatures.insert(report.signature);
        judge(
            "broken_tag",
            seed,
            &results,
            &report,
            &expect,
            &mut failures,
        );
    }
    CollectiveSweep {
        name: "broken_tag (intentional bug)",
        schedules: cfg.seeds,
        distinct: signatures.len(),
        failures,
    }
}

/// Replays a single seed of the broken-tag program and reports
/// whether it failed — used to confirm a reported seed reproduces.
pub fn broken_tag_replay(cfg: &SweepConfig, seed: u64) -> Vec<Finding> {
    let topo = Topology::new(cfg.nnodes, cfg.gpus_per_node);
    let n = topo.world_size();
    let round1 = labeled(n, cfg.chunk, 4);
    let round2 = labeled(n, cfg.chunk, 5);
    let expect1 = linear_all_to_all(&round1);
    let expect2 = linear_all_to_all(&round2);
    let expect: RankBuffers = (0..n)
        .map(|r| {
            let mut v = expect1[r].clone();
            v.extend_from_slice(&expect2[r]);
            v
        })
        .collect();
    let mut failures = Vec::new();
    let (results, report) = run_sched(topo, seed, |comm| {
        let rank = comm.rank();
        let mut out = manual_all_to_all(comm, &round1[rank], 7)?;
        out.extend(manual_all_to_all(comm, &round2[rank], 7)?);
        Ok::<_, CommError>(out)
    });
    judge(
        "broken_tag",
        seed,
        &results,
        &report,
        &expect,
        &mut failures,
    );
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepConfig {
        SweepConfig {
            seeds: 128,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn clean_collectives_survive_the_sweep() {
        for sweep in sweep_collectives(&small()) {
            assert!(
                sweep.passed(),
                "{}: {:?}",
                sweep.name,
                sweep.failures.first()
            );
            assert!(
                sweep.distinct >= 100,
                "{}: only {} distinct schedules in {}",
                sweep.name,
                sweep.distinct,
                sweep.schedules
            );
        }
    }

    #[test]
    fn broken_tag_is_caught_and_seed_replays() {
        let sweep = broken_tag_selftest(&small());
        assert!(
            !sweep.passed(),
            "checker failed to catch the intentional tag collision"
        );
        let corruption = sweep
            .failures
            .iter()
            .find(|f| f.rule == "corruption")
            .expect("tag collision should surface as corruption");
        // The reported seed must reproduce deterministically.
        let replay = broken_tag_replay(&small(), corruption.seed);
        assert!(
            replay.iter().any(|f| f.rule == "corruption"),
            "seed {} did not replay the corruption",
            corruption.seed
        );
    }
}
