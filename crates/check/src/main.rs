//! CLI for `tutel-check`.
//!
//! Lint mode (default):
//!
//! ```text
//! tutel-check [--root DIR] [--json] [--baseline FILE]
//!             [--write-baseline FILE] [--emit-timing FILE]
//! ```
//!
//! Concurrency modes:
//!
//! ```text
//! tutel-check --sched [--seeds N]   # comm scheduler sweep
//! tutel-check --race  [--seeds N]   # happens-before race sweep +
//!                                   # planted-bug selftests
//! ```
//!
//! Exit codes: 0 = clean (or ratchet passed), 1 = violations or
//! schedule failures, 2 = usage / IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tutel_check::race::{combined_sweep, run_selftests, RaceConfig};
use tutel_check::sweep::{broken_tag_selftest, sweep_collectives, SweepConfig};
use tutel_check::{diagnostics_to_json, Baseline, Ratchet};

struct Opts {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    sched: bool,
    race: bool,
    seeds: u64,
    emit_timing: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: tutel-check [--root DIR] [--json] [--baseline FILE] \
     [--write-baseline FILE] [--emit-timing FILE] | --sched [--seeds N] \
     | --race [--seeds N]"
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
        sched: false,
        race: false,
        seeds: 128,
        emit_timing: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = path_arg(&mut args)?,
            "--baseline" => opts.baseline = Some(path_arg(&mut args)?),
            "--write-baseline" => opts.write_baseline = Some(path_arg(&mut args)?),
            "--emit-timing" => opts.emit_timing = Some(path_arg(&mut args)?),
            "--json" => opts.json = true,
            "--sched" => opts.sched = true,
            "--race" => opts.race = true,
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seeds needs an integer")?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tutel-check: {e}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.sched {
        run_sched(&opts)
    } else if opts.race {
        run_race(&opts)
    } else {
        run_lint(&opts)
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("tutel-check: {e}");
            ExitCode::from(2)
        }
    }
}

/// Lint mode; returns Ok(true) when the run should exit 0.
fn run_lint(opts: &Opts) -> Result<bool, String> {
    let started = Instant::now();
    let report = tutel_check::lint_workspace(&opts.root)?;
    let wall = started.elapsed();
    let current = Baseline::from_diagnostics(&report.diagnostics);

    if let Some(path) = &opts.emit_timing {
        let timing = format!(
            "{{\"lint_wall_ms\": {:.3}, \"files_scanned\": {}, \"crates_scanned\": {}, \"violations\": {}}}\n",
            wall.as_secs_f64() * 1e3,
            report.files_scanned,
            report.crates_scanned,
            current.total()
        );
        std::fs::write(path, timing)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    if opts.json {
        println!("{}", diagnostics_to_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }

    if let Some(path) = &opts.write_baseline {
        std::fs::write(path, current.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "tutel-check: wrote baseline ({} violation(s) across {} file:rule key(s)) to {}",
            current.total(),
            current.counts.len(),
            path.display()
        );
        return Ok(true);
    }

    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let committed =
            Baseline::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
        let ratchet = Ratchet::compare(&current, &committed);
        for (key, cur, base) in &ratchet.regressions {
            eprintln!("tutel-check: REGRESSION {key}: {cur} violation(s), baseline allows {base}");
        }
        for (key, cur, base) in &ratchet.improvements {
            eprintln!(
                "tutel-check: improved {key}: {cur} (baseline {base}) — \
                 re-run with --write-baseline to tighten the ratchet"
            );
        }
        for (key, base) in &ratchet.stale {
            eprintln!(
                "tutel-check: STALE {key}: baseline allows {base} but the key no \
                 longer produces any diagnostic — prune with --write-baseline"
            );
        }
        eprintln!(
            "tutel-check: {} file(s), {} violation(s) (baseline {}), {} regression(s), \
             {} stale entr{} — {}",
            report.files_scanned,
            current.total(),
            committed.total(),
            ratchet.regressions.len(),
            ratchet.stale.len(),
            if ratchet.stale.len() == 1 { "y" } else { "ies" },
            if ratchet.passed() { "PASS" } else { "FAIL" }
        );
        return Ok(ratchet.passed());
    }

    eprintln!(
        "tutel-check: {} file(s) in {} crate(s), {} violation(s)",
        report.files_scanned,
        report.crates_scanned,
        current.total()
    );
    Ok(report.diagnostics.is_empty())
}

/// Concurrency mode; returns Ok(true) when the run should exit 0.
fn run_sched(opts: &Opts) -> Result<bool, String> {
    let cfg = SweepConfig {
        seeds: opts.seeds,
        ..SweepConfig::default()
    };
    let mut clean = true;
    println!(
        "tutel-check --sched: {} nodes x {} GPUs, {} seeds per collective",
        cfg.nnodes, cfg.gpus_per_node, cfg.seeds
    );
    for sweep in sweep_collectives(&cfg) {
        println!(
            "  {:<16} {} schedules, {} distinct — {}",
            sweep.name,
            sweep.schedules,
            sweep.distinct,
            if sweep.passed() { "ok" } else { "FAIL" }
        );
        for f in &sweep.failures {
            clean = false;
            println!(
                "    [{}] {} — replay with --sched --seeds {} (seed {})",
                f.rule,
                f.detail,
                f.seed + 1,
                f.seed
            );
        }
    }
    // The checker checks itself: the intentionally-broken tag program
    // must be caught under at least one seed.
    let selftest = broken_tag_selftest(&cfg);
    let caught = selftest.failures.iter().any(|f| f.rule == "corruption");
    println!(
        "  {:<16} {} schedules, {} distinct — {}",
        "broken_tag",
        selftest.schedules,
        selftest.distinct,
        if caught {
            "caught (checker has teeth)"
        } else {
            "NOT caught: checker is blind"
        }
    );
    if let Some(first) = selftest.failures.iter().find(|f| f.rule == "corruption") {
        println!("    first failing seed: {}", first.seed);
    }
    if !caught {
        clean = false;
    }
    Ok(clean)
}

/// Race mode; returns Ok(true) when the run should exit 0.
///
/// Two halves, both required: the combined overlap+pool+comm surface
/// must sweep clean and structure-stable across every seed, and the
/// three planted-bug selftests must each be caught with a seed that
/// replays.
fn run_race(opts: &Opts) -> Result<bool, String> {
    let cfg = RaceConfig::default();
    let mut clean = true;
    println!(
        "tutel-check --race: {} nodes x {} GPUs, degree {}, {} sim workers, {} seeds",
        cfg.nnodes, cfg.gpus_per_node, cfg.degree, cfg.sim_workers, opts.seeds
    );
    let sweep = combined_sweep(&cfg, opts.seeds);
    println!(
        "  {:<28} {} schedules, {} distinct — {}",
        sweep.name,
        sweep.schedules,
        sweep.distinct,
        if sweep.passed() && sweep.structure_stable() {
            "ok"
        } else {
            "FAIL"
        }
    );
    for f in &sweep.findings {
        clean = false;
        println!("    {}", f.summary());
    }
    if !sweep.structure_stable() {
        clean = false;
    }

    // Selftests: each planted bug must be caught, and the named seed
    // must replay (run_selftests re-executes it and verifies).
    for t in run_selftests(8) {
        match &t.result {
            Ok(f) => println!(
                "  {:<28} caught (replay seed {}): [{}] {}",
                t.name, f.seed, f.rule, f.detail
            ),
            Err(e) => {
                clean = false;
                println!("  {:<28} NOT caught: checker is blind — {e}", t.name);
            }
        }
    }
    Ok(clean)
}
