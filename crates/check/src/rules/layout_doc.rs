//! Rule `layout_doc` (L2): a `pub fn` that takes a raw `&[f32]` /
//! `&mut [f32]` buffer *and* dimension arguments (`usize`) must name
//! the buffer's tensor layout — a tuple like `(T, M)`, `(ΔE, C, M)`,
//! or `(W, ΔE, ΔC, M)` — in its doc comment.
//!
//! Every buffer crossing gate → encode → All-to-All → FFN → decode is
//! a flat `&[f32]` whose meaning is pure convention; the layout tuple
//! in the doc comment is the only machine-checkable trace of that
//! convention, and this rule keeps it from silently rotting.

use super::{Rule, STRICT_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub struct LayoutDoc;

impl Rule for LayoutDoc {
    fn id(&self) -> &'static str {
        "layout_doc"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if !STRICT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("pub") || toks[i].is_comment() || file.in_test(toks[i].line) {
                continue;
            }
            // `pub` [unsafe|const|async|extern "C"]* `fn` name
            let mut j = match next_code(toks, i + 1) {
                Some(j) => j,
                None => continue,
            };
            while toks[j].is_ident("unsafe")
                || toks[j].is_ident("const")
                || toks[j].is_ident("async")
                || toks[j].is_ident("extern")
                || toks[j].kind == TokenKind::Literal
            {
                j = match next_code(toks, j + 1) {
                    Some(j) => j,
                    None => break,
                };
            }
            if !toks[j].is_ident("fn") {
                continue;
            }
            let name_i = match next_code(toks, j + 1) {
                Some(n) => n,
                None => continue,
            };
            let Some((lo, hi)) = param_span(toks, name_i + 1) else {
                continue;
            };
            let params: Vec<&Token> = toks[lo..=hi].iter().filter(|t| !t.is_comment()).collect();
            if !(has_f32_slice(&params) && params.iter().any(|t| t.is_ident("usize"))) {
                continue;
            }
            let doc = preceding_doc(toks, i);
            if !has_layout_tuple(&doc) {
                let line = toks[name_i].line;
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line,
                        message: format!(
                            "pub fn `{}` takes a raw f32 buffer with dimension args but its doc \
                             comment names no tensor layout (e.g. `(E, C, M)`)",
                            toks[name_i].text
                        ),
                        snippet: file.snippet(line),
                    },
                );
            }
        }
    }
}

/// Next non-comment token index at or after `i`.
fn next_code(toks: &[Token], i: usize) -> Option<usize> {
    (i..toks.len()).find(|&k| !toks[k].is_comment())
}

/// Token span `(lo, hi)` of the parameter list starting at or after
/// `start`: the first `(` at angle-bracket depth 0 through its match.
fn param_span(toks: &[Token], start: usize) -> Option<(usize, usize)> {
    let mut angle = 0i32;
    let mut k = start;
    let lo = loop {
        let t = toks.get(k)?;
        if !t.is_comment() {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct('(') && angle <= 0 {
                break k;
            } else if t.is_punct('{') || t.is_punct(';') {
                return None;
            }
        }
        k += 1;
    };
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(lo) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some((lo, k));
            }
        }
    }
    None
}

/// True if the parameter tokens contain `&[f32]` or `&mut [f32]`
/// (with an optional lifetime after the `&`).
fn has_f32_slice(params: &[&Token]) -> bool {
    for i in 0..params.len() {
        if !params[i].is_punct('&') {
            continue;
        }
        let mut k = i + 1;
        if params.get(k).is_some_and(|t| t.kind == TokenKind::Lifetime) {
            k += 1;
        }
        if params.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if params.get(k).is_some_and(|t| t.is_punct('['))
            && params.get(k + 1).is_some_and(|t| t.is_ident("f32"))
            && params.get(k + 2).is_some_and(|t| t.is_punct(']'))
        {
            return true;
        }
    }
    false
}

/// Concatenated doc-comment text in the item preamble directly above
/// token `i` (stopping at the previous item's `;`, `{`, or `}`;
/// attribute tokens in between are skipped).
fn preceding_doc(toks: &[Token], i: usize) -> String {
    let mut docs: Vec<&str> = Vec::new();
    for t in toks[..i].iter().rev() {
        if t.kind == TokenKind::DocComment {
            docs.push(&t.text);
        } else if !t.is_comment()
            && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(','))
        {
            break;
        }
    }
    docs.reverse();
    docs.join("\n")
}

/// Character set allowed inside a layout-tuple component.
fn layout_char(c: char) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            'Δ' | 'δ' | '·' | '×' | '*' | '=' | '+' | '-' | '/' | '_' | ' '
        )
}

/// True if `doc` contains a tensor-layout tuple: a parenthesized,
/// comma-separated list of 2–6 short dimension names such as
/// `(T, M)`, `(ΔE, C, M)`, or `(dE, C = W·dC, M)`.
pub fn has_layout_tuple(doc: &str) -> bool {
    let chars: Vec<char> = doc.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '(' {
            if let Some(close) = chars[i + 1..].iter().position(|&c| c == ')' || c == '(') {
                let inner: String = chars[i + 1..i + 1 + close].iter().collect();
                if chars[i + 1 + close] == ')' && is_layout_body(&inner) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

fn is_layout_body(body: &str) -> bool {
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    if !(2..=6).contains(&parts.len()) {
        return false;
    }
    let mut has_short_dim = false;
    for p in parts {
        if p.is_empty() || p.chars().count() > 16 || !p.chars().all(layout_char) {
            return false;
        }
        if !p
            .chars()
            .any(|c| c.is_ascii_alphabetic() || c == 'Δ' || c == 'δ')
        {
            return false;
        }
        if p.chars().count() <= 4 && !p.contains(' ') {
            has_short_dim = true;
        }
    }
    has_short_dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("tutel-kernels", "src/lib.rs", src);
        let mut sink = Vec::new();
        LayoutDoc.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_undocumented_buffer_fn() {
        let src = "/// Does things fast.\npub fn encode(x: &[f32], tokens: usize, m: usize) -> Vec<f32> { vec![] }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("encode"));
    }

    #[test]
    fn layout_tuple_in_doc_satisfies() {
        for layout in [
            "(T, M)",
            "(ΔE, C, M)",
            "(W, ΔE, ΔC, M)",
            "(dE, C = W·dC, M)",
        ] {
            let src = format!(
                "/// Input laid out as `{layout}` row-major.\npub fn f(x: &[f32], t: usize) {{}}\n"
            );
            assert!(run(&src).is_empty(), "layout {layout} not accepted");
        }
    }

    #[test]
    fn needs_both_slice_and_dims() {
        // Slice without dims, dims without slice: out of scope.
        assert!(run("pub fn a(x: &[f32]) {}\n").is_empty());
        assert!(run("pub fn b(n: usize, m: usize) {}\n").is_empty());
        // &mut [f32] with dims: in scope.
        assert_eq!(run("pub fn c(x: &mut [f32], n: usize) {}\n").len(), 1);
    }

    #[test]
    fn private_and_test_fns_are_exempt() {
        assert!(run("fn f(x: &[f32], n: usize) {}\n").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    pub fn f(x: &[f32], n: usize) {}\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn prose_parens_do_not_count_as_layouts() {
        for doc in [
            "normalized to the range (0, 1) exactly",
            "see above (and the paper) for details of the wire format here",
        ] {
            let src = format!("/// {doc}\npub fn f(x: &[f32], n: usize) {{}}\n");
            assert_eq!(run(&src).len(), 1, "doc {doc:?} wrongly accepted");
        }
    }

    #[test]
    fn allow_suppresses() {
        let src =
            "// check:allow(layout_doc, scalar scratch buffer)\npub fn f(x: &[f32], n: usize) {}\n";
        assert!(run(src).is_empty());
    }
}
