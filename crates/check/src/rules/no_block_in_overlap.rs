//! Rule `no_block_in_overlap` (L6): no blocking waits inside the
//! overlap executor's steady state.
//!
//! The executed pipelining win (Section 3.3) exists only while the
//! next chunk's All-to-All progresses *behind* the current chunk's
//! compute. A `handle.wait(..)` dropped into the schedule between
//! chunk issue and the final drain serializes the two streams again —
//! silently, with every test still passing, because blocking changes
//! only *when* messages move, never *what* they carry.
//!
//! The rule scans overlap-executor files (files whose path contains
//! `overlap` inside the strict crates) and flags every
//! `.wait(` call outside an item annotated with
//! `// check:overlap-drain` — the marker claiming the one designated
//! drain helper (and any future peer) where blocking is the point.
//! Test code is exempt, and one-off sites can justify themselves with
//! `// check:allow(no_block_in_overlap, reason)`.

use super::{Rule, STRICT_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::{marker_spans, SourceFile};

pub struct NoBlockInOverlap;

impl Rule for NoBlockInOverlap {
    fn id(&self) -> &'static str {
        "no_block_in_overlap"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if !STRICT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        // Scope: the overlap executor itself, not every consumer of a
        // CommHandle (blocking `wait` is the correct epilogue outside
        // a pipelined schedule).
        let path = file.rel_path.rsplit('/').next().unwrap_or(&file.rel_path);
        if !path.contains("overlap") {
            return;
        }
        let drain_spans = marker_spans(file, "check:overlap-drain");
        let in_drain = |line: u32| drain_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi);
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in code.iter().enumerate() {
            if in_drain(tok.line) || file.in_test(tok.line) {
                continue;
            }
            let is_wait_call = tok.is_ident("wait")
                && i > 0
                && code[i - 1].is_punct('.')
                && code.get(i + 1).is_some_and(|t| t.is_punct('('));
            if is_wait_call {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: "blocking `.wait(..)` inside the overlap schedule serializes \
                                  comm against compute: poll, or route through the \
                                  `check:overlap-drain` drain helper, or justify with \
                                  `// check:allow(no_block_in_overlap, reason)`"
                            .to_string(),
                        snippet: file.snippet(tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(crate_name, path, src);
        let mut sink = Vec::new();
        NoBlockInOverlap.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_wait_outside_drain_items() {
        let src = "fn schedule(h: CommHandle) {\n    let out = h.wait(comm);\n}\n";
        let diags = run("tutel", "crates/core/src/overlap.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].rule, "no_block_in_overlap");
    }

    #[test]
    fn drain_marked_items_may_wait() {
        let src = "// check:overlap-drain\nfn drain(h: CommHandle) -> Vec<f32> {\n    h.wait(comm)\n}\n\nfn schedule() {\n    poll();\n}\n";
        assert!(run("tutel", "crates/core/src/overlap.rs", src).is_empty());
    }

    #[test]
    fn marker_claims_only_the_next_item() {
        let src = "// check:overlap-drain\nfn drain(h: H) { h.wait(c); }\n\nfn leak(h: H) { h.wait(c); }\n";
        let diags = run("tutel", "crates/core/src/overlap.rs", src);
        assert_eq!(diags.iter().map(|d| d.line).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn non_overlap_files_and_non_strict_crates_are_exempt() {
        let src = "fn f(h: H) { h.wait(c); }\n";
        assert!(run("tutel", "crates/core/src/pipeline.rs", src).is_empty());
        assert!(run("tutel-bench", "crates/bench/src/overlap_run.rs", src).is_empty());
    }

    #[test]
    fn tests_and_allows_are_exempt() {
        let test_src = "#[test]\nfn t(h: H) { h.wait(c); }\n";
        assert!(run("tutel", "crates/core/src/overlap.rs", test_src).is_empty());
        let allowed = "fn f(h: H) {\n    // check:allow(no_block_in_overlap, degenerate degree-1 path)\n    h.wait(c);\n}\n";
        assert!(run("tutel", "crates/core/src/overlap.rs", allowed).is_empty());
    }

    #[test]
    fn wait_as_a_plain_ident_is_not_a_call() {
        let src = "fn f() {\n    let wait = 3;\n    thread::sleep(wait);\n}\n";
        assert!(run("tutel", "crates/core/src/overlap.rs", src).is_empty());
    }
}
