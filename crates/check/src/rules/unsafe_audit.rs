//! Rule `unsafe_audit` (L6): every `unsafe` keyword — block, fn,
//! impl, or trait, in *any* workspace crate including test code —
//! must be justified by a `// SAFETY:` comment within the five lines
//! above it.
//!
//! `unsafe` is where the compiler stops checking and the comment is
//! the only remaining proof obligation; an unannotated site cannot be
//! reviewed. Genuinely self-evident sites can still escape with
//! `// check:allow(unsafe_audit, reason)`, and pre-existing offenders
//! ratchet down through the committed baseline like any other rule.

use super::Rule;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub struct UnsafeAudit;

/// How far above an `unsafe` token the `SAFETY:` comment may sit.
/// Wide enough for a multi-line justification above an `unsafe impl`
/// pair or an attribute-decorated fn, narrow enough that a stale
/// comment can't cover an unrelated site.
const LOOKBACK_LINES: u32 = 5;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe_audit"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        // `unsafe` inside a string literal lexes as a Literal token,
        // so filtering to Ident tokens also skips prose mentions.
        for tok in file.tokens.iter().filter(|t| t.is_ident("unsafe")) {
            let covered = file.tokens.iter().any(|c| {
                c.is_comment()
                    && c.text.contains("SAFETY:")
                    && c.line <= tok.line
                    && c.line + LOOKBACK_LINES >= tok.line
            });
            if !covered {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`unsafe` without a `// SAFETY:` comment in the {LOOKBACK_LINES} \
                             lines above: state the invariant that makes this sound, or \
                             justify with `// check:allow(unsafe_audit, reason)`"
                        ),
                        snippet: file.snippet(tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("tutel-rt", "src/lib.rs", src);
        let mut sink = Vec::new();
        UnsafeAudit.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_bare_unsafe_block() {
        let src = "fn f(p: *mut f32) {\n    unsafe { *p = 0.0; }\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe_audit");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_within_window_covers() {
        let src = "fn f(p: *mut f32) {\n    // SAFETY: p is valid for writes, caller contract.\n    unsafe { *p = 0.0; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn one_comment_covers_an_unsafe_impl_pair_at_window_edge() {
        let src = "// SAFETY: the pointer is only dereferenced inside the job's\n\
                   // scoped lifetime, after the submitting thread published it\n\
                   // and before join returns; Send/Sync forwarding is therefore\n\
                   // sound for this wrapper.\n\
                   unsafe impl<T> Send for W<T> {}\n\
                   unsafe impl<T> Sync for W<T> {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn comment_too_far_above_does_not_cover() {
        let src = "// SAFETY: stale justification six lines up.\n\n\n\n\n\n\
                   fn f(p: *mut f32) {\n    unsafe { *p = 0.0; }\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_prose_is_ignored() {
        let src = "fn f() -> &'static str {\n    \"unsafe is a keyword\"\n}\n// unsafe appears in prose here, fine\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn applies_to_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        unsafe { std::hint::unreachable_unchecked() }\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn check_allow_suppresses() {
        let src = "fn f(p: *mut f32) {\n    // check:allow(unsafe_audit, trivially in-bounds)\n    unsafe { *p = 0.0; }\n}\n";
        assert!(run(src).is_empty());
    }
}
