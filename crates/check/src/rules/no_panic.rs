//! Rule `no_panic` (L1): no `.unwrap()`, `.expect(..)`, `panic!`, or
//! `unimplemented!` in the non-test code of the strict library crates.
//!
//! On a 4,096-GPU run a library panic takes down a whole rank and, via
//! the collectives, wedges every peer waiting on it; fallible paths
//! must surface typed errors instead. Justified sites (e.g. an
//! invariant audit that *should* abort) carry
//! `// check:allow(no_panic, reason)`.

use super::{Rule, STRICT_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::SourceFile;

pub struct NoPanic;

/// Macro idents that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "unimplemented"];

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no_panic"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if !STRICT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in code.iter().enumerate() {
            if file.in_test(tok.line) {
                continue;
            }
            let offence = if (tok.is_ident("unwrap") || tok.is_ident("expect"))
                && i > 0
                && code[i - 1].is_punct('.')
                && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some(format!("`.{}()` in library code", tok.text))
            } else if PANIC_MACROS.iter().any(|m| tok.is_ident(m))
                && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some(format!("`{}!` in library code", tok.text))
            } else {
                None
            };
            if let Some(what) = offence {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "{what}: return a typed error instead, or justify with \
                             `// check:allow(no_panic, reason)`"
                        ),
                        snippet: file.snippet(tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(crate_name, "src/lib.rs", src);
        let mut sink = Vec::new();
        NoPanic.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n    a.unwrap();\n    b.expect(\"x\");\n    panic!(\"y\");\n    unimplemented!()\n}\n";
        let diags = run("tutel-comm", src);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn test_code_and_other_crates_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { a.unwrap(); }\n}\n";
        assert!(run("tutel-comm", src).is_empty());
        assert!(run("tutel-bench", "fn f() { a.unwrap(); }\n").is_empty());
    }

    #[test]
    fn allow_suppresses_one_site() {
        let src = "fn f() {\n    // check:allow(no_panic, audit must abort)\n    panic!(\"boom\");\n    q.unwrap();\n}\n";
        let diags = run("tutel-tensor", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn words_in_strings_and_comments_do_not_count() {
        let src = "fn f() {\n    // this would panic! if .unwrap() were real\n    let s = \"panic! .unwrap()\";\n    let e = my_expect(1);\n}\n";
        assert!(run("tutel-comm", src).is_empty());
    }

    #[test]
    fn should_panic_attribute_is_not_flagged() {
        let src = "#[should_panic(expected = \"boom\")]\nfn t() {}\n";
        assert!(run("tutel-comm", src).is_empty());
    }
}
