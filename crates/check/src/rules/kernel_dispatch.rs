//! Rule `kernel_dispatch` (L9): CPU-feature detection and
//! `#[target_feature]` kernels may appear **only** in the tensor
//! crate's dispatch module (`crates/tensor/src/dispatch.rs`).
//!
//! The SIMD design routes every hot path through one kernel-dispatch
//! table resolved once at startup: a `is_x86_feature_detected!` call
//! anywhere else is either per-call detection (a performance bug — the
//! macro is a CPUID/cache probe) or a second dispatch point that can
//! disagree with the table's `TUTEL_SIMD` override and break the
//! scalar-vs-SIMD bitwise contract. Likewise a stray
//! `#[target_feature]` fn outside the dispatch module is an intrinsic
//! kernel the differential harness does not know to cross-check.
//!
//! Escape hatch for genuinely novel sites:
//! `// check:allow(kernel_dispatch, reason)`.

use super::Rule;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub struct KernelDispatch;

/// The one module allowed to detect CPU features and carry
/// `#[target_feature]` kernels.
const DISPATCH_MODULE: &str = "crates/tensor/src/dispatch.rs";

impl Rule for KernelDispatch {
    fn id(&self) -> &'static str {
        "kernel_dispatch"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if file.rel_path == DISPATCH_MODULE {
            return;
        }
        for tok in file
            .tokens
            .iter()
            .filter(|t| t.is_ident("is_x86_feature_detected") || t.is_ident("target_feature"))
        {
            file.emit(
                sink,
                Diagnostic {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    message: format!(
                        "CPU-feature detection/`target_feature` outside `{DISPATCH_MODULE}`: \
                         route kernels through `tutel_tensor::dispatch::table()` so mode \
                         selection stays single-sourced, or justify with \
                         `// check:allow(kernel_dispatch, reason)`"
                    ),
                    snippet: file.snippet(tok.line),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(rel_path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("tutel-tensor", rel_path, src);
        let mut sink = Vec::new();
        KernelDispatch.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_detection_outside_dispatch() {
        let src = "fn f() -> bool {\n    std::arch::is_x86_feature_detected!(\"avx2\")\n}\n";
        let d = run("crates/tensor/src/linalg.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "kernel_dispatch");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn flags_target_feature_outside_dispatch() {
        let src = "#[target_feature(enable = \"avx2\")]\nfn kern(x: &[f32]) {}\n";
        let d = run("crates/kernels/src/sparse.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn dispatch_module_is_exempt() {
        let src = "#[target_feature(enable = \"avx2\")]\nfn kern() {}\nfn d() -> bool { std::arch::is_x86_feature_detected!(\"fma\") }\n";
        assert!(run("crates/tensor/src/dispatch.rs", src).is_empty());
    }

    #[test]
    fn prose_and_strings_are_ignored() {
        let src = "// target_feature is discussed in prose here\nfn f() -> &'static str {\n    \"is_x86_feature_detected\"\n}\n";
        assert!(run("crates/rt/src/pool.rs", src).is_empty());
    }

    #[test]
    fn check_allow_suppresses() {
        let src = "// check:allow(kernel_dispatch, one-off probe in a bench)\nfn f() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        assert!(run("crates/bench/src/main.rs", src).is_empty());
    }
}
