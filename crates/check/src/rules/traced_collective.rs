//! Rule `traced_collective` (L7): every comm-runtime collective entry
//! point carries trace instrumentation.
//!
//! The causal trace is only as complete as its coverage: a collective
//! that moves payloads without opening a span (and, transitively,
//! without flow-stamping its sends) leaves a hole in the merged
//! timeline that reads as idle time and breaks cross-rank
//! attribution. The rule scans `tutel-comm`'s `runtime.rs` and flags
//! any known collective entry point whose body never touches the
//! `tracer` — the spans and flow stamps all route through it, so its
//! absence means the function is invisible to the trace.
//!
//! New collectives must either instrument themselves on entry or
//! justify the gap with `// check:allow(traced_collective, reason)`.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::{item_end_line, SourceFile};

/// The collective entry points required to trace themselves.
const COLLECTIVES: &[&str] = &[
    "all_to_all",
    "all_to_all_2dh",
    "all_gather",
    "all_reduce_sum",
    "ialltoall",
    "ialltoall_2dh",
];

pub struct TracedCollective;

impl Rule for TracedCollective {
    fn id(&self) -> &'static str {
        "traced_collective"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        // Scope: the threaded runtime that owns the tracer. The
        // sequential references (`linear_all_to_all`, …) and the
        // deterministic scheduler have no tracer to touch.
        if file.crate_name != "tutel-comm" || !file.rel_path.ends_with("src/runtime.rs") {
            return;
        }
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in code.iter().enumerate() {
            if !tok.is_ident("fn") {
                continue;
            }
            let Some(name_tok) = code.get(i + 1) else {
                continue;
            };
            if !COLLECTIVES.iter().any(|c| name_tok.is_ident(c)) || file.in_test(name_tok.line) {
                continue;
            }
            let Some(end_line) = item_end_line(&code, i) else {
                continue;
            };
            let traced = code
                .iter()
                .any(|t| t.line > name_tok.line && t.line <= end_line && t.is_ident("tracer"));
            if !traced {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: name_tok.line,
                        message: format!(
                            "collective `{}` never touches the tracer: open a span (and \
                             flow-stamp its sends) so the exchange is visible in the causal \
                             trace, or justify with \
                             `// check:allow(traced_collective, reason)`",
                            name_tok.text
                        ),
                        snippet: file.snippet(name_tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(crate_name, path, src);
        let mut sink = Vec::new();
        TracedCollective.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_untraced_collective_entry_points() {
        let src = "impl C {\n    pub fn all_gather(&mut self, x: &[f32]) -> R {\n        \
                   self.send(0, 1, x.to_vec())\n    }\n}\n";
        let diags = run("tutel-comm", "crates/comm/src/runtime.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].rule, "traced_collective");
    }

    #[test]
    fn traced_bodies_pass() {
        let src = "impl C {\n    pub fn all_gather(&mut self, x: &[f32]) -> R {\n        \
                   let _span = self.tracer.span(TRACK_COMM, \"all_gather\");\n        \
                   self.send(0, 1, x.to_vec())\n    }\n}\n";
        assert!(run("tutel-comm", "crates/comm/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn other_files_and_crates_are_exempt() {
        let src = "pub fn all_to_all(x: &[f32]) -> Vec<f32> { x.to_vec() }\n";
        assert!(run("tutel-comm", "crates/comm/src/lib.rs", src).is_empty());
        assert!(run("tutel", "crates/core/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn calls_to_collectives_are_not_definitions() {
        let src = "fn helper(comm: &mut C) {\n    comm.all_to_all(&[1.0]).unwrap();\n}\n";
        assert!(run("tutel-comm", "crates/comm/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn tests_and_allows_are_exempt() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn all_to_all() { body(); }\n}\n";
        assert!(run("tutel-comm", "crates/comm/src/runtime.rs", test_src).is_empty());
        let allowed = "// check:allow(traced_collective, scaffolding for the sched port)\n\
                       fn all_gather(x: &[f32]) -> Vec<f32> {\n    x.to_vec()\n}\n";
        assert!(run("tutel-comm", "crates/comm/src/runtime.rs", allowed).is_empty());
    }
}
