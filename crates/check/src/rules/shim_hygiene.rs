//! Rule `shim_hygiene` (L4): the offline dependency shims under
//! `shims/` reimplement only the API surface their crate docs list as
//! supported; code in `crates/` may therefore only reach a shimmed
//! crate through those documented paths. Anything else would compile
//! against the shim today and break (or silently diverge) the day the
//! workspace is pointed back at the real crates.
//!
//! The rule checks `use` declarations and inline qualified paths
//! rooted at a shim crate's name against a per-shim allowlist kept in
//! sync with the shim's module docs.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub struct ShimHygiene;

/// Per-shim supported surface, mirroring `shims/*/src/lib.rs` docs.
/// An entry allows the exact path plus anything nested under it.
const ALLOWED: &[(&str, &[&str])] = &[
    (
        "rand",
        &[
            "rand::rngs",
            "rand::SeedableRng",
            "rand::Rng",
            "rand::RngCore",
        ],
    ),
    (
        "crossbeam",
        &[
            "crossbeam::channel::unbounded",
            "crossbeam::channel::Sender",
            "crossbeam::channel::Receiver",
            "crossbeam::channel::RecvError",
            "crossbeam::channel::RecvTimeoutError",
            "crossbeam::channel::SendError",
        ],
    ),
    ("serde", &["serde::Serialize", "serde::Deserialize"]),
    // Only the serde shim itself may touch the derive crate.
    ("serde_derive", &[]),
    (
        "proptest",
        &[
            "proptest::prelude",
            "proptest::proptest",
            "proptest::prop_assert",
            "proptest::prop_assert_eq",
            "proptest::prop_assert_ne",
            "proptest::collection",
            "proptest::Strategy",
            "proptest::Just",
            "proptest::any",
            "proptest::Arbitrary",
            "proptest::ProptestConfig",
            "proptest::TestRng",
        ],
    ),
    (
        "criterion",
        &[
            "criterion::Criterion",
            "criterion::BenchmarkGroup",
            "criterion::BenchmarkId",
            "criterion::Bencher",
            "criterion::black_box",
            "criterion::criterion_group",
            "criterion::criterion_main",
        ],
    ),
];

fn shim_allowlist(root: &str) -> Option<&'static [&'static str]> {
    ALLOWED
        .iter()
        .find(|(name, _)| *name == root)
        .map(|(_, list)| *list)
}

fn path_allowed(path: &str, allowlist: &[&str]) -> bool {
    // Importing the bare crate root is fine; its uses are checked at
    // the qualified-path sites.
    if !path.contains("::") {
        return true;
    }
    allowlist
        .iter()
        .any(|entry| path == *entry || path.starts_with(&format!("{entry}::")))
}

impl Rule for ShimHygiene {
    fn id(&self) -> &'static str {
        "shim_hygiene"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut i = 0usize;
        while i < code.len() {
            if code[i].is_ident("use") {
                let (paths, next) = parse_use_tree(&code, i + 1);
                for (path, line) in paths {
                    self.check_path(file, sink, &path, line);
                }
                i = next;
                continue;
            }
            // Inline qualified path rooted at an ident: only a path
            // *root* (not preceded by `::`) counts.
            if code[i].kind == TokenKind::Ident
                && shim_allowlist(&code[i].text).is_some()
                && !(i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':'))
                && is_path_sep(&code, i + 1)
            {
                let (path, next) = parse_plain_path(&code, i);
                self.check_path(file, sink, &path, code[i].line);
                i = next;
                continue;
            }
            i += 1;
        }
    }
}

impl ShimHygiene {
    fn check_path(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>, path: &str, line: u32) {
        let root = path.split("::").next().unwrap_or(path);
        let Some(allowlist) = shim_allowlist(root) else {
            return;
        };
        if path_allowed(path, allowlist) {
            return;
        }
        file.emit(
            sink,
            Diagnostic {
                rule: self.id(),
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "`{path}` is not part of the `{root}` shim's documented surface \
                     (see shims/{root}/src/lib.rs); extend the shim and its docs first"
                ),
                snippet: file.snippet(line),
            },
        );
    }
}

fn is_path_sep(code: &[&Token], i: usize) -> bool {
    code.get(i).is_some_and(|t| t.is_punct(':')) && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Parses a (possibly nested) use tree starting at `i`, returning the
/// flattened leaf paths with their lines and the index past the `;`.
fn parse_use_tree(code: &[&Token], i: usize) -> (Vec<(String, u32)>, usize) {
    let mut out = Vec::new();
    let mut j = i;
    collect_tree(code, &mut j, String::new(), &mut out);
    // Advance past the terminating `;` if present.
    while j < code.len() && !code[j].is_punct(';') {
        j += 1;
    }
    (out, j + 1)
}

/// Recursive descent over `prefix::{a, b::c, d::*}` use trees.
fn collect_tree(code: &[&Token], j: &mut usize, prefix: String, out: &mut Vec<(String, u32)>) {
    let mut path = prefix;
    let mut line = code.get(*j).map_or(0, |t| t.line);
    while let Some(tok) = code.get(*j) {
        if tok.kind == TokenKind::Ident || tok.is_punct('*') {
            if path.is_empty() {
                line = tok.line;
                path = tok.text.clone();
            } else {
                path = format!("{path}::{}", tok.text);
            }
            *j += 1;
            // `as alias` renames the leaf; skip the alias.
            if code.get(*j).is_some_and(|t| t.is_ident("as")) {
                *j += 2;
            }
            if is_path_sep(code, *j) {
                *j += 2;
                if code.get(*j).is_some_and(|t| t.is_punct('{')) {
                    *j += 1;
                    loop {
                        collect_tree(code, j, path.clone(), out);
                        match code.get(*j) {
                            Some(t) if t.is_punct(',') => *j += 1,
                            Some(t) if t.is_punct('}') => {
                                *j += 1;
                                break;
                            }
                            _ => break,
                        }
                    }
                    return;
                }
                continue;
            }
            out.push((path, line));
            return;
        }
        break;
    }
    if !path.is_empty() {
        out.push((path, line));
    }
}

/// Consumes `root::seg::seg…` returning the path text and next index.
fn parse_plain_path(code: &[&Token], i: usize) -> (String, usize) {
    let mut path = code[i].text.clone();
    let mut j = i + 1;
    while is_path_sep(code, j) {
        let Some(seg) = code.get(j + 2) else { break };
        if seg.kind != TokenKind::Ident {
            break;
        }
        path = format!("{path}::{}", seg.text);
        j += 3;
    }
    (path, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("tutel-gate", "src/lib.rs", src);
        let mut sink = Vec::new();
        ShimHygiene.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn documented_surface_is_allowed() {
        let src = "use rand::rngs::SmallRng;\nuse rand::{Rng, SeedableRng};\nuse crossbeam::channel::{unbounded, Receiver, Sender};\nuse serde::{Deserialize, Serialize};\nuse proptest::prelude::*;\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn undocumented_item_is_flagged() {
        let diags = run("use rand::distributions::WeightedIndex;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        assert!(diags[0]
            .message
            .contains("rand::distributions::WeightedIndex"));
    }

    #[test]
    fn nested_trees_are_flattened() {
        let diags = run("use crossbeam::{channel::{unbounded, select}, thread};\n");
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("crossbeam::channel::select"));
        assert!(diags[1].message.contains("crossbeam::thread"));
    }

    #[test]
    fn qualified_inline_paths_are_checked() {
        let diags = run("fn f() { let r = rand::thread_rng(); }\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("rand::thread_rng"));
    }

    #[test]
    fn methods_under_allowed_types_are_fine() {
        assert!(run("fn f() { let r = rand::rngs::SmallRng::seed_from_u64(1); }\n").is_empty());
    }

    #[test]
    fn non_shim_paths_are_ignored() {
        assert!(run("use std::collections::HashMap;\nuse tutel_comm::CommError;\n").is_empty());
    }

    #[test]
    fn serde_derive_is_shim_only() {
        assert_eq!(run("use serde_derive::Serialize;\n").len(), 1);
    }

    #[test]
    fn allow_suppresses() {
        let src = "// check:allow(shim_hygiene, migration shim)\nuse rand::thread_rng;\n";
        assert!(run(src).is_empty());
    }
}
