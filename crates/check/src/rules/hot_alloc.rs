//! Rule `hot_alloc` (L5): no fresh heap traffic in marked hot
//! functions.
//!
//! The per-iteration MoE path (encode → FFN → decode and its backward)
//! runs thousands of times per training job; a `Tensor::zeros` or
//! `.to_vec()` inside it re-allocates the same multi-megabyte buffer
//! every step and regresses exactly the wins the `tutel-rt` arena
//! exists to lock in. Functions on that path are annotated with a
//! `// check:hot` marker comment; inside the annotated item this rule
//! flags
//!
//! * `Tensor::zeros(..)` — use `scratch::zeroed` (arena-backed), and
//! * `.to_vec()` — borrow, or check a buffer out of the arena.
//!
//! Sites that genuinely must allocate (cold error paths, one-off
//! setup) carry `// check:allow(hot_alloc, reason)`.

use super::{Rule, STRICT_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::{marker_spans, SourceFile};

pub struct HotAlloc;

/// Inclusive 1-based line ranges covered by `// check:hot` markers:
/// each marker claims the next item (function) that follows it.
fn hot_spans(file: &SourceFile) -> Vec<(u32, u32)> {
    marker_spans(file, "check:hot")
}

impl Rule for HotAlloc {
    fn id(&self) -> &'static str {
        "hot_alloc"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if !STRICT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let spans = hot_spans(file);
        if spans.is_empty() {
            return;
        }
        let in_hot = |line: u32| spans.iter().any(|&(lo, hi)| lo <= line && line <= hi);
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in code.iter().enumerate() {
            if !in_hot(tok.line) || file.in_test(tok.line) {
                continue;
            }
            let offence = if tok.is_ident("zeros")
                && i >= 3
                && code[i - 1].is_punct(':')
                && code[i - 2].is_punct(':')
                && code[i - 3].is_ident("Tensor")
                && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some("`Tensor::zeros` allocates fresh: use `scratch::zeroed`")
            } else if tok.is_ident("to_vec")
                && i > 0
                && code[i - 1].is_punct('.')
                && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some("`.to_vec()` copies to a fresh allocation: borrow or use the arena")
            } else {
                None
            };
            if let Some(what) = offence {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "{what} in a `check:hot` function, or justify with \
                             `// check:allow(hot_alloc, reason)`"
                        ),
                        snippet: file.snippet(tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(crate_name, "src/lib.rs", src);
        let mut sink = Vec::new();
        HotAlloc.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_zeros_and_to_vec_inside_hot_fn() {
        let src = "// check:hot\nfn f() {\n    let a = Tensor::zeros(&[4]);\n    let b = s.to_vec();\n}\n";
        let diags = run("tutel-tensor", src);
        assert_eq!(diags.iter().map(|d| d.line).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn unmarked_functions_are_exempt() {
        let src = "fn cold() {\n    let a = Tensor::zeros(&[4]);\n    let b = s.to_vec();\n}\n";
        assert!(run("tutel-tensor", src).is_empty());
    }

    #[test]
    fn marker_claims_only_the_next_item() {
        let src = "// check:hot\nfn hot() {\n    x();\n}\n\nfn cold() {\n    let a = Tensor::zeros(&[4]);\n}\n";
        assert!(run("tutel-tensor", src).is_empty());
    }

    #[test]
    fn marker_skips_attributes_on_the_item() {
        let src = "// check:hot\n#[inline]\nfn hot() {\n    let a = Tensor::zeros(&[4]);\n}\n";
        assert_eq!(run("tutel-tensor", src).len(), 1);
    }

    #[test]
    fn allow_suppresses_one_site() {
        let src = "// check:hot\nfn f() {\n    // check:allow(hot_alloc, cold fallback)\n    let a = Tensor::zeros(&[4]);\n    let b = s.to_vec();\n}\n";
        let diags = run("tutel-tensor", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn non_strict_crates_and_tests_are_exempt() {
        let src = "// check:hot\nfn f() { let a = Tensor::zeros(&[4]); }\n";
        assert!(run("tutel-bench", src).is_empty());
        let test_src = "// check:hot\n#[test]\nfn t() { let a = Tensor::zeros(&[4]); }\n";
        assert!(run("tutel-tensor", test_src).is_empty());
    }

    #[test]
    fn overlap_executor_is_covered() {
        // `core::overlap`'s `check:hot` schedule must stay
        // allocation-clean like every other hot item — the crate name
        // `tutel` is strict and the marker machinery is shared.
        let src = "// check:hot\npub fn run_overlapped() {\n    let y = chunk.to_vec();\n}\n";
        let file = SourceFile::parse("tutel", "crates/core/src/overlap.rs", src);
        let mut sink = Vec::new();
        HotAlloc.check_file(&file, &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].line, 3);
    }

    #[test]
    fn words_in_strings_and_comments_do_not_count() {
        let src = "// check:hot\nfn f() {\n    // Tensor::zeros(..) would be wrong here\n    let s = \"Tensor::zeros .to_vec()\";\n}\n";
        assert!(run("tutel-tensor", src).is_empty());
    }
}
