//! Rule `layering` (L3): the crate DAG must only point downward along
//!
//! ```text
//! tensor → simgpu → comm → gate → kernels → experts → core → bench
//! ```
//!
//! with the base crates `tutel-obs` and `tutel-rt` reachable from
//! every layer (and themselves depending on no tutel crate), and the
//! `tutel-check`/`tutel-bench` tool crates on top. An upward
//! dependency (say, gate reaching into experts)
//! would let routing decisions grow hidden couplings to expert
//! placement — exactly the kind of cycle the paper's layered design
//! forbids. Parsed straight out of each crate's `Cargo.toml`
//! `[dependencies]` table (dev-dependencies are exempt: test code may
//! reach sideways).

use crate::diag::Diagnostic;

/// Layer index per package; a crate may depend only on strictly lower
/// layers (plus the base crates).
const TIERS: &[(&str, u32)] = &[
    ("tutel-obs", 0),
    ("tutel-rt", 0),
    ("tutel-explore", 0),
    ("tutel-tensor", 1),
    ("tutel-simgpu", 2),
    ("tutel-comm", 3),
    ("tutel-gate", 4),
    ("tutel-kernels", 5),
    ("tutel-experts", 6),
    ("tutel", 7),
    ("tutel-serve", 8),
    ("tutel-check", 8),
    ("tutel-bench", 9),
    ("tutel-harness", 9),
];

/// Crates at the bottom of the DAG: reachable from every layer,
/// depending on no tutel crate themselves (not even each other).
const BASE_CRATES: &[&str] = &["tutel-obs", "tutel-rt", "tutel-explore"];

fn tier(name: &str) -> Option<u32> {
    TIERS.iter().find(|(n, _)| *n == name).map(|&(_, t)| t)
}

/// One crate manifest, reduced to what the rule needs.
#[derive(Debug)]
pub struct Manifest {
    /// Workspace-relative path of the `Cargo.toml`.
    pub rel_path: String,
    /// `package.name`.
    pub name: String,
    /// `[dependencies]` entries as `(name, line)`.
    pub deps: Vec<(String, u32)>,
}

/// Minimal TOML scan: tracks `[section]` headers, captures
/// `package.name`, and collects the keys of `[dependencies]` —
/// `foo.workspace = true`, `foo = { .. }`, and `foo = "1"` all yield
/// `foo`.
pub fn parse_manifest(rel_path: &str, text: &str) -> Manifest {
    let mut section = String::new();
    let mut name = String::new();
    let mut deps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" && name.is_empty() {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(v) = rest.trim_start().strip_prefix('=') {
                    name = v.trim().trim_matches('"').to_string();
                }
            }
        }
        if section == "dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
                .collect();
            if !key.is_empty() {
                deps.push((key, idx as u32 + 1));
            }
        }
    }
    Manifest {
        rel_path: rel_path.to_string(),
        name,
        deps,
    }
}

/// Checks the layering rule over a set of parsed manifests.
pub fn check_layering(manifests: &[Manifest]) -> Vec<Diagnostic> {
    let mut sink = Vec::new();
    for m in manifests {
        let Some(crate_tier) = tier(&m.name) else {
            continue;
        };
        for (dep, line) in &m.deps {
            // Workspace-dependency keys map 1:1 to package names here.
            let Some(dep_tier) = tier(dep) else { continue };
            let violation = if BASE_CRATES.contains(&m.name.as_str()) {
                // Base crates: no tutel dependency at all.
                true
            } else if BASE_CRATES.contains(&dep.as_str()) {
                false
            } else {
                dep_tier >= crate_tier
            };
            if violation {
                sink.push(Diagnostic {
                    rule: "layering",
                    file: m.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "`{}` (layer {crate_tier}) must not depend on `{dep}` (layer \
                         {dep_tier}): the crate DAG points strictly downward, \
                         tensor → simgpu → comm → gate → kernels → experts → core → bench",
                        m.name
                    ),
                    snippet: text_snippet(m, *line),
                });
            }
        }
    }
    sink
}

fn text_snippet(m: &Manifest, line: u32) -> String {
    // The manifest text isn't retained; reconstruct from the dep name.
    m.deps
        .iter()
        .find(|(_, l)| *l == line)
        .map(|(d, _)| format!("{d} = …"))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(name: &str, deps: &[&str]) -> Manifest {
        let mut text = format!("[package]\nname = \"{name}\"\n\n[dependencies]\n");
        for d in deps {
            text.push_str(&format!("{d}.workspace = true\n"));
        }
        parse_manifest("crates/x/Cargo.toml", &text)
    }

    #[test]
    fn parses_names_and_dep_keys() {
        let m = parse_manifest(
            "crates/comm/Cargo.toml",
            "[package]\nname = \"tutel-comm\"\n[features]\nx = []\n[dependencies]\ntutel-tensor.workspace = true\ncrossbeam = { path = \"x\" }\n\n[dev-dependencies]\nproptest.workspace = true\n",
        );
        assert_eq!(m.name, "tutel-comm");
        assert_eq!(
            m.deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
            vec!["tutel-tensor", "crossbeam"]
        );
    }

    #[test]
    fn downward_deps_are_clean() {
        let ms = vec![
            manifest("tutel-comm", &["tutel-tensor", "tutel-simgpu", "tutel-obs"]),
            manifest("tutel", &["tutel-experts", "tutel-kernels"]),
        ];
        assert!(check_layering(&ms).is_empty());
    }

    #[test]
    fn upward_dep_is_flagged() {
        let ms = vec![manifest("tutel-gate", &["tutel-experts"])];
        let diags = check_layering(&ms);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "layering");
        assert!(diags[0].message.contains("tutel-gate"));
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn same_layer_dep_is_flagged() {
        let ms = vec![manifest("tutel-check", &["tutel-serve"])];
        assert_eq!(check_layering(&ms).len(), 1);
    }

    #[test]
    fn tools_may_depend_on_the_serving_tier() {
        // bench and harness sit above serve after the retier.
        let ms = vec![
            manifest("tutel-bench", &["tutel-serve", "tutel-check"]),
            manifest("tutel-harness", &["tutel-serve"]),
        ];
        assert!(check_layering(&ms).is_empty());
    }

    #[test]
    fn obs_is_reachable_from_all_but_depends_on_nothing() {
        let ms = vec![
            manifest("tutel-tensor", &["tutel-obs"]),
            manifest("tutel-obs", &["tutel-tensor"]),
        ];
        let diags = check_layering(&ms);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("tutel-obs"));
    }

    #[test]
    fn rt_is_a_base_crate_like_obs() {
        // Any layer may depend on tutel-rt…
        let ok = vec![
            manifest("tutel-tensor", &["tutel-rt", "tutel-obs"]),
            manifest("tutel", &["tutel-rt"]),
        ];
        assert!(check_layering(&ok).is_empty());
        // …but rt itself must depend on no tutel crate, obs included.
        let bad = vec![manifest("tutel-rt", &["tutel-obs"])];
        assert_eq!(check_layering(&bad).len(), 1);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let m = parse_manifest(
            "crates/tensor/Cargo.toml",
            "[package]\nname = \"tutel-tensor\"\n[dev-dependencies]\ntutel.workspace = true\n",
        );
        assert!(check_layering(&[m]).is_empty());
    }
}
