//! The rule framework: each source-level rule inspects one lexed
//! [`SourceFile`] and emits [`Diagnostic`]s; the layering rule works
//! on `Cargo.toml` manifests instead and lives in [`layering`].

use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod hot_alloc;
mod kernel_dispatch;
pub mod layering;
mod layout_doc;
mod no_block_in_overlap;
mod no_panic;
mod shim_hygiene;
mod test_determinism;
mod traced_collective;
mod unsafe_audit;

pub use hot_alloc::HotAlloc;
pub use kernel_dispatch::KernelDispatch;
pub use layout_doc::LayoutDoc;
pub use no_block_in_overlap::NoBlockInOverlap;
pub use no_panic::NoPanic;
pub use shim_hygiene::ShimHygiene;
pub use test_determinism::TestDeterminism;
pub use traced_collective::TracedCollective;
pub use unsafe_audit::UnsafeAudit;

/// The library crates whose non-test code must hold the strict
/// contracts (`no_panic`, `layout_doc`): everything on the
/// gate → encode → All-to-All → FFN → decode data path, plus the
/// serving tier that drives it request-by-request.
pub const STRICT_CRATES: &[&str] = &[
    "tutel-tensor",
    "tutel-comm",
    "tutel-gate",
    "tutel-kernels",
    "tutel-experts",
    "tutel",
    "tutel-serve",
];

/// A source-level lint rule.
pub trait Rule {
    /// Stable rule id used in diagnostics, baselines, and
    /// `check:allow` suppressions.
    fn id(&self) -> &'static str;
    /// Inspects one file, pushing findings into `sink`.
    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>);
}

/// All source-level rules, in diagnostic-output order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanic),
        Box::new(HotAlloc),
        Box::new(NoBlockInOverlap),
        Box::new(TracedCollective),
        Box::new(LayoutDoc),
        Box::new(ShimHygiene),
        Box::new(TestDeterminism),
        Box::new(UnsafeAudit),
        Box::new(KernelDispatch),
    ]
}

/// Runs only the rules that apply to test code over `file`. Test
/// trees (`tests/` at the root and per crate) are scanned with this
/// reduced set: the strict data-path contracts (`no_panic`,
/// `layout_doc`, …) deliberately exempt test code, while
/// `test_determinism` exists *for* it and `unsafe_audit` applies
/// everywhere — an unjustified `unsafe` is no safer in a test.
pub fn check_test_source(file: &SourceFile) -> Vec<Diagnostic> {
    let mut sink = file.bad_allows.clone();
    TestDeterminism.check_file(file, &mut sink);
    UnsafeAudit.check_file(file, &mut sink);
    sink.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    sink
}

/// Runs every source rule over `file`, including the framework's own
/// malformed-suppression diagnostics.
pub fn check_source(file: &SourceFile) -> Vec<Diagnostic> {
    let mut sink = file.bad_allows.clone();
    for rule in all_rules() {
        rule.check_file(file, &mut sink);
    }
    sink.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    sink
}
