//! Rule `test_determinism` (L1): no wall-clock time or unseeded
//! randomness in test code (`tests/` trees and the conformance
//! harness crate).
//!
//! The conformance matrix asserts *bitwise* equivalence and the fault
//! suite replays seeded plans; a test that consults `SystemTime` or an
//! entropy-seeded RNG can pass locally and flake in CI, and its
//! failures cannot be replayed from a seed. `Instant` is deliberately
//! allowed — bounding wall time ("clean failure must not hang") is a
//! legitimate test concern and never feeds assertion *values*.
//! Justified sites carry `// check:allow(test_determinism, reason)`.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::source::SourceFile;

pub struct TestDeterminism;

/// Identifiers that pull in wall-clock time or ambient entropy.
const BANNED_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "wall-clock time"),
    ("thread_rng", "an OS-entropy RNG"),
    ("from_entropy", "an OS-entropy seed"),
    ("getrandom", "OS entropy"),
    ("RandomState", "a randomly-keyed hasher"),
];

impl TestDeterminism {
    /// The rule covers test trees everywhere plus the whole harness
    /// crate (its library *is* test infrastructure).
    fn applies(file: &SourceFile) -> bool {
        file.crate_name == "tutel-harness"
            || file.rel_path.starts_with("tests/")
            || file.rel_path.contains("/tests/")
    }
}

impl Rule for TestDeterminism {
    fn id(&self) -> &'static str {
        "test_determinism"
    }

    fn check_file(&self, file: &SourceFile, sink: &mut Vec<Diagnostic>) {
        if !Self::applies(file) {
            return;
        }
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, tok) in code.iter().enumerate() {
            let offence =
                if let Some((_, what)) = BANNED_IDENTS.iter().find(|(id, _)| tok.is_ident(id)) {
                    Some(format!("`{}` introduces {what}", tok.text))
                } else if tok.is_ident("random")
                    && i >= 2
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && i >= 3
                    && code[i - 3].is_ident("rand")
                {
                    Some("`rand::random` draws from an unseeded RNG".to_string())
                } else {
                    None
                };
            if let Some(what) = offence {
                file.emit(
                    sink,
                    Diagnostic {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "{what}: tests must be replayable from an explicit seed — \
                             derive all inputs from a literal seed, or justify with \
                             `// check:allow(test_determinism, reason)`"
                        ),
                        snippet: file.snippet(tok.line),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(crate_name, path, src);
        let mut sink = Vec::new();
        TestDeterminism.check_file(&file, &mut sink);
        sink
    }

    #[test]
    fn flags_wall_clock_and_entropy_in_tests() {
        let src = "fn t() {\n    let s = SystemTime::now();\n    let mut r = thread_rng();\n    let x: u8 = rand::random();\n}\n";
        let diags = run("tutel-suite", "tests/foo.rs", src);
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn harness_crate_is_covered_everywhere() {
        let src = "fn f() { let h = RandomState::new(); }\n";
        assert_eq!(
            run("tutel-harness", "crates/harness/src/lib.rs", src).len(),
            1
        );
    }

    #[test]
    fn non_test_library_code_is_exempt() {
        let src = "fn f() { let s = SystemTime::now(); }\n";
        assert!(run("tutel-obs", "crates/obs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn instant_is_allowed_for_wall_time_bounds() {
        let src = "fn t() { let t0 = Instant::now(); assert!(t0.elapsed() < LIMIT); }\n";
        assert!(run("tutel-suite", "tests/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_one_site() {
        let src = "fn t() {\n    // check:allow(test_determinism, measuring entropy quality itself)\n    let r = thread_rng();\n    let s = SystemTime::now();\n}\n";
        let diags = run("tutel-suite", "crates/comm/tests/foo.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }
}
