//! The baseline ratchet: pre-existing violations are pinned in a
//! committed `check-baseline.json` as per-`file:rule` counts. A run
//! fails if any `file:rule` count *exceeds* its baselined value (new
//! violations), and the tool offers `--write-baseline` when counts
//! drop so the ratchet only ever tightens.

use std::collections::BTreeMap;

use crate::diag::{json_escape, Diagnostic};

/// Violation counts keyed by `"<file>:<rule>"` (BTreeMap for stable
/// serialization order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, u64>,
}

impl Baseline {
    /// Aggregates a diagnostic batch into ratchet counts.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut counts = BTreeMap::new();
        for d in diags {
            *counts.entry(format!("{}:{}", d.file, d.rule)).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Serializes to the committed JSON format.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"counts\": {");
        for (i, (k, v)) in self.counts.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{}\": {v}", json_escape(k)));
        }
        if !self.counts.is_empty() {
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON format (strict: objects, strings,
    /// and unsigned integers only).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let top = p.object()?;
        let mut counts = BTreeMap::new();
        let mut declared_total = None;
        for (key, val) in top {
            match (key.as_str(), val) {
                ("total", Value::Num(n)) => declared_total = Some(n),
                ("counts", Value::Obj(entries)) => {
                    for (k, v) in entries {
                        match v {
                            Value::Num(n) => {
                                counts.insert(k, n);
                            }
                            _ => return Err(format!("count for {k:?} is not an integer")),
                        }
                    }
                }
                (other, _) => return Err(format!("unexpected key {other:?} in baseline")),
            }
        }
        let baseline = Baseline { counts };
        if let Some(t) = declared_total {
            if t != baseline.total() {
                return Err(format!(
                    "baseline total {t} disagrees with the sum of counts {}",
                    baseline.total()
                ));
            }
        }
        Ok(baseline)
    }
}

/// Outcome of comparing a current run against the committed baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// `(key, current, baselined)` where current > baselined: failures.
    pub regressions: Vec<(String, u64, u64)>,
    /// `(key, current, baselined)` where 0 < current < baselined: the
    /// baseline should be re-written (tightened).
    pub improvements: Vec<(String, u64, u64)>,
    /// `(key, baselined)` where the key no longer produces any
    /// diagnostic at all. A fully-fixed entry left in the committed
    /// file is dead headroom — a later regression at that key would
    /// slide under the ratchet unnoticed — so stale entries fail the
    /// run until pruned with `--write-baseline`.
    pub stale: Vec<(String, u64)>,
}

impl Ratchet {
    pub fn compare(current: &Baseline, committed: &Baseline) -> Ratchet {
        let mut out = Ratchet::default();
        for (k, &cur) in &current.counts {
            let base = committed.counts.get(k).copied().unwrap_or(0);
            if cur > base {
                out.regressions.push((k.clone(), cur, base));
            } else if cur < base {
                out.improvements.push((k.clone(), cur, base));
            }
        }
        for (k, &base) in &committed.counts {
            if !current.counts.contains_key(k) {
                out.stale.push((k.clone(), base));
            }
        }
        out.improvements.sort();
        out.stale.sort();
        out
    }

    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty()
    }
}

enum Value {
    Num(u64),
    Str(#[allow(dead_code)] String),
    Obj(Vec<(String, Value)>),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => Ok(Value::Obj(self.object()?)),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = self.peek().filter(char::is_ascii_digit) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(c as u64 - '0' as u64))
                        .ok_or("integer overflow in baseline")?;
                    self.pos += 1;
                }
                Ok(Value::Num(n))
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    out.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, rule: &'static str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::from_diagnostics(&[
            diag("a.rs", "no_panic"),
            diag("a.rs", "no_panic"),
            diag("b.rs", "layout_doc"),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
        assert_eq!(parsed.counts["a.rs:no_panic"], 2);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.render()).unwrap(), b);
    }

    #[test]
    fn new_violation_fails_the_ratchet() {
        let committed = Baseline::from_diagnostics(&[diag("a.rs", "no_panic")]);
        let current =
            Baseline::from_diagnostics(&[diag("a.rs", "no_panic"), diag("a.rs", "no_panic")]);
        let r = Ratchet::compare(&current, &committed);
        assert!(!r.passed());
        assert_eq!(r.regressions, vec![("a.rs:no_panic".to_string(), 2, 1)]);
    }

    #[test]
    fn partial_fix_shows_as_improvement() {
        let committed =
            Baseline::from_diagnostics(&[diag("a.rs", "no_panic"), diag("a.rs", "no_panic")]);
        let current = Baseline::from_diagnostics(&[diag("a.rs", "no_panic")]);
        let r = Ratchet::compare(&current, &committed);
        assert!(r.passed());
        assert_eq!(r.improvements, vec![("a.rs:no_panic".to_string(), 1, 2)]);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn fully_fixed_entry_is_stale_and_fails_until_pruned() {
        let committed =
            Baseline::from_diagnostics(&[diag("a.rs", "no_panic"), diag("b.rs", "layout_doc")]);
        let current = Baseline::from_diagnostics(&[diag("a.rs", "no_panic")]);
        let r = Ratchet::compare(&current, &committed);
        assert!(!r.passed(), "stale headroom must fail the ratchet");
        assert!(r.regressions.is_empty());
        assert_eq!(r.stale, vec![("b.rs:layout_doc".to_string(), 1)]);
        // Rewriting the baseline from the current run prunes it.
        let r2 = Ratchet::compare(&current, &current.clone());
        assert!(r2.passed());
    }

    #[test]
    fn moving_a_violation_between_files_fails() {
        // Shrinking one file does not buy headroom in another.
        let committed = Baseline::from_diagnostics(&[diag("a.rs", "no_panic")]);
        let current = Baseline::from_diagnostics(&[diag("b.rs", "no_panic")]);
        assert!(!Ratchet::compare(&current, &committed).passed());
    }

    #[test]
    fn corrupt_baseline_is_an_error() {
        assert!(Baseline::parse("{\"total\": 5, \"counts\": {}}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
