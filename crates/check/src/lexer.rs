//! A small hand-rolled Rust lexer: just enough structure for the lint
//! rules in this crate, with no external dependencies.
//!
//! The token stream keeps comments (the rules need doc comments and
//! `// check:allow(...)` suppressions) and classifies string/char
//! literals precisely enough that nothing inside them is ever mistaken
//! for code — the property every rule here depends on. Compound
//! operators are emitted as single-character [`TokenKind::Punct`]
//! tokens; the rules match short token sequences, so `::` is simply
//! two adjacent `:` tokens.

/// Token classification; the payload text lives in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String/char/byte/numeric literal (text includes delimiters).
    Literal,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// `///` outer or `/** */` doc comment (text excludes the marker).
    DocComment,
    /// `//!` or `/*! */` inner doc comment (text excludes the marker).
    InnerDocComment,
    /// Plain `//` or `/* */` comment (text excludes the marker).
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True for the comment kinds (doc or plain).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::DocComment | TokenKind::InnerDocComment | TokenKind::Comment
        )
    }

    /// True for a punct token of exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: lints
/// degrade gracefully on torn files.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    /// Pushes a token whose text was accumulated as raw bytes; the
    /// source is valid UTF-8 and tokens split only at ASCII
    /// boundaries, so this never actually loses anything.
    fn push_bytes(&mut self, kind: TokenKind, bytes: Vec<u8>, line: u32) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        self.out.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_ahead(1)) => {
                    self.raw_string(1)
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string();
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.raw_ahead(2)) => {
                    self.raw_string(2)
                }
                b'b' if self.peek(1) == b'\'' => self.byte_char(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    self.push(TokenKind::Punct, (c as char).to_string(), line);
                }
            }
        }
    }

    /// True if `r#...#"` starts at `pos + offset` (raw string with hashes).
    fn raw_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == b'#' {
            i += 1;
        }
        i > offset && self.peek(i) == b'"'
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let kind = match (self.peek(0), self.peek(1)) {
            // `////...` is a plain comment by rustdoc's rules.
            (b'/', b'/') => TokenKind::Comment,
            (b'/', _) => {
                self.bump();
                TokenKind::DocComment
            }
            (b'!', _) => {
                self.bump();
                TokenKind::InnerDocComment
            }
            _ => TokenKind::Comment,
        };
        let mut text = Vec::new();
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            text.push(self.bump());
        }
        self.push_bytes(kind, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let kind = match self.peek(0) {
            // `/**/` is empty, `/***` is plain; `/**x` is doc.
            b'*' if self.peek(1) != b'*' && self.peek(1) != b'/' => {
                self.bump();
                TokenKind::DocComment
            }
            b'!' => {
                self.bump();
                TokenKind::InnerDocComment
            }
            _ => TokenKind::Comment,
        };
        let mut depth = 1usize;
        let mut text = Vec::new();
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
                text.extend_from_slice(b"/*");
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
                if depth > 0 {
                    text.extend_from_slice(b"*/");
                }
            } else {
                text.push(self.bump());
            }
        }
        self.push_bytes(kind, text, line);
    }

    fn string(&mut self) {
        let line = self.line;
        let mut text = Vec::new();
        text.push(self.bump()); // opening quote
        while self.pos < self.src.len() {
            let c = self.bump();
            text.push(c);
            if c == b'\\' {
                if self.pos < self.src.len() {
                    text.push(self.bump());
                }
            } else if c == b'"' {
                break;
            }
        }
        self.push_bytes(TokenKind::Literal, text, line);
    }

    /// Raw (byte) string: `prefix_len` covers the `r` / `br` prefix.
    fn raw_string(&mut self, prefix_len: usize) {
        let line = self.line;
        let mut text = Vec::new();
        for _ in 0..prefix_len {
            text.push(self.bump());
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            text.push(self.bump());
        }
        text.push(self.bump()); // opening quote
        while self.pos < self.src.len() {
            let c = self.bump();
            text.push(c);
            if c == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == b'#' {
                    matched += 1;
                    text.push(self.bump());
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push_bytes(TokenKind::Literal, text, line);
    }

    fn byte_char(&mut self) {
        let line = self.line;
        let mut text = Vec::new();
        text.push(self.bump()); // b
        text.push(self.bump()); // '
        loop {
            let c = self.bump();
            if c == 0 {
                break;
            }
            text.push(c);
            if c == b'\\' {
                text.push(self.bump());
            } else if c == b'\'' {
                break;
            }
        }
        self.push_bytes(TokenKind::Literal, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` followed by a non-quote is a lifetime; `'a'` is a char.
        let next = self.peek(1);
        let is_lifetime =
            (next == b'_' || next.is_ascii_alphabetic()) && self.peek(2) != b'\'' && next != b'\\';
        if is_lifetime {
            self.bump(); // '
            let mut text = Vec::new();
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                text.push(self.bump());
            }
            self.push_bytes(TokenKind::Lifetime, text, line);
            return;
        }
        let mut text = Vec::new();
        text.push(self.bump()); // '
        loop {
            let c = self.bump();
            if c == 0 {
                break;
            }
            text.push(c);
            if c == b'\\' {
                text.push(self.bump());
            } else if c == b'\'' {
                break;
            }
        }
        self.push_bytes(TokenKind::Literal, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = Vec::new();
        text.push(self.bump());
        loop {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() {
                text.push(self.bump());
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `0.5` continues the number; `0..5` does not.
                text.push(self.bump());
            } else if (c == b'+' || c == b'-') && matches!(text.last(), Some(b'e') | Some(b'E')) {
                // Exponent sign in `1e-3`.
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push_bytes(TokenKind::Literal, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = Vec::new();
        loop {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push_bytes(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn main() {\n    x.unwrap();\n}");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "call .unwrap() and panic!";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("panic!")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds("let a = r#\"quote \" inside\"#; let b = \"esc \\\" q\"; b");
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].1.contains("quote \" inside"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
                .count(),
            2
        );
    }

    #[test]
    fn comment_kinds() {
        let src = "//! inner\n/// outer doc\n// plain\n/* block */\n/** block doc */\nfn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::InnerDocComment);
        assert_eq!(toks[1].kind, TokenKind::DocComment);
        assert_eq!(toks[1].text.trim(), "outer doc");
        assert_eq!(toks[2].kind, TokenKind::Comment);
        assert_eq!(toks[3].kind, TokenKind::Comment);
        assert_eq!(toks[4].kind, TokenKind::DocComment);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ fn");
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert!(toks[0].text.contains("/* b */"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 { let x = 1.5e-3; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "0"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.5e-3"));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 2);
    }
}
