//! Per-file source model shared by the lint rules: the token stream,
//! raw lines, `// check:allow(rule, reason)` suppressions, and the
//! line spans belonging to `#[cfg(test)]` / `#[test]` code.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};

/// One parsed `check:allow` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment sits on; it suppresses this line and the next.
    pub line: u32,
    pub rule: String,
    #[allow(dead_code)]
    pub reason: String,
}

/// A lexed source file ready for rule evaluation.
pub struct SourceFile {
    /// Package name of the owning crate (e.g. `tutel-comm`).
    pub crate_name: String,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Full token stream including comments.
    pub tokens: Vec<Token>,
    /// `is_test_line[i]` ⇔ line `i + 1` is inside test-only code.
    pub is_test_line: Vec<bool>,
    /// Parsed suppressions.
    pub allows: Vec<Allow>,
    /// Malformed `check:allow` comments, reported as `bad_allow`.
    pub bad_allows: Vec<Diagnostic>,
}

impl SourceFile {
    pub fn parse(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let is_test_line = test_lines(&tokens, lines.len());
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        for t in &tokens {
            // Suppressions live in plain `//` comments only; doc
            // comments mentioning the grammar are prose.
            if t.kind != TokenKind::Comment {
                continue;
            }
            match parse_allow(&t.text) {
                AllowParse::None => {}
                AllowParse::Ok { rule, reason } => allows.push(Allow {
                    line: t.line,
                    rule,
                    reason,
                }),
                AllowParse::Malformed(why) => bad_allows.push(Diagnostic {
                    rule: "bad_allow",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "malformed suppression ({why}); the grammar is \
                         `// check:allow(rule_id, reason)` with a non-empty reason"
                    ),
                    snippet: lines
                        .get(t.line as usize - 1)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                }),
            }
        }
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            lines,
            tokens,
            is_test_line,
            allows,
            bad_allows,
        }
    }

    /// The trimmed source line at 1-based `line`.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True if line `line` is inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_line
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// True if an allow for `rule` covers `line` (the comment's own
    /// line or the line directly below it).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// Emits `d` unless suppressed by a matching `check:allow`.
    pub fn emit(&self, sink: &mut Vec<Diagnostic>, d: Diagnostic) {
        if !self.allowed(d.rule, d.line) {
            sink.push(d);
        }
    }
}

enum AllowParse {
    None,
    Ok { rule: String, reason: String },
    Malformed(&'static str),
}

/// Parses `check:allow(rule, reason)` out of a comment body.
fn parse_allow(comment: &str) -> AllowParse {
    let Some(start) = comment.find("check:allow") else {
        return AllowParse::None;
    };
    let rest = &comment[start + "check:allow".len()..];
    // Without an argument list this is a prose mention, not a
    // (malformed) suppression attempt.
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::None;
    };
    let Some(end) = rest.rfind(')') else {
        return AllowParse::Malformed("missing closing `)`");
    };
    let body = &rest[..end];
    let Some((rule, reason)) = body.split_once(',') else {
        return AllowParse::Malformed("missing `, reason` after the rule id");
    };
    let rule = rule.trim();
    let reason = reason.trim();
    if rule.is_empty() || !rule.chars().all(|c| c == '_' || c.is_ascii_alphanumeric()) {
        return AllowParse::Malformed("rule id must be a bare identifier");
    }
    if reason.is_empty() {
        return AllowParse::Malformed("reason must be non-empty");
    }
    AllowParse::Ok {
        rule: rule.to_string(),
        reason: reason.to_string(),
    }
}

/// Marks every line covered by `#[cfg(test)]` items or `#[test]`
/// functions. Works on the token stream: attributes are recognized
/// structurally, then the following item's extent is brace-matched.
fn test_lines(tokens: &[Token], nlines: usize) -> Vec<bool> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut marks = vec![false; nlines];
    let mut i = 0usize;
    while i < code.len() {
        if let Some(after_attr) = match_test_attribute(&code, i) {
            let start_line = code[i].line;
            // Skip any further attributes on the same item.
            let mut j = after_attr;
            while j < code.len() && code[j].is_punct('#') {
                j = skip_attribute(&code, j);
            }
            let end_line = item_end_line(&code, j).unwrap_or(start_line);
            let lo = start_line as usize - 1;
            let hi = (end_line as usize).min(nlines);
            for m in marks.iter_mut().take(hi).skip(lo) {
                *m = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    marks
}

/// If `code[i..]` starts a `#[cfg(test)]` or `#[test]` attribute,
/// returns the index just past its closing `]`.
fn match_test_attribute(code: &[&Token], i: usize) -> Option<usize> {
    if !code[i].is_punct('#') || i + 2 >= code.len() || !code[i + 1].is_punct('[') {
        return None;
    }
    let is_test = code[i + 2].is_ident("test")
        || (code[i + 2].is_ident("cfg")
            && code.get(i + 3).is_some_and(|t| t.is_punct('('))
            && code.get(i + 4).is_some_and(|t| t.is_ident("test")));
    if !is_test {
        return None;
    }
    Some(skip_attribute(code, i))
}

/// Inclusive 1-based line ranges claimed by `// check:<marker>`
/// comments: each marker claims the next item (function) that follows
/// it, skipping attributes. Shared by the span-scoped rules
/// (`hot_alloc` via `check:hot`, `no_block_in_overlap` via
/// `check:overlap-drain`).
pub(crate) fn marker_spans(file: &SourceFile, marker: &str) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut spans = Vec::new();
    for t in &file.tokens {
        if t.kind != TokenKind::Comment || !t.text.contains(marker) {
            continue;
        }
        let Some(mut j) = code.iter().position(|c| c.line > t.line) else {
            continue;
        };
        while j < code.len() && code[j].is_punct('#') {
            j = skip_attribute(&code, j);
        }
        if let (Some(start), Some(end)) = (code.get(j).map(|c| c.line), item_end_line(&code, j)) {
            spans.push((start, end));
        }
    }
    spans
}

/// Skips a `#[...]` attribute starting at `i` (pointing at `#`),
/// returning the index past the matching `]`.
pub(crate) fn skip_attribute(code: &[&Token], i: usize) -> usize {
    let mut j = i + 1;
    if j >= code.len() || !code[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        if code[j].is_punct('[') {
            depth += 1;
        } else if code[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Line where the item starting at `code[i]` ends: at the matching
/// `}` of its first brace block, or at a `;` that precedes any `{`.
pub(crate) fn item_end_line(code: &[&Token], i: usize) -> Option<u32> {
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct(';') {
            return Some(code[j].line);
        }
        if code[j].is_punct('{') {
            let mut depth = 0i32;
            while j < code.len() {
                if code[j].is_punct('{') {
                    depth += 1;
                } else if code[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(code[j].line);
                    }
                }
                j += 1;
            }
            return code.last().map(|t| t.line);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("c", "f.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(6));
        assert!(f.in_test(7));
    }

    #[test]
    fn test_fn_outside_mod_is_marked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    b();\n}\nfn c() {}\n";
        let f = SourceFile::parse("c", "f.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn allow_covers_its_line_and_the_next() {
        let src =
            "// check:allow(no_panic, justified here)\nlet x = y.unwrap();\nlet z = q.unwrap();\n";
        let f = SourceFile::parse("c", "f.rs", src);
        assert!(f.allowed("no_panic", 1));
        assert!(f.allowed("no_panic", 2));
        assert!(!f.allowed("no_panic", 3));
        assert!(!f.allowed("layout_doc", 2));
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allow_is_reported() {
        let src = "// check:allow(no_panic)\nlet x = y.unwrap();\n";
        let f = SourceFile::parse("c", "f.rs", src);
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 1);
        assert_eq!(f.bad_allows[0].rule, "bad_allow");
        assert_eq!(f.bad_allows[0].line, 1);
    }

    #[test]
    fn allow_with_empty_reason_is_malformed() {
        let f = SourceFile::parse("c", "f.rs", "// check:allow(no_panic,   )\n");
        assert_eq!(f.bad_allows.len(), 1);
    }

    #[test]
    fn prose_mentions_are_not_suppressions() {
        // Doc comments never carry suppressions, and a bare mention
        // without an argument list is prose even in a plain comment.
        let src =
            "/// Suppress with `check:allow(rule, reason)`.\n// see check:allow docs\nfn f() {}\n";
        let f = SourceFile::parse("c", "f.rs", src);
        assert!(f.allows.is_empty());
        assert!(f.bad_allows.is_empty());
    }
}
