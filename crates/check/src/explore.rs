//! The shared schedule-exploration framework, re-exported from
//! `tutel-explore` plus the bridges into this crate's diagnostic
//! formats.
//!
//! Both dynamic checkers run on it: [`crate::sweep`] (the comm
//! scheduler sweep; `comm::sched` itself draws its choices and folds
//! its signatures through the same [`Chooser`] / [`SigHash`]) and
//! [`crate::race`] (the happens-before race checker). The contract:
//! one `u64` seed names one schedule, candidates are canonically
//! ordered before each draw, every defect is a [`Finding`] carrying
//! its replay seed, and per-seed structure signatures assert the
//! determinism contract structurally.
//!
//! Bridges:
//! * [`finding_to_diagnostic`] keys a dynamic finding like a lint
//!   diagnostic (`file:rule`), so race findings can ride the same
//!   baseline ratchet as source rules.
//! * [`finding_to_anomaly`] types a finding as a `tutel-obs`
//!   [`AnomalyRecord`], so harness scenarios land checker findings in
//!   the same audit ring as stragglers and imbalance.

use tutel_obs::AnomalyRecord;

pub use tutel_explore::{
    derive_seed, splitmix64, sweep_seeds, Chooser, Finding, SeedRun, SigHash, SweepOutcome, VClock,
    FNV_OFFSET, FNV_PRIME,
};

use crate::diag::Diagnostic;

/// Converts a dynamic finding into a lint-style [`Diagnostic`] so it
/// ratchets under the same `file:rule` baseline keys as source rules.
/// The "file" is the finding's first captured site when it has one,
/// else the synthetic `runtime` location.
pub fn finding_to_diagnostic(f: &Finding) -> Diagnostic {
    let (file, line) = f
        .sites
        .first()
        .and_then(|s| {
            let (path, rest) = s.rsplit_once(':')?;
            Some((path.to_string(), rest.parse().ok()?))
        })
        .unwrap_or_else(|| ("runtime".to_string(), 0));
    Diagnostic {
        rule: f.rule,
        file,
        line,
        message: format!("{} (replay seed {})", f.detail, f.seed),
        snippet: f.sites.join(", "),
    }
}

/// Types a finding as an [`AnomalyRecord`] for the telemetry audit
/// ring: kind `check.<rule>`, the replay seed stamped as the step.
pub fn finding_to_anomaly(f: &Finding) -> AnomalyRecord {
    let detail = if f.sites.is_empty() {
        f.detail.clone()
    } else {
        format!("{} [sites: {}]", f.detail, f.sites.join(", "))
    };
    AnomalyRecord {
        kind: format!("check.{}", f.rule),
        rank: None,
        request_id: None,
        ratio: 1.0,
        detail,
        step: Some(f.seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_with_site_keys_like_a_lint_diagnostic() {
        let f = Finding::new("arena_alias", 7, "use after put".to_string())
            .with_sites(vec!["crates/core/src/overlap.rs:219".to_string()]);
        let d = finding_to_diagnostic(&f);
        assert_eq!(d.rule, "arena_alias");
        assert_eq!(d.file, "crates/core/src/overlap.rs");
        assert_eq!(d.line, 219);
        assert!(d.message.contains("replay seed 7"));
    }

    #[test]
    fn finding_without_site_uses_runtime_location() {
        let f = Finding::new("leak", 3, "job never joined".to_string());
        let d = finding_to_diagnostic(&f);
        assert_eq!(d.file, "runtime");
        assert_eq!(d.line, 0);
    }

    #[test]
    fn anomaly_carries_rule_kind_and_replay_seed() {
        let f = Finding::new("race", 11, "double claim".to_string());
        let a = finding_to_anomaly(&f);
        assert_eq!(a.kind, "check.race");
        assert_eq!(a.step, Some(11));
    }
}
