//! Lint diagnostics: one finding with location, rule id, message, and
//! the offending source line, renderable as human text or JSON.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`no_panic`, `layout_doc`, `layering`,
    /// `shim_hygiene`, or the framework's own `bad_allow`).
    pub rule: &'static str,
    /// Workspace-relative path (always `/`-separated).
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// What went wrong and how to fix or suppress it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Minimal JSON string escaping (the only JSON writer this crate
/// needs; nothing here nests beyond strings and integers).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a diagnostic batch as a JSON array (stable field order).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.snippet),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_location_rule_and_snippet() {
        let d = Diagnostic {
            rule: "no_panic",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "`.unwrap()` in library code".into(),
            snippet: "let v = m.get(k).unwrap();".into(),
        };
        let s = d.to_string();
        assert!(s.contains("crates/x/src/lib.rs:7: [no_panic]"));
        assert!(s.contains("| let v = m.get(k).unwrap();"));
    }

    #[test]
    fn json_is_escaped() {
        let d = Diagnostic {
            rule: "layout_doc",
            file: "a.rs".into(),
            line: 1,
            message: "needs \"layout\"".into(),
            snippet: "fn f(x: &[f32])".into(),
        };
        let j = diagnostics_to_json(&[d]);
        assert!(j.contains("needs \\\"layout\\\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
