//! Happens-before race & arena-aliasing checker for the `rt` runtime,
//! on the `check::explore` framework.
//!
//! ## Clock model
//!
//! [`analyze`] replays a recorded [`RtEvent`] log with one vector
//! clock per thread, ticking the local component on every event and
//! joining clocks along the runtime's synchronization edges:
//!
//! * `JobSubmit → ChunkClaim` — a claimer observes everything the
//!   submitter had done at submission;
//! * `ChunkDone → JobJoin` — the joiner observes every chunk's work
//!   (each `ChunkDone` joins into the job's completion clock, which
//!   `JobJoin` joins from);
//! * `ArenaPut → recycled ArenaTake` — a recycled buffer carries the
//!   putter's clock to the taker.
//!
//! Two accesses to the same buffer with *concurrent* clocks and no
//! ownership justification are a race.
//!
//! ## Arena shadow state
//!
//! Every buffer address seen in the log runs a two-state ownership
//! machine — `Owned(thread, take-clock, take-site)` after a take,
//! `Free(put-clock, put-site)` after a retained put — and each event
//! is checked against it: a recycled take of an `Owned` buffer is a
//! double checkout, a put of a `Free` buffer is a double put, an
//! access probe on a `Free` buffer is a use-after-put, and an access
//! by a non-owner that does **not** happen-after the owner's take is
//! a use-after-recycle. Evicted puts and `Arena::clear` *forget*
//! shadows instead (the allocator may reuse those addresses), and a
//! fresh (non-recycled) take unconditionally resets the shadow for
//! the same reason. One driver obligation follows from address-based
//! tracking: checked drivers must `put` back every taken buffer
//! rather than dropping it, or its stale `Owned` shadow could
//! misattribute a later allocation at the same address.
//!
//! Thread hygiene: leak checks and structure signatures consider only
//! *logical* threads (ids below [`AUTO_THREAD_BASE`], i.e. the
//! checked workload), so unrelated traffic recorded mid-session can
//! never produce a false finding.
//!
//! ## Combined surface
//!
//! [`combined_run`] drives `core::overlap`'s two-stream executor over
//! the seeded comm scheduler while each chunk's compute runs on the
//! *simulated* pool with a steal order drawn from the same seed — one
//! sweep explores compute and comm interleavings together. Per-seed
//! structure signatures (chunk grids, overlap order marks, output
//! bits) assert the determinism contract structurally via
//! [`sweep_seeds`].
//!
//! ## Selftests
//!
//! Three intentionally planted bugs prove the checker has teeth, each
//! named with a replayable seed: [`bug_use_after_put`] (a stale
//! reference outlives a put), [`bug_stolen_reduction`] (a reduction
//! folded in claim order), and [`bug_shutdown_leak`] (a pool shutdown
//! strands an unjoined job).

use std::collections::BTreeMap;

use tutel_comm::sched::run_sched;
use tutel_comm::AllToAllAlgo;
use tutel_explore::{derive_seed, sweep_seeds, Chooser, Finding, SeedRun, SigHash, VClock};
use tutel_rt::chk::{self, RtEvent, AUTO_THREAD_BASE};
use tutel_simgpu::Topology;

/// What [`analyze`] extracted from one event log.
#[derive(Debug)]
pub struct RaceAnalysis {
    /// Happens-before, aliasing, and leak findings.
    pub findings: Vec<Finding>,
    /// Schedule-independent structural signature: per logical thread
    /// (in id order), its job grids and order marks in program order.
    pub structure: u64,
    /// Events analyzed.
    pub events: usize,
}

fn site_str(site: chk::Site) -> String {
    format!("{}:{}", site.file(), site.line())
}

fn is_logical(thread: usize) -> bool {
    thread < AUTO_THREAD_BASE
}

fn label(thread: usize) -> String {
    if is_logical(thread) {
        format!("logical thread {thread}")
    } else {
        format!("worker thread #{}", thread - AUTO_THREAD_BASE)
    }
}

/// Per-buffer ownership shadow state.
enum Shadow {
    /// Checked out: `(owner thread id, clock at take, take site)`.
    Owned(usize, VClock, String),
    /// Retained in an arena: `(clock at put, put site)`.
    Free(VClock, String),
}

struct JobState {
    total: usize,
    submitter: usize,
    submit: VClock,
    claimed: BTreeMap<usize, usize>,
    done: BTreeMap<usize, usize>,
    completion: VClock,
    joined: bool,
}

/// Dense per-thread clock registry.
#[derive(Default)]
struct Threads {
    ids: Vec<usize>,
    clocks: Vec<VClock>,
}

impl Threads {
    fn index(&mut self, id: usize) -> usize {
        if let Some(i) = self.ids.iter().position(|&t| t == id) {
            return i;
        }
        self.ids.push(id);
        self.clocks.push(VClock::new());
        self.ids.len() - 1
    }
}

/// Replays `events` through the clock model and shadow machine;
/// `seed` stamps every finding for replay.
pub fn analyze(events: &[RtEvent], seed: u64) -> RaceAnalysis {
    let mut threads = Threads::default();
    let mut jobs: BTreeMap<u64, JobState> = BTreeMap::new();
    let mut buffers: BTreeMap<usize, Shadow> = BTreeMap::new();
    let mut sigs: BTreeMap<usize, SigHash> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();

    for ev in events {
        let id = ev.thread();
        let ti = threads.index(id);
        threads.clocks[ti].tick(ti);
        match *ev {
            RtEvent::JobSubmit {
                thread,
                job,
                total,
                regions,
            } => {
                jobs.insert(
                    job,
                    JobState {
                        total,
                        submitter: thread,
                        submit: threads.clocks[ti].clone(),
                        claimed: BTreeMap::new(),
                        done: BTreeMap::new(),
                        completion: VClock::new(),
                        joined: false,
                    },
                );
                if is_logical(thread) {
                    let sig = sigs.entry(thread).or_default();
                    sig.mix_str("grid");
                    sig.mix_many(&[total as u64, regions as u64]);
                }
            }
            RtEvent::ChunkClaim {
                thread, job, chunk, ..
            } => {
                let Some(st) = jobs.get_mut(&job) else {
                    continue; // submitted before the session began
                };
                // JobSubmit → ChunkClaim edge.
                threads.clocks[ti].join(&st.submit);
                if let Some(prev) = st.claimed.insert(chunk, thread) {
                    findings.push(Finding::new(
                        "race",
                        seed,
                        format!(
                            "job {job}: chunk {chunk} claimed twice ({} then {})",
                            label(prev),
                            label(thread)
                        ),
                    ));
                }
            }
            RtEvent::ChunkDone { thread, job, chunk } => {
                let Some(st) = jobs.get_mut(&job) else {
                    continue;
                };
                st.completion.join(&threads.clocks[ti]);
                if let Some(prev) = st.done.insert(chunk, thread) {
                    findings.push(Finding::new(
                        "race",
                        seed,
                        format!(
                            "job {job}: chunk {chunk} executed twice ({} then {})",
                            label(prev),
                            label(thread)
                        ),
                    ));
                }
                if st.joined {
                    findings.push(Finding::new(
                        "race",
                        seed,
                        format!(
                            "job {job}: chunk {chunk} finished on {} after the \
                             submitter's join returned — the task closure was \
                             dereferenced outside its guaranteed lifetime",
                            label(thread)
                        ),
                    ));
                }
            }
            RtEvent::JobJoin { job, .. } => {
                let Some(st) = jobs.get_mut(&job) else {
                    continue;
                };
                st.joined = true;
                // ChunkDone → JobJoin edge (via the completion clock).
                let completion = st.completion.clone();
                threads.clocks[ti].join(&completion);
                if st.done.len() < st.total {
                    findings.push(Finding::new(
                        "race",
                        seed,
                        format!(
                            "job {job}: join returned with only {}/{} chunks executed",
                            st.done.len(),
                            st.total
                        ),
                    ));
                }
            }
            RtEvent::ArenaTake {
                thread,
                buf,
                recycled,
                site,
                ..
            } => {
                let site = site_str(site);
                if recycled {
                    match buffers.get(&buf) {
                        Some(Shadow::Free(put_clock, _)) => {
                            // ArenaPut → recycled ArenaTake edge.
                            let put_clock = put_clock.clone();
                            threads.clocks[ti].join(&put_clock);
                        }
                        Some(Shadow::Owned(owner, _, take_site)) => {
                            findings.push(
                                Finding::new(
                                    "arena_alias",
                                    seed,
                                    format!(
                                        "buffer {buf:#x} recycled to {} while still \
                                         checked out by {} — two owners alias one \
                                         allocation",
                                        label(thread),
                                        label(*owner)
                                    ),
                                )
                                .with_sites(vec![site.clone(), take_site.clone()]),
                            );
                        }
                        // Recycled from pre-session (or prewarm) stock:
                        // no edge to establish.
                        None => {}
                    }
                }
                // Fresh takes reset unconditionally: the allocator may
                // hand back an address whose previous life the log saw.
                buffers.insert(buf, Shadow::Owned(thread, threads.clocks[ti].clone(), site));
            }
            RtEvent::ArenaPut {
                thread,
                buf,
                retained,
                site,
                ..
            } => {
                let site = site_str(site);
                if let Some(Shadow::Free(_, prev_site)) = buffers.get(&buf) {
                    findings.push(
                        Finding::new(
                            "arena_alias",
                            seed,
                            format!(
                                "buffer {buf:#x} returned twice with no intervening \
                                 take (second return by {})",
                                label(thread)
                            ),
                        )
                        .with_sites(vec![site.clone(), prev_site.clone()]),
                    );
                }
                if retained {
                    buffers.insert(buf, Shadow::Free(threads.clocks[ti].clone(), site));
                } else {
                    // Evicted: freed back to the allocator; the address
                    // no longer names this buffer.
                    buffers.remove(&buf);
                }
            }
            RtEvent::ArenaStock { buf, .. } => {
                buffers.insert(
                    buf,
                    Shadow::Free(threads.clocks[ti].clone(), "arena prewarm".to_string()),
                );
            }
            RtEvent::ArenaClear { .. } => {
                // Every retained buffer was freed; forget all Free
                // shadows (checked-out buffers are unaffected).
                buffers.retain(|_, s| matches!(s, Shadow::Owned(..)));
            }
            RtEvent::ArenaAccess {
                thread,
                buf,
                write,
                site,
            } => {
                let verb = if write { "wrote" } else { "read" };
                match buffers.get(&buf) {
                    Some(Shadow::Free(_, put_site)) => {
                        findings.push(
                            Finding::new(
                                "arena_alias",
                                seed,
                                format!(
                                    "{} {verb} buffer {buf:#x} after it was returned \
                                     to the arena (use-after-put)",
                                    label(thread)
                                ),
                            )
                            .with_sites(vec![site_str(site), put_site.clone()]),
                        );
                    }
                    // A non-owner access is fine only if it
                    // happens-after the owner's take (e.g. a pool
                    // worker filling the owner's buffer inside a job
                    // the owner submitted after taking it).
                    Some(Shadow::Owned(owner, take_clock, take_site))
                        if *owner != id && !take_clock.leq(&threads.clocks[ti]) =>
                    {
                        findings.push(
                            Finding::new(
                                "arena_alias",
                                seed,
                                format!(
                                    "{} {verb} buffer {buf:#x} concurrently with \
                                     its checkout by {} (use-after-recycle: no \
                                     happens-before edge from the take)",
                                    label(thread),
                                    label(*owner)
                                ),
                            )
                            .with_sites(vec![site_str(site), take_site.clone()]),
                        );
                    }
                    Some(Shadow::Owned(..)) | None => {}
                }
            }
            RtEvent::OrderMark {
                thread,
                label: mark,
                value,
            } => {
                if is_logical(thread) {
                    let sig = sigs.entry(thread).or_default();
                    sig.mix_str(mark);
                    sig.mix(value);
                }
            }
            RtEvent::Shutdown { .. } => {}
        }
    }

    // A job submitted by the checked workload and never joined is a
    // worker leak: the pool went down (or the log ended) with the
    // submitter still owed chunks.
    for (job, st) in &jobs {
        if is_logical(st.submitter) && !st.joined {
            findings.push(Finding::new(
                "leak",
                seed,
                format!(
                    "job {job} (submitted by {}) was never joined: {}/{} chunks \
                     executed when the run ended — worker leak at shutdown",
                    label(st.submitter),
                    st.done.len(),
                    st.total
                ),
            ));
        }
    }

    let mut structure = SigHash::new();
    for (thread, sig) in &sigs {
        structure.mix(*thread as u64);
        structure.mix(sig.value());
    }
    RaceAnalysis {
        findings,
        structure: structure.value(),
        events: events.len(),
    }
}

/// Shape of the combined overlap+pool+comm surface.
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    pub nnodes: usize,
    pub gpus_per_node: usize,
    /// Overlap pipeline degree (chunks per rank).
    pub degree: usize,
    /// Elements each rank sends to each peer per chunk.
    pub per: usize,
    /// Simulated pool participants per compute call.
    pub sim_workers: usize,
    /// Elements per simulated pool chunk.
    pub grain: usize,
}

impl Default for RaceConfig {
    fn default() -> RaceConfig {
        RaceConfig {
            nnodes: 2,
            gpus_per_node: 2,
            degree: 2,
            per: 3,
            sim_workers: 3,
            grain: 2,
        }
    }
}

/// Runs the combined surface once under `seed`: `core::overlap`'s
/// two-stream executor on every rank of the seeded comm scheduler,
/// with each chunk's FFN stand-in parallelized on the simulated pool
/// whose steal order is drawn from the same seed (per-rank/per-chunk
/// sub-streams via [`derive_seed`]). Returns the [`SeedRun`] for
/// [`sweep_seeds`]: comm deliveries + sim claim sequences as the
/// schedule signature, grids + order marks + output bits as the
/// structure signature, and any analyzer or scheduler defect as
/// findings.
pub fn combined_run(cfg: &RaceConfig, seed: u64) -> SeedRun {
    let topo = Topology::new(cfg.nnodes, cfg.gpus_per_node);
    let world = topo.world_size();
    let len = world * cfg.per;
    let session = chk::Session::begin();
    let (results, report) = run_sched(topo, seed, |comm| {
        let rank = comm.rank();
        chk::with_logical_thread(rank + 1, || {
            let input: Vec<Vec<f32>> = (0..cfg.degree)
                .map(|c| {
                    (0..len)
                        .map(|j| (rank * 1000 + c * 100 + j) as f32 * 1e-3)
                        .collect()
                })
                .collect();
            tutel::overlap::run_overlapped(comm, AllToAllAlgo::Linear, &input, |i, flex| {
                compute_on_sim_pool(cfg, seed, rank, i, flex)
            })
        })
    });
    let events = session.finish();
    let mut analysis = analyze(&events, seed);
    let mut findings = std::mem::take(&mut analysis.findings);

    // Schedule signature: the comm delivery fold plus each logical
    // thread's claim sequence in its own program order (per-thread
    // subsequences are schedule-chosen but deterministic per seed).
    let mut sig = SigHash::new();
    sig.mix(report.signature);
    let mut claim_threads: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            RtEvent::ChunkClaim { thread, .. } if is_logical(*thread) => Some(*thread),
            _ => None,
        })
        .collect();
    claim_threads.sort_unstable();
    claim_threads.dedup();
    for t in claim_threads {
        sig.mix(t as u64);
        for ev in &events {
            if let RtEvent::ChunkClaim {
                thread,
                chunk,
                region,
                steal,
                ..
            } = ev
            {
                if *thread == t {
                    sig.mix_many(&[*chunk as u64, *region as u64, u64::from(*steal)]);
                }
            }
        }
    }

    // Structure signature: analyzer folds (grids + order marks) plus
    // every rank's combined output bits in rank/chunk order.
    let mut structure = SigHash::new();
    structure.mix(analysis.structure);
    if let Some(d) = &report.deadlock {
        findings.push(Finding::new(
            "deadlock",
            seed,
            format!("combined surface wedged: {d}"),
        ));
    }
    if report.undelivered > 0 {
        findings.push(Finding::new(
            "message-leak",
            seed,
            format!("{} message(s) undelivered at run end", report.undelivered),
        ));
    }
    for (rank, parked) in &report.mailbox_leaks {
        findings.push(Finding::new(
            "mailbox-leak",
            seed,
            format!("rank {rank} returned with {parked} parked message(s)"),
        ));
    }
    for (rank, res) in results.iter().enumerate() {
        match res {
            Err(e) => findings.push(Finding::new(
                "rank-error",
                seed,
                format!("rank {rank}: {e}"),
            )),
            Ok(run) => {
                for buf in &run.combined {
                    for v in buf {
                        structure.mix(u64::from(v.to_bits()));
                    }
                }
            }
        }
    }

    SeedRun {
        signature: sig.value(),
        structure: structure.value(),
        findings,
    }
}

/// The per-chunk compute stand-in: takes an output buffer from the
/// global arena, fills it on the simulated pool under a seed-derived
/// steal schedule, and recycles the wire buffer.
fn compute_on_sim_pool(
    cfg: &RaceConfig,
    seed: u64,
    rank: usize,
    chunk_idx: usize,
    flex: Vec<f32>,
) -> Vec<f32> {
    chk::note_access(&flex, false);
    let n = flex.len();
    let mut out = tutel_rt::arena().take_raw(n);
    let out_id = out.as_ptr() as usize;
    let salt = ((rank as u64) << 8) | chunk_idx as u64;
    let mut chooser = Chooser::new(derive_seed(seed, salt));
    let grain = cfg.grain.max(1);
    let chunks = n.div_ceil(grain);
    let base_thread = 1000 + rank * 100 + chunk_idx * 10;
    {
        let flex_ref: &[f32] = &flex;
        let out_slice: &mut [f32] = &mut out;
        chk::sim_pool_run(
            cfg.sim_workers,
            chunks,
            base_thread,
            &mut |k| chooser.choose(k),
            &mut |c, _p| {
                chk::note_access_id(out_id, true);
                let s = c * grain;
                let e = (s + grain).min(n);
                for j in s..e {
                    out_slice[j] = flex_ref[j] * 1.5 + chunk_idx as f32;
                }
            },
        );
    }
    chk::order_mark("compute.done", chunk_idx as u64);
    tutel_rt::arena().put(flex);
    out
}

/// Sweeps [`combined_run`] over `0..seeds`.
pub fn combined_sweep(cfg: &RaceConfig, seeds: u64) -> tutel_explore::SweepOutcome {
    sweep_seeds("combined overlap+pool+comm", seeds, |seed| {
        combined_run(cfg, seed)
    })
}

// ---------------------------------------------------------------------------
// Seeded intentional bugs: the checker must catch all three.
// ---------------------------------------------------------------------------

/// Bug 1 — arena use-after-put: a stale reference survives `put`, and
/// the seed decides whether the stale access lands before or after
/// another thread re-takes the buffer. Both interleavings must be
/// flagged (`arena_alias`: use-after-put or use-after-recycle).
pub fn bug_use_after_put(seed: u64) -> Vec<Finding> {
    let session = chk::Session::begin();
    let ar = tutel_rt::Arena::new();
    let mut chooser = Chooser::new(seed);
    chk::with_logical_thread(11, || {
        let buf = ar.take_zeroed(4093);
        let id = buf.as_ptr() as usize;
        ar.put(buf);
        // BUG: `id` still names the returned buffer.
        if chooser.choose(2) == 0 {
            chk::note_access_id(id, true);
            chk::with_logical_thread(12, || {
                let b = ar.take_raw(4093);
                ar.put(b);
            });
        } else {
            let b = chk::with_logical_thread(12, || ar.take_raw(4093));
            chk::note_access_id(id, true);
            chk::with_logical_thread(12, || ar.put(b));
        }
    });
    let events = session.finish();
    analyze(&events, seed)
        .findings
        .into_iter()
        .filter(|f| f.rule == "arena_alias")
        .collect()
}

/// Bug 2 — steal-order-dependent reduction: chunks fold into one
/// accumulator in *claim* order and stamp that order as marks, so the
/// structure signature varies across seeds. Detected by
/// [`sweep_seeds`] as `schedule_dependent`, naming two seeds.
pub fn bug_stolen_reduction(seed: u64) -> SeedRun {
    let session = chk::Session::begin();
    let mut chooser = Chooser::new(seed);
    let mut acc = 0.0f64;
    let run = chk::with_logical_thread(5, || {
        chk::sim_pool_run(3, 8, 500, &mut |k| chooser.choose(k), &mut |c, _p| {
            // BUG: non-commutative fold in schedule order.
            acc = acc * 0.5 + (c as f64 + 1.0);
            chk::order_mark("bad_reduce", c as u64);
        })
    });
    let events = session.finish();
    let analysis = analyze(&events, seed);
    let mut sig = SigHash::new();
    for cl in &run.claims {
        sig.mix_many(&[cl.participant as u64, cl.chunk as u64]);
    }
    let mut structure = SigHash::new();
    structure.mix(analysis.structure);
    structure.mix(acc.to_bits());
    SeedRun {
        signature: sig.value(),
        structure: structure.value(),
        findings: analysis.findings,
    }
}

/// Bug 3 — worker leak at pool shutdown: the pool aborts after a
/// seed-chosen number of claims, stranding an unjoined job. The
/// analyzer must emit a `leak` finding.
pub fn bug_shutdown_leak(seed: u64) -> Vec<Finding> {
    let session = chk::Session::begin();
    let mut chooser = Chooser::new(seed);
    let cut = 2 + chooser.choose(3) as u64;
    chk::with_logical_thread(10, || {
        chk::sim_pool_run_bounded(
            2,
            7,
            600,
            &mut |k| chooser.choose(k),
            &mut |_c, _p| {},
            Some(cut),
        )
    });
    let events = session.finish();
    analyze(&events, seed)
        .findings
        .into_iter()
        .filter(|f| f.rule == "leak")
        .collect()
}

/// One selftest verdict: the planted bug, the finding that caught it,
/// and proof the seed replays.
#[derive(Debug)]
pub struct Selftest {
    pub name: &'static str,
    /// The finding that caught the bug (replay seed inside), or an
    /// explanation of the miss.
    pub result: Result<Finding, String>,
}

/// Replay comparison key: rule + captured sites. Details embed
/// run-varying identifiers (global job counter, buffer addresses), so
/// replay equivalence is the same defects at the same source sites.
fn shape(findings: &[Finding]) -> Vec<(&'static str, Vec<String>)> {
    findings.iter().map(|f| (f.rule, f.sites.clone())).collect()
}

/// Runs all three planted-bug selftests, each over a small seed sweep,
/// and replays every caught seed to prove the diagnostic reproduces.
pub fn run_selftests(seeds: u64) -> Vec<Selftest> {
    let seeds = seeds.max(4);
    let mut out = Vec::new();

    // Bug 1: every seed must be caught (both interleavings are bugs).
    let mut verdict = Err("no seed produced an arena_alias finding".to_string());
    for seed in 0..seeds {
        let found = bug_use_after_put(seed);
        match found.first() {
            None => {
                verdict = Err(format!("seed {seed}: stale access escaped the checker"));
                break;
            }
            Some(f) => {
                let replay = bug_use_after_put(seed);
                if shape(&replay) != shape(&found) {
                    verdict = Err(format!("seed {seed}: findings did not replay"));
                    break;
                }
                verdict = Ok(f.clone());
            }
        }
    }
    out.push(Selftest {
        name: "use_after_put",
        result: verdict,
    });

    // Bug 2: the sweep must see structure divergence and name seeds
    // that replay to different structures.
    let sweep = sweep_seeds("bad_reduce", seeds, bug_stolen_reduction);
    let verdict = match sweep
        .findings
        .iter()
        .find(|f| f.rule == "schedule_dependent")
    {
        None => Err(format!(
            "no schedule_dependent finding in {seeds} seeds \
             ({} distinct structures)",
            sweep.structures.len()
        )),
        Some(f) => {
            let (s0, seed0) = sweep.structures[0];
            let (s1, seed1) = sweep.structures[1];
            let r0 = bug_stolen_reduction(seed0);
            let r1 = bug_stolen_reduction(seed1);
            if r0.structure == s0 && r1.structure == s1 && s0 != s1 {
                Ok(f.clone())
            } else {
                Err(format!(
                    "named seeds {seed0}/{seed1} did not replay to \
                     divergent structures"
                ))
            }
        }
    };
    out.push(Selftest {
        name: "stolen_reduction",
        result: verdict,
    });

    // Bug 3: every seed aborts mid-job, so every seed must leak.
    let mut verdict = Err("no seed produced a leak finding".to_string());
    for seed in 0..seeds {
        let found = bug_shutdown_leak(seed);
        match found.first() {
            None => {
                verdict = Err(format!("seed {seed}: stranded job escaped the checker"));
                break;
            }
            Some(f) => {
                let replay = bug_shutdown_leak(seed);
                if shape(&replay) != shape(&found) {
                    verdict = Err(format!("seed {seed}: findings did not replay"));
                    break;
                }
                verdict = Ok(f.clone());
            }
        }
    }
    out.push(Selftest {
        name: "shutdown_leak",
        result: verdict,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sim_workload_analyzes_clean() {
        let session = chk::Session::begin();
        let mut chooser = Chooser::new(3);
        let ar = tutel_rt::Arena::new();
        chk::with_logical_thread(21, || {
            let mut buf = ar.take_zeroed(509);
            let id = buf.as_ptr() as usize;
            {
                let slice: &mut [f32] = &mut buf;
                chk::sim_pool_run(2, 4, 700, &mut |k| chooser.choose(k), &mut |c, _p| {
                    chk::note_access_id(id, true);
                    slice[c] = c as f32;
                });
            }
            chk::note_access(&buf, false);
            ar.put(buf);
        });
        let events = session.finish();
        let analysis = analyze(&events, 3);
        assert!(
            analysis.findings.is_empty(),
            "clean workload flagged: {:?}",
            analysis.findings
        );
    }

    #[test]
    fn recycled_take_carries_the_put_clock() {
        // Thread A takes/puts; thread B re-takes (recycled) and
        // accesses — the put→take edge must order B after A, so no
        // finding.
        let session = chk::Session::begin();
        let ar = tutel_rt::Arena::new();
        let id = chk::with_logical_thread(31, || {
            let buf = ar.take_zeroed(1021);
            let id = buf.as_ptr() as usize;
            ar.put(buf);
            id
        });
        chk::with_logical_thread(32, || {
            let buf = ar.take_raw(1021);
            assert_eq!(buf.as_ptr() as usize, id);
            chk::note_access(&buf, true);
            ar.put(buf);
        });
        let events = session.finish();
        let analysis = analyze(&events, 0);
        assert!(
            analysis.findings.is_empty(),
            "HB edge missing: {:?}",
            analysis.findings
        );
    }

    #[test]
    fn combined_surface_is_clean_and_structure_stable() {
        let cfg = RaceConfig::default();
        let sweep = combined_sweep(&cfg, 8);
        assert!(
            sweep.passed(),
            "combined surface flagged: {:?}",
            sweep.findings
        );
        assert!(sweep.structure_stable());
        assert!(sweep.distinct > 1, "8 seeds explored only 1 schedule");
    }

    #[test]
    fn combined_run_replays_bit_for_bit() {
        let cfg = RaceConfig::default();
        let a = combined_run(&cfg, 5);
        let b = combined_run(&cfg, 5);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.structure, b.structure);
    }

    #[test]
    fn all_three_planted_bugs_are_caught_with_replayable_seeds() {
        for t in run_selftests(8) {
            let f = t
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{} escaped: {e}", t.name));
            assert!(!f.detail.is_empty());
        }
    }
}
