//! Integration tests: each fixture under `tests/fixtures/` triggers
//! exactly one rule at a known line, the CLI exits nonzero on a
//! violating workspace, and the real workspace is clean against its
//! committed baseline.

use std::path::{Path, PathBuf};
use std::process::Command;

use tutel_check::rules::layering::{check_layering, parse_manifest};
use tutel_check::{lint_source, Diagnostic};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = fixture_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    // Fixtures lint as if they lived in a strict-tier crate.
    lint_source("tutel-gate", name, &text)
}

#[test]
fn no_panic_fixture_fires_once_at_line_5() {
    let diags = lint_fixture("no_panic.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "no_panic");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn layout_doc_fixture_fires_once_at_line_9() {
    let diags = lint_fixture("layout_doc.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "layout_doc");
    assert_eq!(diags[0].line, 9);
    assert!(diags[0].message.contains("undocumented"));
}

#[test]
fn shim_hygiene_fixture_fires_once_at_line_6() {
    let diags = lint_fixture("shim_hygiene.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "shim_hygiene");
    assert_eq!(diags[0].line, 6);
}

#[test]
fn suppressed_fixture_is_clean() {
    assert_eq!(lint_fixture("suppressed.rs"), vec![]);
}

#[test]
fn bad_allow_fixture_reports_both() {
    let diags = lint_fixture("bad_allow.rs");
    let found: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(found, vec![("bad_allow", 6), ("no_panic", 7)]);
}

#[test]
fn layering_fixture_manifest_fires() {
    let path = fixture_dir().join("badws/crates/demo/Cargo.toml");
    let text = std::fs::read_to_string(&path).unwrap();
    let m = parse_manifest("crates/demo/Cargo.toml", &text);
    let diags = check_layering(&[m]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "layering");
    assert!(diags[0].message.contains("tutel-experts"));
}

#[test]
fn cli_exits_nonzero_on_violating_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_tutel-check"))
        .args(["--root"])
        .arg(fixture_dir().join("badws"))
        .output()
        .expect("spawn tutel-check");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no_panic"), "{stdout}");
    assert!(stdout.contains("layering"), "{stdout}");
}

#[test]
fn cli_is_clean_on_real_workspace_with_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_tutel-check"))
        .args(["--root"])
        .arg(&root)
        .args(["--baseline"])
        .arg(root.join("check-baseline.json"))
        .output()
        .expect("spawn tutel-check");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_json_output_is_parseable_shape() {
    let out = Command::new(env!("CARGO_BIN_EXE_tutel-check"))
        .args(["--root"])
        .arg(fixture_dir().join("badws"))
        .arg("--json")
        .output()
        .expect("spawn tutel-check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let body = stdout.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
    assert!(body.contains("\"rule\": \"no_panic\""), "{body}");
    assert!(body.contains("\"line\": 4"), "{body}");
}
