//! Fixture: triggers exactly one `no_panic` violation (line 5).

pub fn head(xs: &[i64]) -> i64 {
    // The next line is the violation.
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1].pop().unwrap();
        assert_eq!(v, 1);
    }
}
