//! Fixture: a would-be `no_panic` violation silenced by a
//! well-formed `check:allow`, so the file lints clean.

pub fn head(xs: &[i64]) -> i64 {
    // check:allow(no_panic, fixture demonstrating the suppression grammar)
    *xs.first().unwrap()
}
