//! Fixture: triggers exactly one `layout_doc` violation (line 9).

/// Dispatched tokens laid out as `(E, C, M)` row-major.
pub fn documented(buf: &[f32], experts: usize, cap: usize, model: usize) -> f32 {
    buf[experts * cap * model - 1]
}

/// Scales a dispatch buffer in place. No layout named: violation.
pub fn undocumented(buf: &mut [f32], experts: usize, cap: usize) {
    for x in buf.iter_mut() {
        *x *= (experts + cap) as f32;
    }
}
