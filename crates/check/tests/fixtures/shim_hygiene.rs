//! Fixture: triggers exactly one `shim_hygiene` violation (line 6).

use rand::rngs::SmallRng;
use rand::SeedableRng;
// The next line reaches outside the rand shim's documented surface.
use rand::distributions::Uniform;

pub fn mk() -> SmallRng {
    SmallRng::seed_from_u64(7)
}
