//! Fixture crate for the CLI integration test: one `no_panic` hit.

pub fn boom(xs: &[i64]) -> i64 {
    *xs.first().unwrap()
}
