//! Fixture: a malformed suppression — missing reason — reported as
//! `bad_allow` (line 6) while the unwrap it fails to cover is still
//! reported as `no_panic` (line 7).

pub fn head(xs: &[i64]) -> i64 {
    // check:allow(no_panic)
    *xs.first().unwrap()
}
