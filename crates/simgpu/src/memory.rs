use std::fmt;

/// Tracks simulated device memory usage (current and peak).
///
/// Used to reproduce the paper's Table 4 (GPU memory cost of a single
/// MoE layer: Fairseq's dense dispatch tensors vs Tutel's sparse
/// encode), without a real allocator: producers call [`MemoryMeter::alloc`]
/// for every tensor they would materialize on device and
/// [`MemoryMeter::free`] when it dies.
///
/// # Example
///
/// ```
/// use tutel_simgpu::MemoryMeter;
///
/// let mut mem = MemoryMeter::new();
/// mem.alloc("activations", 1 << 20);
/// mem.alloc("weights", 1 << 22);
/// mem.free(1 << 20);
/// assert_eq!(mem.current_bytes(), 1 << 22);
/// assert_eq!(mem.peak_bytes(), (1 << 20) + (1 << 22));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryMeter {
    current: u64,
    peak: u64,
    allocations: Vec<(String, u64)>,
}

impl MemoryMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        MemoryMeter::default()
    }

    /// Records an allocation of `bytes`, labeled for breakdowns.
    pub fn alloc(&mut self, label: &str, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        self.allocations.push((label.to_string(), bytes));
    }

    /// Records a free of `bytes` (saturating at zero).
    pub fn free(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> u64 {
        self.current
    }

    /// High-water mark.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Peak usage in GiB.
    pub fn peak_gib(&self) -> f64 {
        self.peak as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// All recorded allocations `(label, bytes)` in order.
    pub fn allocations(&self) -> &[(String, u64)] {
        &self.allocations
    }

    /// Sum of allocations whose label contains `substr`.
    pub fn total_for(&self, substr: &str) -> u64 {
        self.allocations
            .iter()
            .filter(|(l, _)| l.contains(substr))
            .map(|(_, b)| *b)
            .sum()
    }
}

impl fmt::Display for MemoryMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory: current {:.3} GiB, peak {:.3} GiB ({} allocations)",
            self.current as f64 / (1024.0 * 1024.0 * 1024.0),
            self.peak_gib(),
            self.allocations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryMeter::new();
        m.alloc("a", 100);
        m.alloc("b", 50);
        m.free(120);
        m.alloc("c", 10);
        assert_eq!(m.current_bytes(), 40);
        assert_eq!(m.peak_bytes(), 150);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryMeter::new();
        m.alloc("a", 10);
        m.free(100);
        assert_eq!(m.current_bytes(), 0);
    }

    #[test]
    fn label_totals() {
        let mut m = MemoryMeter::new();
        m.alloc("dispatch_input", 64);
        m.alloc("dispatch_mask", 32);
        m.alloc("weights", 8);
        assert_eq!(m.total_for("dispatch"), 96);
        assert_eq!(m.total_for("weights"), 8);
        assert_eq!(m.total_for("nothing"), 0);
    }
}
