//! Simulated multi-GPU cluster substrate for the tutel-rs MoE stack.
//!
//! The Tutel paper runs on Azure NDm A100 v4 clusters (8× A100 per node,
//! 8× HDR InfiniBand NICs, NVLink/NVSwitch intra-node). No such hardware
//! is reachable from a Rust test process, so this crate provides the
//! closest synthetic equivalent: a *descriptive* cluster topology plus
//! *calibrated analytic cost models* for the kernels and transfers the
//! paper's adaptive mechanisms reason about, and a small discrete-event
//! timeline for multi-stream (compute/communication) scheduling.
//!
//! All adaptive decisions in Tutel — parallelism switching, pipelining
//! degree, All-to-All algorithm selection — depend only on the *relative
//! ordering* of costs, so a cost model calibrated against the paper's
//! published anchor measurements (see [`calib`]) reproduces the decision
//! landscape: who wins, by roughly what factor, and where the crossovers
//! fall.
//!
//! # Example
//!
//! ```
//! use tutel_simgpu::{Topology, GpuCostModel};
//!
//! let topo = Topology::new(4, 8); // 4 nodes × 8 GPUs
//! assert_eq!(topo.world_size(), 32);
//! let cost = GpuCostModel::a100();
//! // A tall GEMM is far more efficient than a tiny-row batched GEMM.
//! let tall = cost.gemm_time(1, 16384, 2048, 2048);
//! let tiny = cost.gemm_time(2048, 8, 2048, 2048);
//! assert!(tiny > tall);
//! ```

pub mod calib;
mod cost;
mod link;
mod memory;
mod timeline;
mod topology;

pub use cost::GpuCostModel;
pub use link::{fabric_contention, LinkModel, Protocol};
pub use memory::MemoryMeter;
pub use timeline::{EventId, StreamId, Timeline};
pub use topology::Topology;

/// Seconds, the unit of every cost model in this crate.
pub type Seconds = f64;
