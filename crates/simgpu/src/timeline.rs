use std::collections::HashMap;

use crate::Seconds;

/// Identifier of a stream on the simulated device.
///
/// Tutel's adaptive pipelining submits All-to-All chunks on a
/// *communication stream* and expert GEMMs on a *computation stream*;
/// any number of streams is supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// Identifier of a scheduled operation, used to express dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

#[derive(Debug, Clone)]
struct Op {
    stream: StreamId,
    start: Seconds,
    finish: Seconds,
}

/// A small discrete-event timeline for multi-stream scheduling.
///
/// Operations on the same stream execute in submission order; an
/// operation additionally waits for all its dependencies. This is the
/// CUDA stream/event semantics that adaptive pipelining (Section 3.3)
/// relies on: partition-`i`'s expert GEMM waits for partition-`i`'s
/// first All-to-All, while partition-`i+1`'s All-to-All proceeds
/// concurrently on the communication stream.
///
/// # Example
///
/// ```
/// use tutel_simgpu::{StreamId, Timeline};
///
/// let mut tl = Timeline::new();
/// let comm = StreamId(0);
/// let comp = StreamId(1);
/// let a = tl.push(comm, 2.0, &[]);
/// let b = tl.push(comm, 2.0, &[]);
/// let c = tl.push(comp, 3.0, &[a]); // waits for a, overlaps with b
/// let _ = c;
/// let d = tl.push(comp, 3.0, &[b]);
/// let _ = d;
/// // a[0,2] b[2,4] c[2,5] d[5,8]: c overlaps b; d waits for stream + b.
/// assert_eq!(tl.makespan(), 8.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    ops: Vec<Op>,
    stream_front: HashMap<StreamId, Seconds>,
}

impl Timeline {
    /// Creates an empty timeline at t = 0.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Schedules an operation of `duration` seconds on `stream`, after
    /// all of `deps` have finished. Returns its event id.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or a dependency id is invalid.
    pub fn push(&mut self, stream: StreamId, duration: Seconds, deps: &[EventId]) -> EventId {
        assert!(duration >= 0.0, "negative duration");
        let dep_ready = deps
            .iter()
            .map(|d| {
                self.ops
                    .get(d.0)
                    .expect("dependency event id out of range")
                    .finish
            })
            .fold(0.0f64, f64::max);
        let stream_ready = self.stream_front.get(&stream).copied().unwrap_or(0.0);
        let start = dep_ready.max(stream_ready);
        let finish = start + duration;
        self.stream_front.insert(stream, finish);
        self.ops.push(Op {
            stream,
            start,
            finish,
        });
        EventId(self.ops.len() - 1)
    }

    /// Start time of an event.
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn start_of(&self, id: EventId) -> Seconds {
        self.ops[id.0].start
    }

    /// Finish time of an event.
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn finish_of(&self, id: EventId) -> Seconds {
        self.ops[id.0].finish
    }

    /// Completion time of the whole schedule (0 when empty).
    pub fn makespan(&self) -> Seconds {
        self.ops.iter().map(|o| o.finish).fold(0.0, f64::max)
    }

    /// Total busy time of one stream.
    pub fn stream_busy(&self, stream: StreamId) -> Seconds {
        self.ops
            .iter()
            .filter(|o| o.stream == stream)
            .map(|o| o.finish - o.start)
            .sum()
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total time during which two given streams are simultaneously busy
    /// — the amount of genuine comm/compute overlap achieved.
    pub fn overlap(&self, a: StreamId, b: StreamId) -> Seconds {
        let mut intervals_a: Vec<(Seconds, Seconds)> = self
            .ops
            .iter()
            .filter(|o| o.stream == a)
            .map(|o| (o.start, o.finish))
            .collect();
        let mut intervals_b: Vec<(Seconds, Seconds)> = self
            .ops
            .iter()
            .filter(|o| o.stream == b)
            .map(|o| (o.start, o.finish))
            .collect();
        intervals_a.sort_by(|x, y| x.0.total_cmp(&y.0));
        intervals_b.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut total = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < intervals_a.len() && j < intervals_b.len() {
            let (s, f) = (
                intervals_a[i].0.max(intervals_b[j].0),
                intervals_a[i].1.min(intervals_b[j].1),
            );
            if f > s {
                total += f - s;
            }
            if intervals_a[i].1 < intervals_b[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMM: StreamId = StreamId(0);
    const COMP: StreamId = StreamId(1);

    #[test]
    fn single_stream_serializes() {
        let mut tl = Timeline::new();
        tl.push(COMM, 1.0, &[]);
        tl.push(COMM, 2.0, &[]);
        assert_eq!(tl.makespan(), 3.0);
        assert_eq!(tl.stream_busy(COMM), 3.0);
    }

    #[test]
    fn dependencies_cross_streams() {
        let mut tl = Timeline::new();
        let a = tl.push(COMM, 2.0, &[]);
        let b = tl.push(COMP, 3.0, &[a]);
        assert_eq!(tl.start_of(b), 2.0);
        assert_eq!(tl.makespan(), 5.0);
    }

    #[test]
    fn pipelined_schedule_overlaps() {
        // Two-chunk pipeline: a2a(i) → expert(i) → a2a'(i).
        let mut tl = Timeline::new();
        let a0 = tl.push(COMM, 1.0, &[]);
        let a1 = tl.push(COMM, 1.0, &[]);
        let e0 = tl.push(COMP, 2.0, &[a0]);
        let e1 = tl.push(COMP, 2.0, &[a1]);
        let c0 = tl.push(COMM, 1.0, &[e0]);
        let c1 = tl.push(COMM, 1.0, &[e1]);
        let _ = (c0, c1);
        // a0[0,1] a1[1,2] e0[1,3] e1[3,5] c0[3,4] c1[5,6].
        assert_eq!(tl.makespan(), 6.0);
        // Unpipelined would be 2 (a2a) + 4 (expert) + 2 (a2a) = 8.
        assert!(tl.makespan() < 8.0);
        assert!(tl.overlap(COMM, COMP) > 0.0);
    }

    #[test]
    fn overlap_of_disjoint_streams_is_zero() {
        let mut tl = Timeline::new();
        let a = tl.push(COMM, 1.0, &[]);
        tl.push(COMP, 1.0, &[a]);
        assert_eq!(tl.overlap(COMM, COMP), 0.0);
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline::new();
        assert_eq!(tl.makespan(), 0.0);
        assert!(tl.is_empty());
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn rejects_negative_duration() {
        Timeline::new().push(COMM, -1.0, &[]);
    }
}
