use serde::{Deserialize, Serialize};

use crate::{calib, Seconds};

/// Analytic cost model of one simulated GPU's kernels.
///
/// Encodes the shape-dependent efficiencies the paper measures:
///
/// * **GEMM row efficiency** (Figure 7): a batched GEMM whose per-batch
///   row count is tiny (e.g. `(2048, ΔE, 8, M)` after a rigid All-to-All
///   at 2,048 GPUs) achieves a small fraction of peak throughput. This
///   is the regression Flexible All-to-All removes.
/// * **Strided-copy degradation** (Section 3.4): non-contiguous device
///   copies lose bandwidth as the contiguous chunk shrinks, which is why
///   the naïve local-aggregation All-to-All does not scale and 2DH's
///   aligned stride copies do.
/// * **Encode/decode cost** (Section 4.2): the dense GShard einsum does
///   `O(T·E·ΔC·M)` work, the sparse Tutel kernels `O(T·k·M)`.
///
/// # Example
///
/// ```
/// use tutel_simgpu::GpuCostModel;
///
/// let cost = GpuCostModel::a100();
/// // Rigid layout at 2,048 GPUs: rows per batch collapse to 8.
/// let rigid = cost.gemm_time(2048, 8, 2048, 2048);
/// // Flexible layout keeps rows = 16384 regardless of scale.
/// let flex = cost.gemm_time(1, 16384, 2048, 2048);
/// assert!(rigid / flex > 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// Peak GEMM throughput at ideal shapes, FLOP/s.
    pub gemm_peak_flops: f64,
    /// Half-saturation row count of the GEMM efficiency curve.
    pub gemm_rows_half: f64,
    /// Per-kernel launch overhead, seconds.
    pub launch_overhead: Seconds,
    /// Contiguous device-copy bandwidth, bytes/s.
    pub copy_bandwidth: f64,
    /// Half-saturation chunk size for strided copies, bytes.
    pub strided_chunk_half: f64,
    /// Sparse encode/decode throughput, elements/s.
    pub sparse_encode_rate: f64,
    /// Dense einsum encode/decode throughput, useful elements/s.
    pub dense_encode_rate: f64,
    /// Gating cost, seconds per token per global expert.
    pub gate_cost: f64,
}

impl GpuCostModel {
    /// The calibrated A100 SXM 80 GB model used throughout the benches.
    pub fn a100() -> Self {
        GpuCostModel {
            gemm_peak_flops: calib::GEMM_PEAK_FLOPS,
            gemm_rows_half: calib::GEMM_ROWS_HALF,
            launch_overhead: calib::GEMM_LAUNCH_OVERHEAD,
            copy_bandwidth: calib::HBM_COPY_BW,
            strided_chunk_half: calib::STRIDED_CHUNK_HALF,
            sparse_encode_rate: calib::SPARSE_ENCODE_ELEMS_PER_SEC,
            dense_encode_rate: calib::DENSE_ENCODE_ELEMS_PER_SEC,
            gate_cost: calib::GATE_COST_PER_TOKEN_EXPERT,
        }
    }

    /// Efficiency (0, 1] of a GEMM whose per-batch row dimension is
    /// `rows`: `rows / (rows + rows_half)`, normalized so that very tall
    /// GEMMs approach 1.
    pub fn gemm_row_efficiency(&self, rows: usize) -> f64 {
        let r = rows.max(1) as f64;
        r / (r + self.gemm_rows_half)
    }

    /// Time of a strided batched GEMM `(batch, rows, k) × (batch, k, cols)`.
    ///
    /// This is the cost of `bgemm_strided_batched`, the expert fflayer
    /// primitive; `batch = W·ΔE` under the rigid All-to-All layout and
    /// `batch = ΔE` under the flexible layout.
    pub fn gemm_time(&self, batch: usize, rows: usize, k: usize, cols: usize) -> Seconds {
        let flops = 2.0 * batch as f64 * rows as f64 * k as f64 * cols as f64;
        let eff = self.gemm_row_efficiency(rows);
        self.launch_overhead + flops / (self.gemm_peak_flops * eff)
    }

    /// Time to copy `bytes` contiguously on-device.
    pub fn copy_time(&self, bytes: f64) -> Seconds {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.launch_overhead + bytes / self.copy_bandwidth
    }

    /// Time of a strided device copy moving `bytes` total in contiguous
    /// chunks of `chunk_bytes`.
    ///
    /// Small chunks waste memory bandwidth; this single curve prices
    /// both 2DH's aligned stride copies (large chunks → near-peak) and
    /// the naïve local aggregation's scattered accesses (chunks shrink
    /// as `S/n` → collapse).
    pub fn strided_copy_time(&self, bytes: f64, chunk_bytes: f64) -> Seconds {
        if bytes <= 0.0 {
            return 0.0;
        }
        let chunk = chunk_bytes.max(4.0);
        let eff = chunk / (chunk + self.strided_chunk_half);
        self.launch_overhead + bytes / (self.copy_bandwidth * eff)
    }

    /// Time of the sparse (Tutel) encode or decode over `tokens` tokens,
    /// `k` experts per token, model dimension `m`: `O(T·k·M)` elements.
    pub fn sparse_encode_time(&self, tokens: usize, k: usize, m: usize) -> Seconds {
        let elems = tokens as f64 * k as f64 * m as f64;
        self.launch_overhead + elems / self.sparse_encode_rate
    }

    /// Time of the dense (GShard/Fairseq) encode or decode:
    /// `O(T·E·ΔC·M)` elements pushed through the einsum.
    pub fn dense_encode_time(
        &self,
        tokens: usize,
        experts: usize,
        capacity: usize,
        m: usize,
    ) -> Seconds {
        let elems = tokens as f64 * experts as f64 * capacity as f64 * m as f64;
        self.launch_overhead + elems / self.dense_encode_rate
    }

    /// Gating function cost for `tokens` tokens over `experts` global
    /// experts (softmax + top-k + locations).
    pub fn gate_time(&self, tokens: usize, experts: usize) -> Seconds {
        self.launch_overhead + tokens as f64 * experts as f64 * self.gate_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_row_efficiency_reproduces_figure7_anchor() {
        let cost = GpuCostModel::a100();
        // Paper: rows=8 layout achieves 8.8 % of rows=16384 throughput.
        let ratio = cost.gemm_row_efficiency(8) / cost.gemm_row_efficiency(16384);
        assert!((ratio - 0.088).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn gemm_time_preserves_flops_at_equal_shape() {
        let cost = GpuCostModel::a100();
        // Same total FLOPs, same rows → same time regardless of batching.
        let a = cost.gemm_time(4, 256, 512, 512);
        let b = cost.gemm_time(8, 256, 512, 256);
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    fn figure7_scale_regression_shape() {
        // DeepSpeed fflayer: 11.3× slowdown from 1 GPU to 2,048 GPUs at
        // fixed total work (Figure 7). Our model:
        let cost = GpuCostModel::a100();
        let t1 = cost.gemm_time(1, 16384, 2048, 2048);
        let t2048 = cost.gemm_time(2048, 8, 2048, 2048);
        let slowdown = t2048 / t1;
        assert!(slowdown > 6.0 && slowdown < 20.0, "slowdown = {slowdown}");
    }

    #[test]
    fn strided_copy_degrades_with_small_chunks() {
        let cost = GpuCostModel::a100();
        let bytes = 128.0 * 1024.0 * 1024.0;
        let big_chunks = cost.strided_copy_time(bytes, 16.0 * 1024.0 * 1024.0);
        let small_chunks = cost.strided_copy_time(bytes, 64.0 * 1024.0);
        // Section 3.4 anchor: ~600 µs → ~5 ms (≈ 8×).
        let ratio = small_chunks / big_chunks;
        assert!(ratio > 5.0 && ratio < 12.0, "ratio = {ratio}");
        assert!(
            big_chunks > 100e-6 && big_chunks < 1e-3,
            "abs = {big_chunks}"
        );
    }

    #[test]
    fn sparse_encode_is_cheaper_than_dense() {
        let cost = GpuCostModel::a100();
        // T = 16384 tokens, E = 64, ΔC = k·f·T/E with k=2,f=1 → 512.
        let dense = cost.dense_encode_time(16384, 64, 512, 2048);
        let sparse = cost.sparse_encode_time(16384, 2, 2048);
        // The index-space ratio is T = 16384; the dense einsum's tensor
        // cores claw back much of it, but a large gap must remain.
        assert!(dense / sparse > 20.0, "dense/sparse = {}", dense / sparse);
    }

    #[test]
    fn zero_byte_copies_are_free() {
        let cost = GpuCostModel::a100();
        assert_eq!(cost.copy_time(0.0), 0.0);
        assert_eq!(cost.strided_copy_time(0.0, 1024.0), 0.0);
    }
}
