use std::fmt;

use serde::{Deserialize, Serialize};

/// A two-level cluster topology: `nnodes` nodes of `gpus_per_node` GPUs.
///
/// GPUs within a node are connected by NVLink/NVSwitch; nodes are
/// connected by an InfiniBand fabric with one NIC per GPU (rail-
/// optimized, as on Azure NDm A100 v4). Ranks are assigned node-major:
/// rank `r` lives on node `r / gpus_per_node`.
///
/// # Example
///
/// ```
/// use tutel_simgpu::Topology;
///
/// let topo = Topology::new(2, 4);
/// assert_eq!(topo.world_size(), 8);
/// assert_eq!(topo.node_of(5), 1);
/// assert_eq!(topo.local_rank(5), 1);
/// assert!(topo.same_node(4, 7));
/// assert!(!topo.same_node(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    nnodes: usize,
    gpus_per_node: usize,
}

impl Topology {
    /// Creates a topology of `nnodes × gpus_per_node` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nnodes: usize, gpus_per_node: usize) -> Self {
        assert!(
            nnodes > 0 && gpus_per_node > 0,
            "topology dimensions must be positive"
        );
        Topology {
            nnodes,
            gpus_per_node,
        }
    }

    /// A single-node topology (all GPUs on NVLink).
    pub fn single_node(gpus: usize) -> Self {
        Topology::new(1, gpus)
    }

    /// The Azure NDm A100 v4 shape used throughout the paper: 8 GPUs per
    /// node, scaled to `world_size` GPUs (which must be a multiple of 8,
    /// or at most 8).
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero or not expressible as `k × 8`
    /// (for `world_size > 8`).
    pub fn azure_ndv4(world_size: usize) -> Self {
        assert!(world_size > 0, "world size must be positive");
        if world_size <= 8 {
            Topology::new(1, world_size)
        } else {
            assert!(
                world_size.is_multiple_of(8),
                "multi-node NDv4 topologies come in multiples of 8 GPUs"
            );
            Topology::new(world_size / 8, 8)
        }
    }

    /// Number of nodes.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// GPUs per node (`m` in the paper's 2DH analysis).
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total number of GPUs (`n` / `W` in the paper).
    pub fn world_size(&self) -> usize {
        self.nnodes * self.gpus_per_node
    }

    /// Node index hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world_size()`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank / self.gpus_per_node
    }

    /// Rank's index within its node.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world_size()`.
    pub fn local_rank(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank % self.gpus_per_node
    }

    /// Whether two ranks share a node (i.e. communicate over NVLink).
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterator over all ranks on a node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= nnodes()`.
    pub fn ranks_on_node(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nnodes, "node {node} out of range");
        node * self.gpus_per_node..(node + 1) * self.gpus_per_node
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} node(s) × {} GPU(s)", self.nnodes, self.gpus_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_major_rank_layout() {
        let t = Topology::new(3, 4);
        assert_eq!(t.world_size(), 12);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(11), 2);
        assert_eq!(t.local_rank(11), 3);
        assert_eq!(t.ranks_on_node(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn azure_preset_shapes() {
        assert_eq!(Topology::azure_ndv4(4).nnodes(), 1);
        assert_eq!(Topology::azure_ndv4(4).gpus_per_node(), 4);
        let big = Topology::azure_ndv4(2048);
        assert_eq!(big.nnodes(), 256);
        assert_eq!(big.gpus_per_node(), 8);
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn azure_preset_rejects_ragged_sizes() {
        Topology::azure_ndv4(12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_checks_range() {
        Topology::new(1, 2).node_of(2);
    }

    #[test]
    fn same_node_boundary() {
        let t = Topology::new(2, 8);
        assert!(t.same_node(0, 7));
        assert!(!t.same_node(7, 8));
        assert!(t.same_node(8, 15));
    }
}
