//! Calibration constants for the simulated A100 cluster.
//!
//! Each constant is anchored to a measurement published in the Tutel
//! paper (or a public A100/HDR spec); the anchor is cited next to the
//! constant. Changing a constant shifts absolute numbers but the bench
//! harness only claims *shape* fidelity (orderings, crossover locations,
//! rough ratios), which is robust to modest calibration error.

/// Bytes per MiB.
pub const MIB: f64 = 1024.0 * 1024.0;

/// Bytes per GiB.
pub const GIB: f64 = 1024.0 * MIB;

/// Peak dense GEMM throughput, FLOP/s.
///
/// Anchor: A100 BF16 tensor-core peak is 312 TFLOP/s; sustained
/// large-GEMM efficiency on cuBLAS is ~55–65 %, so we use 180 TFLOP/s as
/// the best-shape ceiling.
pub const GEMM_PEAK_FLOPS: f64 = 180e12;

/// Half-saturation row count for GEMM efficiency.
///
/// Anchor: Figure 7 / Section 2.4 — `bgemm_strided_batched` with input
/// `B(2048, ΔE, 8, M)` achieves only 8.8 % of the throughput of
/// `A(1, ΔE, 16384, M)`. With eff(rows) = rows / (rows + H), H = 83
/// yields eff(8)/eff(16384) ≈ 0.088.
pub const GEMM_ROWS_HALF: f64 = 83.0;

/// Fixed launch overhead per GEMM kernel, seconds.
pub const GEMM_LAUNCH_OVERHEAD: f64 = 6e-6;

/// Device memory copy bandwidth for large contiguous copies, bytes/s.
///
/// Anchor: A100 80 GB HBM2e peak is ~2.0 TB/s; a copy reads and writes,
/// so effective copy throughput tops out near 1.0 TB/s.
pub const HBM_COPY_BW: f64 = 1.0e12;

/// Half-saturation chunk size for strided/non-contiguous device copies,
/// bytes.
///
/// Anchor: Section 3.4 — the naïve local-aggregation intra-node
/// All-to-All over S = 128 MiB, m = 8 takes ~600 µs at n = 8 (chunk
/// 16 MiB, near-full bandwidth) and degrades to ~5 ms at n = 2048
/// (chunk 64 KiB). chunk/(chunk + 512 KiB) reproduces that ~8× slide.
pub const STRIDED_CHUNK_HALF: f64 = 512.0 * 1024.0;

/// NVLink (3rd gen, NVSwitch) per-GPU unidirectional bandwidth usable by
/// a collective, bytes/s.
///
/// Anchor: nccl-tests intra-node All-to-All bus bandwidth on NDm A100 v4
/// plateaus near 230 GB/s.
pub const NVLINK_BW: f64 = 230e9;

/// Per-operation base latency on NVLink, seconds.
pub const NVLINK_ALPHA: f64 = 4e-6;

/// Half-saturation message size on NVLink, bytes.
pub const NVLINK_MSG_HALF: f64 = 64.0 * 1024.0;

/// HDR InfiniBand per-GPU unidirectional bandwidth, bytes/s.
///
/// Anchor: 200 Gb/s HDR ≈ 25 GB/s line rate; ib_write_bw (Figure 6a)
/// sustains ~23 GB/s at large message sizes.
pub const IB_BW: f64 = 23e9;

/// Per-operation base latency over InfiniBand, seconds.
pub const IB_ALPHA: f64 = 12e-6;

/// Per-message (per peer) send/receive overhead over InfiniBand with the
/// default (Simple) protocol, seconds.
///
/// Anchor: Figure 6a — ib_write_bw with TX depth 8 only saturates above
/// ~1 MiB messages; a ~3 µs per-message cost reproduces the knee and the
/// linear-All-to-All collapse at 2,048 GPUs (Figure 20).
pub const IB_MSG_OVERHEAD_SIMPLE: f64 = 3e-6;

/// Per-message overhead with the LL128 protocol, seconds.
///
/// Anchor: Figure 21 — LL128 wins on 1–32 MiB sizes (lower latency) and
/// loses slightly at 256 MiB (bandwidth capped at 120/128 ≈ 93.75 %).
pub const IB_MSG_OVERHEAD_LL128: f64 = 1e-6;

/// Bandwidth fraction retained by the LL128 protocol.
pub const LL128_BW_FRACTION: f64 = 0.9375;

/// Half-saturation message size over InfiniBand, bytes.
///
/// Anchor: Figure 6a shape — half of peak write bandwidth is reached
/// around 256 KiB with TX depth 8.
pub const IB_MSG_HALF: f64 = 256.0 * 1024.0;

/// Fabric contention exponent: effective inter-node bandwidth decays as
/// `nnodes^-CONTENTION_EXP` beyond one switch tier.
///
/// Anchor: Figure 6b — All-to-All bus bandwidth in nccl-tests drops
/// noticeably from 64 to 2,048 GPUs even at large sizes on a
/// "non-blocking" fabric due to adaptive-routing imperfection.
pub const FABRIC_CONTENTION_EXP: f64 = 0.08;

/// Compute-side slowdown factor while a communication kernel runs
/// concurrently on the same GPU.
///
/// Anchor: Section 2.3 — "the slowdown from running NCCL kernels
/// concurrently with computation kernels on the same GPU is difficult to
/// estimate"; measured MoE overlap studies put it at 10–25 %. The
/// per-algorithm asymmetry (2DH touches memory harder during its local
/// phases) is what makes joint comm+compute adaptation necessary.
pub const OVERLAP_COMPUTE_INFLATION: f64 = 1.12;

/// Communication-side slowdown while compute runs, for the linear
/// All-to-All (P2P copies compete with compute for SM time).
pub const OVERLAP_COMM_INFLATION_LINEAR: f64 = 1.22;

/// Communication-side slowdown while compute runs, for 2DH All-to-All
/// (strided local copies compete for HBM bandwidth instead).
pub const OVERLAP_COMM_INFLATION_2DH: f64 = 1.10;

/// Fixed cost of a stream synchronization barrier, seconds.
pub const BARRIER_OVERHEAD: f64 = 5e-6;

/// Per-phase synchronization overhead of the NCCL-API 2DH implementation
/// (Algorithm 3), removed by the MSCCL fused implementation.
///
/// Anchor: Section 4.3 — "Implementation using NCCL APIs requires extra
/// synchronization barriers between different phases ... and may cause
/// throughput degradation".
pub const TWO_DH_PHASE_BARRIER: f64 = 20e-6;

/// Throughput of the sparse (Tutel) encode/decode kernels, elements/s.
///
/// Anchor: Figure 24 — Tutel's fused SIMT kernels move one `M`-length
/// row per warp; effective throughput is HBM-bound.
pub const SPARSE_ENCODE_ELEMS_PER_SEC: f64 = 120e9;

/// Throughput of the dense (GShard/Fairseq einsum) encode/decode,
/// elements of the `T·E·ΔC·M` index space per second.
///
/// Anchor: Section 4.2 — the dense path does `O(T · E · ΔC · M)` work
/// versus sparse `O(T · k · M)` (a factor of `T` more, since
/// `E·ΔC = T·k` at `f = 1`). The einsum runs on tensor cores, so the
/// per-element rate is high (~¼ of GEMM peak in multiply-adds), but
/// almost all of it is spent on zeros. Calibrated so the Figure 23
/// anchor holds: Tutel kernels give ≈3.5× layer speedup at 16 GPUs.
pub const DENSE_ENCODE_ELEMS_PER_SEC: f64 = 5e13;

/// Per-token gating function cost, seconds per token per expert.
///
/// Anchor: Figure 23 curve (6) — computation overhead grows slightly
/// with scale because gating cost scales with the number of global
/// experts.
pub const GATE_COST_PER_TOKEN_EXPERT: f64 = 2.2e-11;
