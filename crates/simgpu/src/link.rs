use serde::{Deserialize, Serialize};

use crate::{calib, Seconds};

/// NCCL transfer protocol.
///
/// The paper's MSCCL-optimized 2DH All-to-All selects between the
/// default (`Simple`) protocol and `LL128`: LL128 has much lower
/// per-message latency but caps bandwidth at 120/128 of line rate, so
/// the optimal choice depends on message size (Figure 21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Protocol {
    /// Default NCCL protocol: full bandwidth, higher latency.
    #[default]
    Simple,
    /// Low-latency 128-byte-flit protocol: ~94 % bandwidth, low latency.
    Ll128,
}

impl Protocol {
    /// All protocol choices, in search order.
    pub const ALL: [Protocol; 2] = [Protocol::Simple, Protocol::Ll128];
}

/// Analytic α–β model of one link class (NVLink or InfiniBand) with a
/// message-size-dependent effective bandwidth.
///
/// The transfer time of a `size`-byte message is
/// `α + per_msg + size / (bw · size/(size + half))`: the `size/(size+half)`
/// factor reproduces the under-utilized-bandwidth curve of the paper's
/// Figure 6 — small messages cannot saturate high-speed links, which is
/// the entire motivation for 2DH All-to-All.
///
/// # Example
///
/// ```
/// use tutel_simgpu::{LinkModel, Protocol};
///
/// let ib = LinkModel::hdr_infiniband();
/// let small = ib.effective_bandwidth(4.0 * 1024.0, Protocol::Simple);
/// let large = ib.effective_bandwidth(256.0 * 1024.0 * 1024.0, Protocol::Simple);
/// assert!(large > 10.0 * small);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Base latency per operation, seconds.
    pub alpha: Seconds,
    /// Per-message (per-peer) overhead with the Simple protocol, seconds.
    pub per_msg_simple: Seconds,
    /// Per-message overhead with LL128, seconds.
    pub per_msg_ll128: Seconds,
    /// Peak unidirectional bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Message size at which half of peak bandwidth is reached, bytes.
    pub msg_half: f64,
}

impl LinkModel {
    /// 3rd-generation NVLink/NVSwitch (intra-node), per-GPU.
    pub fn nvlink() -> Self {
        LinkModel {
            alpha: calib::NVLINK_ALPHA,
            per_msg_simple: 0.5e-6,
            per_msg_ll128: 0.3e-6,
            bandwidth: calib::NVLINK_BW,
            msg_half: calib::NVLINK_MSG_HALF,
        }
    }

    /// HDR InfiniBand 200 Gb/s (inter-node), per GPU/NIC pair.
    pub fn hdr_infiniband() -> Self {
        LinkModel {
            alpha: calib::IB_ALPHA,
            per_msg_simple: calib::IB_MSG_OVERHEAD_SIMPLE,
            per_msg_ll128: calib::IB_MSG_OVERHEAD_LL128,
            bandwidth: calib::IB_BW,
            msg_half: calib::IB_MSG_HALF,
        }
    }

    /// Per-message fixed overhead under `protocol`.
    pub fn per_msg(&self, protocol: Protocol) -> Seconds {
        match protocol {
            Protocol::Simple => self.per_msg_simple,
            Protocol::Ll128 => self.per_msg_ll128,
        }
    }

    /// Peak bandwidth under `protocol`, bytes/s.
    pub fn peak_bandwidth(&self, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::Simple => self.bandwidth,
            Protocol::Ll128 => self.bandwidth * calib::LL128_BW_FRACTION,
        }
    }

    /// Effective achieved bandwidth (bytes/s) for messages of `size`
    /// bytes, i.e. `size / transfer_time` ignoring the one-time α.
    pub fn effective_bandwidth(&self, size: f64, protocol: Protocol) -> f64 {
        if size <= 0.0 {
            return 0.0;
        }
        size / (self.per_msg(protocol) + size / self.saturated_bandwidth(size, protocol))
    }

    /// Bandwidth after the message-size saturation curve (no per-message
    /// overhead), bytes/s.
    pub fn saturated_bandwidth(&self, size: f64, protocol: Protocol) -> f64 {
        self.peak_bandwidth(protocol) * size / (size + self.msg_half)
    }

    /// Time to push `count` messages of `size` bytes each through this
    /// link serially (the per-NIC serialization of sends to distinct
    /// peers), excluding the one-time α.
    pub fn burst_time(&self, count: usize, size: f64, protocol: Protocol) -> Seconds {
        if count == 0 || size <= 0.0 {
            return 0.0;
        }
        count as f64 * (self.per_msg(protocol) + size / self.saturated_bandwidth(size, protocol))
    }

    /// One-time base latency.
    pub fn base_latency(&self) -> Seconds {
        self.alpha
    }
}

/// Fabric contention factor for a job spanning `nnodes` nodes: effective
/// inter-node bandwidth divides by this. Reproduces the gentle busbw
/// decline with scale in Figure 6b.
pub fn fabric_contention(nnodes: usize) -> f64 {
    (nnodes.max(1) as f64).powf(calib::FABRIC_CONTENTION_EXP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_underutilize_bandwidth() {
        let ib = LinkModel::hdr_infiniband();
        let eff_512b = ib.effective_bandwidth(512.0, Protocol::Simple);
        let eff_1m = ib.effective_bandwidth(1024.0 * 1024.0, Protocol::Simple);
        let eff_256m = ib.effective_bandwidth(256.0 * 1024.0 * 1024.0, Protocol::Simple);
        assert!(eff_512b < eff_1m && eff_1m < eff_256m);
        // Large messages approach peak.
        assert!(eff_256m > 0.9 * ib.bandwidth);
        // Tiny messages achieve only a small fraction of peak.
        assert!(eff_512b < 0.05 * ib.bandwidth);
    }

    #[test]
    fn ll128_wins_small_loses_large() {
        let ib = LinkModel::hdr_infiniband();
        let small = 8.0 * 1024.0;
        let large = 256.0 * 1024.0 * 1024.0;
        assert!(
            ib.effective_bandwidth(small, Protocol::Ll128)
                > ib.effective_bandwidth(small, Protocol::Simple)
        );
        assert!(
            ib.effective_bandwidth(large, Protocol::Ll128)
                < ib.effective_bandwidth(large, Protocol::Simple)
        );
    }

    #[test]
    fn nvlink_is_faster_than_ib() {
        let nv = LinkModel::nvlink();
        let ib = LinkModel::hdr_infiniband();
        let size = 1024.0 * 1024.0;
        assert!(
            nv.effective_bandwidth(size, Protocol::Simple)
                > 3.0 * ib.effective_bandwidth(size, Protocol::Simple)
        );
    }

    #[test]
    fn burst_time_scales_with_count() {
        let ib = LinkModel::hdr_infiniband();
        let one = ib.burst_time(1, 4096.0, Protocol::Simple);
        let many = ib.burst_time(100, 4096.0, Protocol::Simple);
        assert!((many - 100.0 * one).abs() < 1e-12);
        assert_eq!(ib.burst_time(0, 4096.0, Protocol::Simple), 0.0);
    }

    #[test]
    fn contention_grows_slowly_with_nodes() {
        assert_eq!(fabric_contention(1), 1.0);
        let c256 = fabric_contention(256);
        assert!(c256 > 1.2 && c256 < 2.5, "c256 = {c256}");
    }
}
