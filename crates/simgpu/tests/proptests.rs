//! Property-based tests for the simulator's structural invariants.

use proptest::prelude::*;
use tutel_simgpu::{GpuCostModel, LinkModel, Protocol, StreamId, Timeline, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn topology_rank_mapping_is_consistent(nnodes in 1usize..16, gpn in 1usize..16) {
        let t = Topology::new(nnodes, gpn);
        for rank in 0..t.world_size() {
            let node = t.node_of(rank);
            let local = t.local_rank(rank);
            prop_assert!(node < nnodes);
            prop_assert!(local < gpn);
            prop_assert_eq!(node * gpn + local, rank);
            prop_assert!(t.ranks_on_node(node).contains(&rank));
        }
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_size(
        sizes in proptest::collection::vec(1.0f64..1e9, 2..10),
    ) {
        let ib = LinkModel::hdr_infiniband();
        let mut sorted = sizes.clone();
        sorted.sort_by(f64::total_cmp);
        let mut last = 0.0;
        for s in sorted {
            let bw = ib.effective_bandwidth(s, Protocol::Simple);
            prop_assert!(bw >= last - 1e-6, "bandwidth decreased at {s}");
            prop_assert!(bw <= ib.bandwidth);
            last = bw;
        }
    }

    #[test]
    fn gemm_time_is_monotone_in_every_dimension(
        b in 1usize..64, r in 1usize..512, k in 1usize..512, n in 1usize..512,
    ) {
        let gpu = GpuCostModel::a100();
        let t = gpu.gemm_time(b, r, k, n);
        prop_assert!(t > 0.0);
        prop_assert!(gpu.gemm_time(b + 1, r, k, n) >= t);
        prop_assert!(gpu.gemm_time(b, r + 1, k, n) >= t);
        prop_assert!(gpu.gemm_time(b, r, k + 1, n) >= t);
        prop_assert!(gpu.gemm_time(b, r, k, n + 1) >= t);
    }

    #[test]
    fn strided_copies_never_beat_contiguous(
        bytes in 1.0f64..1e9, chunk in 4.0f64..1e7,
    ) {
        let gpu = GpuCostModel::a100();
        prop_assert!(gpu.strided_copy_time(bytes, chunk) >= gpu.copy_time(bytes) - 1e-12);
    }

    #[test]
    fn timeline_makespan_bounds(
        durations in proptest::collection::vec(0.0f64..10.0, 1..24),
        streams in proptest::collection::vec(0usize..3, 1..24),
    ) {
        let n = durations.len().min(streams.len());
        let mut tl = Timeline::new();
        let mut prev = None;
        for i in 0..n {
            // Chain: each op depends on the previous (worst case), so
            // makespan must equal the sum; also check the no-deps case
            // lower bound via stream_busy.
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(tl.push(StreamId(streams[i]), durations[i], &deps));
        }
        let total: f64 = durations[..n].iter().sum();
        prop_assert!((tl.makespan() - total).abs() < 1e-9, "chained ops serialize fully");

        // Independent ops: makespan = max over streams of busy time.
        let mut tl2 = Timeline::new();
        for i in 0..n {
            tl2.push(StreamId(streams[i]), durations[i], &[]);
        }
        let max_busy = (0..3)
            .map(|s| tl2.stream_busy(StreamId(s)))
            .fold(0.0f64, f64::max);
        prop_assert!((tl2.makespan() - max_busy).abs() < 1e-9);
        prop_assert!(tl2.makespan() <= total + 1e-9);
    }
}
