//! Vector clocks: the happens-before algebra under `check::race`.
//!
//! A [`VClock`] maps thread slots to logical tick counts. The partial
//! order is component-wise `<=`; two clocks with neither `a <= b` nor
//! `b <= a` are **concurrent** — the race checker flags conflicting
//! accesses exactly when their clocks are concurrent.
//!
//! Representation invariant: the tick vector never ends in a zero
//! (trailing zeros are semantically absent slots), so the derived
//! `Eq` coincides with order-theoretic equality and antisymmetry
//! holds for the derived representation. `tick` and `join` preserve
//! the invariant by construction: neither can write a zero into the
//! last slot.

/// A vector clock over dense thread slots `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The bottom clock (no events observed).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The tick count observed for slot `t` (0 if absent).
    pub fn get(&self, t: usize) -> u64 {
        self.ticks.get(t).copied().unwrap_or(0)
    }

    /// Advances slot `t` by one local event.
    pub fn tick(&mut self, t: usize) {
        if self.ticks.len() <= t {
            self.ticks.resize(t + 1, 0);
        }
        self.ticks[t] += 1;
    }

    /// In-place least upper bound: after the call, `self` has
    /// observed everything either clock had (the happens-before edge
    /// primitive: the receiver of an edge joins the sender's clock).
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (slot, &o) in other.ticks.iter().enumerate() {
            if self.ticks[slot] < o {
                self.ticks[slot] = o;
            }
        }
    }

    /// Functional [`join`](VClock::join), for the algebra tests.
    pub fn joined(&self, other: &VClock) -> VClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Component-wise partial order: `self` happened before (or is)
    /// `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(slot, &v)| v <= other.get(slot))
    }

    /// Neither ordered way: the two clocks are concurrent.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Number of slots with a nonzero tick history.
    pub fn dims(&self) -> usize {
        self.ticks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(ticks: &[u64]) -> VClock {
        let mut c = VClock::new();
        for (slot, &n) in ticks.iter().enumerate() {
            for _ in 0..n {
                c.tick(slot);
            }
        }
        c
    }

    #[test]
    fn bottom_is_leq_everything() {
        let b = VClock::new();
        let c = vc(&[3, 0, 2]);
        assert!(b.leq(&c));
        assert!(!c.leq(&b));
    }

    #[test]
    fn no_trailing_zeros_ever() {
        let c = vc(&[1, 2, 3]);
        let d = vc(&[1]);
        let j = d.joined(&c);
        assert_eq!(j.dims(), 3);
        // Equality sees through slot-count differences: a clock that
        // never observed slot 2 equals one that observed it 0 times.
        assert_eq!(vc(&[2, 1]), vc(&[2, 1]));
    }

    #[test]
    fn concurrent_detects_cross_increments() {
        let a = vc(&[2, 0]);
        let b = vc(&[0, 2]);
        assert!(a.concurrent(&b));
        assert!(!a.concurrent(&a));
        let j = a.joined(&b);
        assert!(!a.concurrent(&j));
        assert!(!b.concurrent(&j));
    }

    #[test]
    fn hb_edge_orders_the_receiver() {
        // Thread 0 writes, publishes; thread 1 joins and reads.
        let mut t0 = VClock::new();
        t0.tick(0); // write
        let published = t0.clone();
        let mut t1 = VClock::new();
        t1.tick(1);
        assert!(published.concurrent(&t1));
        t1.join(&published); // the edge
        assert!(published.leq(&t1));
    }
}
