//! `tutel-explore`: the shared schedule-exploration framework under
//! every dynamic checker in the workspace.
//!
//! Both `comm::sched` (the deterministic message scheduler from the
//! concurrency checker) and `check::race` (the happens-before race /
//! arena-aliasing checker) explore interleavings the same way, and
//! this crate is the single implementation of that contract:
//!
//! 1. **Seeded choice points** ([`Chooser`]): every nondeterministic
//!    decision — which eligible message to deliver, which region a
//!    simulated pool participant steals from — draws from one
//!    SplitMix64 stream derived from the sweep seed. Candidates are
//!    canonically ordered by the caller before the draw, so a seed
//!    names exactly one schedule.
//! 2. **Schedule signatures** ([`SigHash`]): an order-sensitive
//!    FNV-1a fold of the choices taken. Equal signatures ⇒ the same
//!    schedule executed; sweeps count distinct signatures to prove
//!    they actually explored.
//! 3. **Replayable-by-seed diagnostics** ([`Finding`]): every defect
//!    carries the seed that exposes it, so `--sched --seeds N` /
//!    `--race --seeds N` failures paste back into a single-seed
//!    replay.
//! 4. **Structural determinism** ([`sweep_seeds`]): per-seed
//!    *structure* signatures (chunk grids, reduction order marks,
//!    output bits) must be identical across the sweep — the
//!    determinism contract asserted structurally, not just
//!    observed-equal. Divergence yields a `schedule_dependent`
//!    finding naming two seeds that disagree.
//!
//! The happens-before side lives in [`vclock`]: a trailing-zero
//! normalized vector clock with the usual join/partial-order algebra
//! (property-tested in `tests/proptests.rs`).
//!
//! The crate is std-only and sits in the workspace base tier next to
//! `tutel-obs` and `tutel-rt`, so `comm` can depend on it behind its
//! `check-sched` feature without a layering cycle; `tutel-check`
//! re-exports it as `check::explore`.

pub mod vclock;

pub use vclock::VClock;

/// SplitMix64: the statistically-solid 64-bit mixer both checkers use
/// for schedule choices. One `u64` of state, passes BigCrush, and —
/// critically for replay — trivially serializable as the seed itself.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-stream seed from a sweep seed and a
/// caller-chosen salt (rank, chunk index, …), so per-rank or
/// per-chunk [`Chooser`]s explore independently while remaining a
/// pure function of the sweep seed.
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut s = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// A seeded choice point: the scheduler's source of controlled
/// nondeterminism.
///
/// Seeding XORs in the classic LCG constant and discards one draw so
/// that small consecutive seeds (0, 1, 2, … — what sweeps use) still
/// land in well-separated parts of the stream. This is bit-identical
/// to the PRNG the pre-framework `comm::sched` used, so migrating
/// onto [`Chooser`] preserved every historical schedule signature.
#[derive(Debug, Clone)]
pub struct Chooser {
    state: u64,
    draws: u64,
}

impl Chooser {
    /// A chooser for one schedule, named by `seed`.
    pub fn new(seed: u64) -> Chooser {
        let mut state = seed ^ 0x5DEECE66D;
        splitmix64(&mut state);
        Chooser { state, draws: 0 }
    }

    /// Picks an index in `0..n` from canonically-ordered candidates.
    ///
    /// Always consumes exactly one draw when `n >= 1` — even for a
    /// single candidate — so the draw sequence (and therefore every
    /// downstream choice) depends only on *how many* choice points
    /// ran, not on how constrained each one was. `n == 0` returns 0
    /// without drawing.
    pub fn choose(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        self.draws += 1;
        (splitmix64(&mut self.state) as usize) % n
    }

    /// A raw draw, for callers that need a full word (fault plans,
    /// derived payloads).
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        splitmix64(&mut self.state)
    }

    /// How many draws this chooser has consumed.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

/// FNV-1a offset basis: the starting value of every schedule
/// signature.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive FNV-1a fold: the schedule (and structure)
/// signature accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigHash(u64);

impl SigHash {
    /// A fresh signature at the FNV offset basis.
    pub fn new() -> SigHash {
        SigHash(FNV_OFFSET)
    }

    /// Folds one word.
    pub fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Folds a sequence of words, in order.
    pub fn mix_many(&mut self, vs: &[u64]) {
        for &v in vs {
            self.mix(v);
        }
    }

    /// Folds a string byte-by-byte (labels, rule names).
    pub fn mix_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.mix(b as u64);
        }
    }

    /// The folded value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Default for SigHash {
    fn default() -> SigHash {
        SigHash::new()
    }
}

/// One defect found by a checker, replayable by seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule kind: `race`, `arena_alias`, `leak`, `deadlock`,
    /// `schedule_dependent`, … — the `rule` half of a `file:rule`
    /// baseline key.
    pub rule: &'static str,
    /// The sweep seed that exposes the defect; rerunning the same
    /// driver with this seed reproduces it bit-for-bit.
    pub seed: u64,
    /// Human-readable attribution.
    pub detail: String,
    /// Source sites (`file:line`) involved, when the checker captured
    /// them (arena take/put/access sites via `#[track_caller]`).
    pub sites: Vec<String>,
}

impl Finding {
    /// A finding with no captured source sites.
    pub fn new(rule: &'static str, seed: u64, detail: String) -> Finding {
        Finding {
            rule,
            seed,
            detail,
            sites: Vec::new(),
        }
    }

    /// Attaches source sites.
    pub fn with_sites(mut self, sites: Vec<String>) -> Finding {
        self.sites = sites;
        self
    }

    /// One-line rendering: `[rule] detail (replay seed N; sites …)`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "[{}] {} (replay seed {})",
            self.rule, self.detail, self.seed
        );
        if !self.sites.is_empty() {
            s.push_str(&format!("; sites: {}", self.sites.join(", ")));
        }
        s
    }
}

/// What one seed's run produced, as the sweep driver sees it.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// Order-sensitive schedule signature: differs across seeds when
    /// the sweep genuinely explores.
    pub signature: u64,
    /// Structural signature (chunk grids, reduction order, output
    /// bits): must be *identical* across seeds, or the workload's
    /// result depends on the schedule.
    pub structure: u64,
    /// Defects this seed exposed.
    pub findings: Vec<Finding>,
}

/// Outcome of sweeping a driver over `0..seeds`.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// What was swept (for reports).
    pub name: String,
    /// Seeds executed.
    pub schedules: u64,
    /// Distinct schedule signatures observed.
    pub distinct: usize,
    /// Every finding from every seed, plus a `schedule_dependent`
    /// finding if structure signatures diverged.
    pub findings: Vec<Finding>,
    /// `(structure signature, first seed exhibiting it)` in first-seen
    /// order; more than one entry breaks the determinism contract.
    pub structures: Vec<(u64, u64)>,
}

impl SweepOutcome {
    /// True when the sweep found nothing.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when every seed produced the same structural signature.
    pub fn structure_stable(&self) -> bool {
        self.structures.len() <= 1
    }
}

/// Sweeps `run` over seeds `0..seeds`, collecting findings, counting
/// distinct schedules, and asserting structural determinism: if two
/// seeds disagree on the structure signature, a `schedule_dependent`
/// finding names both so either can be replayed.
pub fn sweep_seeds<F>(name: &str, seeds: u64, mut run: F) -> SweepOutcome
where
    F: FnMut(u64) -> SeedRun,
{
    let mut distinct = std::collections::BTreeSet::new();
    let mut findings = Vec::new();
    let mut structures: Vec<(u64, u64)> = Vec::new();
    for seed in 0..seeds {
        let r = run(seed);
        distinct.insert(r.signature);
        findings.extend(r.findings);
        if !structures.iter().any(|&(s, _)| s == r.structure) {
            structures.push((r.structure, seed));
        }
    }
    if structures.len() > 1 {
        let (s0, seed0) = structures[0];
        let (s1, seed1) = structures[1];
        findings.push(Finding::new(
            "schedule_dependent",
            seed1,
            format!(
                "{name}: structural signature depends on the schedule: \
                 seed {seed0} -> {s0:#018x} vs seed {seed1} -> {s1:#018x} \
                 (reduction shape or chunk grid is not schedule-independent)"
            ),
        ));
    }
    SweepOutcome {
        name: name.to_string(),
        schedules: seeds,
        distinct: distinct.len(),
        findings,
        structures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chooser_is_deterministic_and_always_draws() {
        let mut a = Chooser::new(7);
        let mut b = Chooser::new(7);
        let picks_a: Vec<usize> = (1..20).map(|n| a.choose(n)).collect();
        let picks_b: Vec<usize> = (1..20).map(|n| b.choose(n)).collect();
        assert_eq!(picks_a, picks_b);
        assert_eq!(a.draws(), 19);
        // n == 1 still consumes a draw: downstream choices must not
        // depend on how constrained earlier choice points were.
        let mut c = Chooser::new(7);
        let mut d = Chooser::new(7);
        c.choose(1);
        d.choose(5);
        assert_eq!(c.choose(1000), d.choose(1000));
        // n == 0 draws nothing.
        let mut e = Chooser::new(7);
        assert_eq!(e.choose(0), 0);
        assert_eq!(e.draws(), 0);
    }

    #[test]
    fn chooser_matches_the_legacy_sched_prng() {
        // comm::sched seeded `state = seed ^ 0x5DEECE66D` and burned
        // one draw; its pick was `splitmix64 % n`. The migration must
        // keep every historical schedule signature.
        let seed = 42u64;
        let mut state = seed ^ 0x5DEECE66D;
        splitmix64(&mut state);
        let legacy = splitmix64(&mut state) as usize % 13;
        assert_eq!(Chooser::new(seed).choose(13), legacy);
    }

    #[test]
    fn sighash_matches_manual_fnv() {
        let mut sig = SigHash::new();
        sig.mix_many(&[1, 2, 3]);
        let mut manual = FNV_OFFSET;
        for v in [1u64, 2, 3] {
            manual = (manual ^ v).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(sig.value(), manual);
        // Order-sensitive.
        let mut rev = SigHash::new();
        rev.mix_many(&[3, 2, 1]);
        assert_ne!(sig.value(), rev.value());
    }

    #[test]
    fn derive_seed_separates_salts() {
        let s = 5u64;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_eq!(derive_seed(s, 3), derive_seed(s, 3));
    }

    #[test]
    fn sweep_flags_structure_divergence_with_both_seeds() {
        // A driver whose "structure" flips on seed parity.
        let out = sweep_seeds("toy", 8, |seed| SeedRun {
            signature: seed,
            structure: seed % 2,
            findings: Vec::new(),
        });
        assert_eq!(out.distinct, 8);
        assert!(!out.structure_stable());
        let f = out
            .findings
            .iter()
            .find(|f| f.rule == "schedule_dependent")
            .expect("divergence must be flagged");
        assert!(f.detail.contains("seed 0"), "{}", f.detail);
        assert!(f.detail.contains("seed 1"), "{}", f.detail);
    }

    #[test]
    fn sweep_is_clean_on_stable_structure() {
        let out = sweep_seeds("toy", 8, |seed| SeedRun {
            signature: seed,
            structure: 0xABCD,
            findings: Vec::new(),
        });
        assert!(out.passed());
        assert!(out.structure_stable());
    }
}
