//! Property tests for the vector-clock algebra: `join` is a
//! semilattice operation (associative, commutative, idempotent) and
//! `leq` is the matching partial order (reflexive, antisymmetric,
//! transitive, with `join` as least upper bound).

use proptest::collection::vec;
use proptest::prelude::*;
use tutel_explore::VClock;

/// Builds a clock from raw per-slot tick counts (trailing zeros are
/// fine: `tick` construction normalizes them away).
fn clock(ticks: &[u64]) -> VClock {
    let mut c = VClock::new();
    for (slot, &n) in ticks.iter().enumerate() {
        for _ in 0..n {
            c.tick(slot);
        }
    }
    c
}

fn any_clock() -> impl Strategy<Value = VClock> {
    vec(0u64..5, 0..6).prop_map(|ticks| clock(&ticks))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_is_commutative(a in any_clock(), b in any_clock()) {
        prop_assert_eq!(a.joined(&b), b.joined(&a));
    }

    #[test]
    fn join_is_associative(a in any_clock(), b in any_clock(), c in any_clock()) {
        prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
    }

    #[test]
    fn join_is_idempotent(a in any_clock()) {
        prop_assert_eq!(a.joined(&a), a);
    }

    #[test]
    fn leq_is_reflexive(a in any_clock()) {
        prop_assert!(a.leq(&a));
    }

    #[test]
    fn leq_is_antisymmetric(a in any_clock(), b in any_clock()) {
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn leq_is_transitive(a in any_clock(), b in any_clock(), c in any_clock()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn join_is_an_upper_bound(a in any_clock(), b in any_clock()) {
        let j = a.joined(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn join_is_the_least_upper_bound(a in any_clock(), b in any_clock(), c in any_clock()) {
        // Any common upper bound dominates the join.
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(a.joined(&b).leq(&c));
        }
    }

    #[test]
    fn tick_strictly_advances(a in any_clock(), slot in 0usize..6) {
        let mut t = a.clone();
        t.tick(slot);
        prop_assert!(a.leq(&t));
        prop_assert!(!t.leq(&a));
    }

    #[test]
    fn concurrent_is_symmetric_and_irreflexive(a in any_clock(), b in any_clock()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        prop_assert!(!a.concurrent(&a));
    }

    #[test]
    fn get_matches_partial_order(a in any_clock(), b in any_clock()) {
        let dominated = (0..a.dims().max(b.dims())).all(|s| a.get(s) <= b.get(s));
        prop_assert_eq!(a.leq(&b), dominated);
    }
}
