//! Differential surface for the dropless grouped compute path.
//!
//! PR-level claim: switching the serving step from padded `(E, C, M)`
//! slabs to ragged bins + grouped GEMM changes the wire layout and
//! the FLOP count, **never the numbers**. This module pins that the
//! same way [`crate::serve`] pins continuous batching:
//!
//! * every {P1, P2} × {linear, 2DH} × degree {1, 2} × world {1, 2, 4}
//!   point executes one seeded micro-batch through the grouped step
//!   and compares against (a) the sequential per-row reference and
//!   (b) the padded capacity twin, under the crate's [ULP tolerance
//!   policy](crate#ulp-tolerance-policy) — **bitwise** for P1 at the
//!   reference thread count, ≤ 4 scaled ULP for P2;
//! * a skewed batch (crafted so one expert dominates) rides every
//!   point, because ragged bin shapes are exactly what the grouped
//!   kernels must not let leak into the math;
//! * a seeded [`FaultPlan`] replay arms the reliability layer under
//!   the ragged v-All-to-Alls and demands bitwise recovery.

use tutel_comm::{FaultPlan, ReliableConfig, RetryPolicy};
use tutel_obs::Telemetry;
use tutel_serve::exec::{
    execute_step, execute_step_reliable, reference_rows, ExecConfig, Strategy as ServeStrategy,
};
use tutel_serve::model::{ModelDims, ServeModel};
use tutel_serve::request::ServeError;
use tutel_tensor::{Rng, Tensor};

use crate::reference::REF_THREADS;
use crate::{max_scaled_ulp, max_ulp, A2aAlgo, Strategy};

/// One point of the grouped conformance grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedCase {
    /// P1 or P2 expert parallelism.
    pub strategy: Strategy,
    /// Linear or 2DH v-exchange on the wire.
    pub algo: A2aAlgo,
    /// Pipeline degree (bin sub-range chunking).
    pub degree: usize,
    /// Simulated world size.
    pub world: usize,
}

impl GroupedCase {
    /// Grid label, e.g. `P1/2dh d2 w4`.
    pub fn label(&self) -> String {
        format!(
            "{}/{} d{} w{}",
            self.strategy.label(),
            self.algo.label(),
            self.degree,
            self.world
        )
    }

    /// Mirrors [`crate::Config::ulp_budget`]: P1 bitwise at the
    /// reference thread count, P2 within 4 scaled ULP.
    pub fn ulp_budget(&self) -> u32 {
        match self.strategy {
            Strategy::P1 => 0,
            Strategy::P2 => 4,
        }
    }

    fn exec_config(&self, dropless: bool) -> ExecConfig {
        ExecConfig {
            strategy: match self.strategy {
                Strategy::P1 => ServeStrategy::P1,
                Strategy::P2 => ServeStrategy::P2,
            },
            algo: self.algo.comm_algo(),
            degree: self.degree,
            world: self.world,
            threads: REF_THREADS,
            dropless,
        }
    }
}

/// The grouped grid: {P1, P2} × {lin, 2dh} × degree {1, 2} × world
/// {1, 2, 4}.
pub fn grouped_grid() -> Vec<GroupedCase> {
    let mut grid = Vec::new();
    for strategy in [Strategy::P1, Strategy::P2] {
        for algo in [A2aAlgo::Linear, A2aAlgo::TwoDh] {
            for degree in [1usize, 2] {
                for world in [1usize, 2, 4] {
                    grid.push(GroupedCase {
                        strategy,
                        algo,
                        degree,
                        world,
                    });
                }
            }
        }
    }
    grid
}

/// Verdict for one grouped grid point.
#[derive(Debug, Clone)]
pub struct GroupedVerdict {
    /// The case exercised.
    pub case_: GroupedCase,
    /// Worst element-wise ULP distance to the per-row reference.
    pub worst_ulp: u32,
    /// Worst scale-aware ULP distance to the reference.
    pub worst_scaled_ulp: f64,
    /// Grouped and padded-twin outputs agree bitwise (they always
    /// must — both re-associate nothing relative to each other).
    pub twin_bitwise: bool,
    /// Wire elements the grouped step moved vs. the padded twin.
    pub wire_grouped: u64,
    /// Wire elements the padded twin moved.
    pub wire_padded: u64,
    /// Budget applied (0 → bitwise, else scaled).
    pub budget: u32,
    /// Whether the case met its budget and the twin agreed.
    pub pass: bool,
}

/// A batch whose routing skews hard: most rows sit in one tight
/// cluster (one expert's basin) with a few dissenters, so bin shapes
/// are maximally ragged while staying seed-deterministic.
fn skewed_batch(dims: &ModelDims, rows: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed(seed);
    let anchor: Vec<f32> = (0..dims.model_dim).map(|_| rng.normal()).collect();
    let mut data = Vec::with_capacity(rows * dims.model_dim);
    for r in 0..rows {
        for (j, &a) in anchor.iter().enumerate() {
            let jitter = 0.05 * rng.normal();
            // Three of every four rows hug the anchor; the rest roam.
            if r % 4 != 3 {
                data.push(a + jitter);
            } else {
                data.push(jitter * 20.0 + (j as f32 * 0.37).sin());
            }
        }
    }
    Tensor::from_vec(data, &[rows, dims.model_dim]).expect("batch shape")
}

/// Executes one grouped grid point over two seeded batches (one
/// uniform, one skewed) and differentials against reference and twin.
///
/// # Errors
///
/// Propagates executor failures (a failure is itself a grid fail).
pub fn run_grouped_case(case: &GroupedCase, seed: u64) -> Result<GroupedVerdict, ServeError> {
    let dims = ModelDims::small(case.world);
    let model = ServeModel::materialize(dims, seed ^ 0xD80B)?;
    let uniform = Rng::seed(seed ^ 1).normal_tensor(&[11, dims.model_dim], 0.0, 1.0);
    let skewed = skewed_batch(&dims, 13, seed ^ 2);

    let mut worst_ulp = 0u32;
    let mut worst_scaled = 0.0f64;
    let mut twin_bitwise = true;
    let mut wire_grouped = 0u64;
    let mut wire_padded = 0u64;
    for batch in [&uniform, &skewed] {
        let grouped = execute_step(&model, &case.exec_config(true), batch)?;
        let padded = execute_step(&model, &case.exec_config(false), batch)?;
        let reference = reference_rows(&model, batch)?;
        worst_ulp = worst_ulp.max(max_ulp(grouped.outputs.as_slice(), reference.as_slice()));
        worst_scaled = worst_scaled.max(max_scaled_ulp(
            grouped.outputs.as_slice(),
            reference.as_slice(),
        ));
        twin_bitwise &= grouped.outputs.as_slice() == padded.outputs.as_slice();
        wire_grouped += grouped.a2a_elems;
        wire_padded += padded.a2a_elems;
    }

    let budget = case.ulp_budget();
    let within = if budget == 0 {
        worst_ulp == 0
    } else {
        worst_scaled <= f64::from(budget)
    };
    Ok(GroupedVerdict {
        case_: *case,
        worst_ulp,
        worst_scaled_ulp: worst_scaled,
        twin_bitwise,
        wire_grouped,
        wire_padded,
        budget,
        pass: within && twin_bitwise,
    })
}

/// Runs the whole grouped grid under one seed.
pub fn run_grouped_suite(seed: u64) -> Vec<Result<GroupedVerdict, ServeError>> {
    grouped_grid()
        .iter()
        .map(|case| run_grouped_case(case, seed))
        .collect()
}

/// Verdict of the ragged fault-replay differential.
#[derive(Debug, Clone)]
pub struct GroupedFaultVerdict {
    /// Faults the seeded plan actually injected (> 0 or vacuous).
    pub injected: u64,
    /// Retransmissions the retry protocol served.
    pub retransmits: u64,
    /// Faulted grouped outputs matched the solo reference bitwise.
    pub identical: bool,
    /// Overall verdict.
    pub pass: bool,
}

/// Replays a seeded drop/duplicate/delay [`FaultPlan`] under the
/// ragged v-All-to-Alls of one P1 grouped step (world 2, degree 2,
/// skewed batch so some payloads are empty) and demands bitwise
/// recovery.
///
/// # Errors
///
/// Propagates executor failures (the retry budget is sized to absorb
/// the plan, so an error is a finding, not noise).
pub fn run_grouped_fault(seed: u64) -> Result<GroupedFaultVerdict, ServeError> {
    let case = GroupedCase {
        strategy: Strategy::P1,
        algo: A2aAlgo::Linear,
        degree: 2,
        world: 2,
    };
    let dims = ModelDims::small(case.world);
    let model = ServeModel::materialize(dims, seed ^ 0xD8FA)?;
    let batch = skewed_batch(&dims, 9, seed);

    let telemetry = Telemetry::enabled();
    let rel = ReliableConfig {
        policy: RetryPolicy {
            timeout: std::time::Duration::from_millis(20),
            max_retries: 6,
            backoff: 2,
        },
        plan: Some(
            FaultPlan::new(seed)
                .with_drops(12)
                .with_duplicates(12)
                .with_delays(12, 2),
        ),
        telemetry: telemetry.clone(),
    };
    let faulted = execute_step_reliable(&model, &case.exec_config(true), &batch, rel)?;
    let baseline = execute_step(&model, &case.exec_config(true), &batch)?;
    let reference = reference_rows(&model, &batch)?;

    let injected = telemetry
        .counter_value("comm.retry.injected_drops")
        .unwrap_or(0)
        + telemetry
            .counter_value("comm.retry.injected_dups")
            .unwrap_or(0)
        + telemetry
            .counter_value("comm.retry.injected_delays")
            .unwrap_or(0);
    let retransmits = telemetry
        .counter_value("comm.retry.retransmits")
        .unwrap_or(0);
    let identical = faulted.outputs.as_slice() == reference.as_slice()
        && faulted.outputs.as_slice() == baseline.outputs.as_slice();
    Ok(GroupedFaultVerdict {
        injected,
        retransmits,
        identical,
        pass: identical && injected > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_issue_matrix() {
        let grid = grouped_grid();
        assert_eq!(grid.len(), 24);
        assert!(grid
            .iter()
            .any(|c| c.strategy == Strategy::P2 && c.algo == A2aAlgo::TwoDh && c.world == 4));
    }

    #[test]
    fn p1_grouped_step_is_bitwise_against_reference_and_twin() {
        let case = GroupedCase {
            strategy: Strategy::P1,
            algo: A2aAlgo::TwoDh,
            degree: 2,
            world: 4,
        };
        let v = run_grouped_case(&case, 0xD1CE).unwrap();
        assert!(v.pass, "{}: {v:?}", case.label());
        assert_eq!(v.worst_ulp, 0);
        assert!(v.twin_bitwise);
        assert!(
            v.wire_grouped < v.wire_padded,
            "grouped moved {} wire elems, padded {}",
            v.wire_grouped,
            v.wire_padded
        );
    }

    #[test]
    fn p2_grouped_step_stays_within_the_scaled_budget() {
        let case = GroupedCase {
            strategy: Strategy::P2,
            algo: A2aAlgo::Linear,
            degree: 2,
            world: 2,
        };
        let v = run_grouped_case(&case, 0xD1CE).unwrap();
        assert!(v.pass, "{}: {v:?}", case.label());
        assert!(v.worst_scaled_ulp <= 4.0);
        assert!(v.twin_bitwise, "P2 twin must still agree bitwise");
    }

    #[test]
    fn ragged_fault_replay_recovers_every_output_bit() {
        let v = run_grouped_fault(0x5EED).unwrap();
        assert!(v.pass, "{v:?}");
        assert!(v.injected > 0);
    }
}
