//! Differential surface for the serving engine.
//!
//! The serving tier (`tutel-serve`) claims that continuous batching
//! is *observationally free*: whatever micro-batches the scheduler
//! composes, each request's output equals the output of running that
//! request alone through the sequential reference executor
//! ([`tutel_serve::exec::reference_rows`]). This module proves it the
//! same way [`crate::matrix`] proves strategy equivalence:
//!
//! * a seeded bursty trace is pushed through the full ingress → EDF
//!   admission → fill-or-timeout batcher → distributed step path, for
//!   every {P1, P2} × {linear, 2DH} × degree {1, 2} × world {1, 2}
//!   point at the reference thread count;
//! * every completed request is replayed solo through the reference
//!   and compared under the crate's [ULP tolerance
//!   policy](crate#ulp-tolerance-policy) — **bitwise** for P1 (the
//!   serve path routes dropless, so batch-mates cannot couple), ≤ 4
//!   scaled ULP for P2 (hidden-shard re-association);
//! * a seeded [`FaultPlan`] replay arms the reliability layer on the
//!   step's All-to-All and demands recovery keep every output bit.

use tutel_comm::{FaultPlan, ReliableConfig, RetryPolicy};
use tutel_obs::Telemetry;
use tutel_serve::batcher::BatcherConfig;
use tutel_serve::engine::{run_trace, EngineConfig, ServiceModel};
use tutel_serve::exec::{
    execute_step, execute_step_reliable, reference_rows, ExecConfig, Strategy as ServeStrategy,
};
use tutel_serve::loadgen::{generate_trace, Arrival, TraceConfig};
use tutel_serve::model::{ModelDims, ServeModel};
use tutel_serve::request::ServeError;
use tutel_tensor::Rng;

use crate::reference::REF_THREADS;
use crate::{max_scaled_ulp, max_ulp, A2aAlgo, Strategy};

/// One point of the serving conformance grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCase {
    /// P1 or P2 expert parallelism for every step.
    pub strategy: Strategy,
    /// Linear or 2DH exchange on the wire.
    pub algo: A2aAlgo,
    /// Pipeline degree of the step executor.
    pub degree: usize,
    /// Simulated world size.
    pub world: usize,
}

impl ServeCase {
    /// Grid label, e.g. `P2/2dh d2 w2`.
    pub fn label(&self) -> String {
        format!(
            "{}/{} d{} w{}",
            self.strategy.label(),
            self.algo.label(),
            self.degree,
            self.world
        )
    }

    /// The tolerance for this case, mirroring
    /// [`crate::Config::ulp_budget`]: the grid always runs at
    /// [`REF_THREADS`], so only the strategy decides.
    pub fn ulp_budget(&self) -> u32 {
        match self.strategy {
            Strategy::P1 => 0,
            Strategy::P2 => 4,
        }
    }

    fn serve_strategy(&self) -> ServeStrategy {
        match self.strategy {
            Strategy::P1 => ServeStrategy::P1,
            Strategy::P2 => ServeStrategy::P2,
        }
    }

    fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            strategy: self.serve_strategy(),
            algo: self.algo.comm_algo(),
            degree: self.degree,
            world: self.world,
            threads: REF_THREADS,
            dropless: false,
        }
    }
}

/// The full serving grid: {P1, P2} × {lin, 2dh} × degree {1, 2} ×
/// world {1, 2}.
pub fn serve_grid() -> Vec<ServeCase> {
    let mut grid = Vec::new();
    for strategy in [Strategy::P1, Strategy::P2] {
        for algo in [A2aAlgo::Linear, A2aAlgo::TwoDh] {
            for degree in [1usize, 2] {
                for world in [1usize, 2] {
                    grid.push(ServeCase {
                        strategy,
                        algo,
                        degree,
                        world,
                    });
                }
            }
        }
    }
    grid
}

/// Verdict for one grid point.
#[derive(Debug, Clone)]
pub struct ServeVerdict {
    /// The case exercised.
    pub case_: ServeCase,
    /// Requests completed by the engine (must cover the trace).
    pub completed: usize,
    /// Requests the trace offered.
    pub offered: usize,
    /// Micro-batch steps the batcher actually composed.
    pub steps: u64,
    /// Worst element-wise ULP distance to any request's solo
    /// reference (the P1 metric).
    pub worst_ulp: u32,
    /// Worst scale-aware ULP distance (the P2 metric).
    pub worst_scaled_ulp: f64,
    /// Budget applied (0 → bitwise, else scaled).
    pub budget: u32,
    /// Whether the case met its budget and completed every request.
    pub pass: bool,
}

/// The seeded request mix every grid point serves: bursts of three
/// so admission composes mixed batches, token counts 1–4 so batch
/// shapes vary step to step.
fn serve_trace(seed: u64, model_dim: usize) -> TraceConfig {
    TraceConfig {
        arrivals: Arrival::Bursty {
            burst: 3,
            idle_us: 150,
        },
        requests: 12,
        tokens_min: 1,
        tokens_max: 4,
        deadline_us: 100_000,
        model_dim,
        seed,
    }
}

/// Engine knobs shared by the whole grid: five slots and real
/// admission patience, so steps genuinely mix requests.
fn engine_config(exec: ExecConfig) -> EngineConfig {
    EngineConfig {
        batcher: BatcherConfig {
            max_batch_tokens: 5,
            max_inflight: 5,
            admit_timeout_us: 80,
        },
        service: ServiceModel {
            step_floor_us: 100,
            per_token_us: 10,
        },
        queue_capacity: 64,
        exec,
    }
}

/// Serves the seeded trace at one grid point and compares every
/// request against its solo reference.
///
/// # Errors
///
/// Propagates engine/executor failures (a failure is itself a grid
/// fail — the caller reports it).
pub fn run_serve_case(case: &ServeCase, seed: u64) -> Result<ServeVerdict, ServeError> {
    let dims = ModelDims::small(case.world);
    let model = ServeModel::materialize(dims, seed ^ 0x5E57E)?;
    let trace = serve_trace(seed, dims.model_dim);
    let requests = generate_trace(&trace, 0);
    let originals = requests.clone();

    let tel = Telemetry::disabled();
    let report = run_trace(&model, &engine_config(case.exec_config()), requests, &tel)?;

    let mut worst_ulp = 0u32;
    let mut worst_scaled = 0.0f64;
    for outcome in &report.outcomes {
        let Some(req) = originals.iter().find(|r| r.id == outcome.id) else {
            worst_ulp = u32::MAX;
            worst_scaled = f64::INFINITY;
            continue;
        };
        let reference = reference_rows(&model, &req.tokens)?;
        worst_ulp = worst_ulp.max(max_ulp(outcome.output.as_slice(), reference.as_slice()));
        worst_scaled = worst_scaled.max(max_scaled_ulp(
            outcome.output.as_slice(),
            reference.as_slice(),
        ));
    }

    let budget = case.ulp_budget();
    let within = if budget == 0 {
        worst_ulp == 0
    } else {
        worst_scaled <= f64::from(budget)
    };
    let completed = report.completed();
    Ok(ServeVerdict {
        case_: *case,
        completed,
        offered: trace.requests,
        steps: report.steps,
        worst_ulp,
        worst_scaled_ulp: worst_scaled,
        budget,
        pass: within && completed == trace.requests && report.rejected == 0,
    })
}

/// Runs the whole grid under one seed.
pub fn run_serve_suite(seed: u64) -> Vec<Result<ServeVerdict, ServeError>> {
    serve_grid()
        .iter()
        .map(|case| run_serve_case(case, seed))
        .collect()
}

/// Verdict of the fault-replay differential.
#[derive(Debug, Clone)]
pub struct ServeFaultVerdict {
    /// Faults the seeded plan actually injected (> 0 or the scenario
    /// is vacuous).
    pub injected: u64,
    /// Retransmissions the retry protocol served.
    pub retransmits: u64,
    /// Faulted outputs matched the solo reference bitwise.
    pub identical: bool,
    /// Overall verdict.
    pub pass: bool,
}

/// Replays a seeded mixed drop/duplicate/delay [`FaultPlan`] against
/// one P1 serving step at world 2 and demands bitwise recovery: the
/// faulted step must still equal the per-row reference exactly.
///
/// # Errors
///
/// Propagates executor failures (the retry budget is sized to absorb
/// the plan, so an error is a finding, not noise).
pub fn run_serve_fault(seed: u64) -> Result<ServeFaultVerdict, ServeError> {
    let case = ServeCase {
        strategy: Strategy::P1,
        algo: A2aAlgo::Linear,
        degree: 2,
        world: 2,
    };
    let dims = ModelDims::small(case.world);
    let model = ServeModel::materialize(dims, seed ^ 0xFA17)?;
    let mut rng = Rng::seed(seed);
    let batch = rng.normal_tensor(&[6, dims.model_dim], 0.0, 1.0);

    let telemetry = Telemetry::enabled();
    let rel = ReliableConfig {
        policy: RetryPolicy {
            timeout: std::time::Duration::from_millis(20),
            max_retries: 6,
            backoff: 2,
        },
        plan: Some(
            FaultPlan::new(seed)
                .with_drops(12)
                .with_duplicates(12)
                .with_delays(12, 2),
        ),
        telemetry: telemetry.clone(),
    };
    let faulted = execute_step_reliable(&model, &case.exec_config(), &batch, rel)?;
    let baseline = execute_step(&model, &case.exec_config(), &batch)?;
    let reference = reference_rows(&model, &batch)?;

    let injected = telemetry
        .counter_value("comm.retry.injected_drops")
        .unwrap_or(0)
        + telemetry
            .counter_value("comm.retry.injected_dups")
            .unwrap_or(0)
        + telemetry
            .counter_value("comm.retry.injected_delays")
            .unwrap_or(0);
    let retransmits = telemetry
        .counter_value("comm.retry.retransmits")
        .unwrap_or(0);
    let identical = faulted.outputs.as_slice() == reference.as_slice()
        && faulted.outputs.as_slice() == baseline.outputs.as_slice();
    Ok(ServeFaultVerdict {
        injected,
        retransmits,
        identical,
        pass: identical && injected > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_issue_matrix() {
        let grid = serve_grid();
        assert_eq!(grid.len(), 16);
        assert!(grid
            .iter()
            .any(|c| c.strategy == Strategy::P2 && c.degree == 2 && c.world == 2));
    }

    #[test]
    fn p1_batched_serving_is_bitwise_against_the_reference() {
        let case = ServeCase {
            strategy: Strategy::P1,
            algo: A2aAlgo::TwoDh,
            degree: 2,
            world: 2,
        };
        let v = run_serve_case(&case, 0xBEEF).unwrap();
        assert!(v.pass, "{}: {v:?}", case.label());
        assert_eq!(v.worst_ulp, 0);
        assert_eq!(v.completed, v.offered);
        assert!(v.steps > 0);
    }

    #[test]
    fn p2_batched_serving_stays_within_the_scaled_budget() {
        let case = ServeCase {
            strategy: Strategy::P2,
            algo: A2aAlgo::Linear,
            degree: 2,
            world: 2,
        };
        let v = run_serve_case(&case, 0xBEEF).unwrap();
        assert!(v.pass, "{}: {v:?}", case.label());
        assert!(v.worst_scaled_ulp <= 4.0);
    }

    #[test]
    fn fault_replay_recovers_every_output_bit() {
        let v = run_serve_fault(0x5EED).unwrap();
        assert!(v.pass, "{v:?}");
        assert!(v.injected > 0);
    }

    #[test]
    fn verdicts_are_seed_deterministic() {
        let case = ServeCase {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: 1,
            world: 2,
        };
        let a = run_serve_case(&case, 7).unwrap();
        let b = run_serve_case(&case, 7).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.worst_ulp, b.worst_ulp);
        assert_eq!(a.pass, b.pass);
    }
}
