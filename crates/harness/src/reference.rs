//! The single-threaded, single-rank reference executor.
//!
//! One fixed, strategy-free execution of the full MoE layer — gate →
//! capacity → dispatch (fast encode) → FFN → combine (fast decode) →
//! aux loss, forward and backward — against which every point of the
//! conformance matrix is compared. It mirrors the exact operation
//! order of `tutel::MoeLayer` but is built directly on the kernel
//! crates so the harness does not depend on the layer it is meant to
//! cross-check.
//!
//! All compute runs under a parallelism limit of [`REF_THREADS`]
//! thread (the `tutel-rt` chunk grids are bit-identical at any worker
//! count, but pinning the reference to one worker makes the "same
//! thread count" arm of the ULP policy unambiguous).

use tutel_experts::ExpertsBlock;
use tutel_gate::{aux_loss, aux_loss_grad, route, LinearRouter, RouteConfig, Router, Routing};
use tutel_kernels::{fast_decode, fast_decode_backward, fast_encode, fast_encode_backward};
use tutel_rt::with_parallelism_limit;
use tutel_tensor::{Rng, Tensor};

/// The reference executor's parallelism limit.
pub const REF_THREADS: usize = 1;

/// Problem dimensions shared by the reference and every distributed
/// configuration. Sized so that capacity is exactly
/// [`Problem::CAPACITY`] for every world size (divisible by all
/// pipeline degrees) while still exercising dropped tokens.
#[derive(Debug, Clone, Copy)]
pub struct Problem {
    /// Simulated world size; experts = `LOCAL_EXPERTS * world`.
    pub world: usize,
    /// Base seed for parameters, inputs, and upstream gradients.
    pub seed: u64,
}

impl Problem {
    /// Tokens per rank.
    pub const TOKENS: usize = 16;
    /// Model dimension.
    pub const MODEL_DIM: usize = 8;
    /// Expert hidden dimension (split across `SHARDS` under P2).
    pub const HIDDEN_DIM: usize = 16;
    /// Experts owned by each rank.
    pub const LOCAL_EXPERTS: usize = 2;
    /// Top-k routing.
    pub const TOP_K: usize = 2;
    /// Hidden-dimension shards under P2.
    pub const SHARDS: usize = 2;
    /// Aux-loss weight folded into the input gradient.
    pub const AUX_WEIGHT: f32 = 0.01;
    /// Per-expert capacity, for every world size.
    pub const CAPACITY: usize = 8;

    /// Total experts.
    pub fn experts(&self) -> usize {
        Self::LOCAL_EXPERTS * self.world
    }

    /// The fixed capacity factor that makes Equation 1 yield exactly
    /// [`Self::CAPACITY`]: `ceil(k·f·T/E) = 8` ⇒ `f = E/4` for
    /// `k = 2, T = 16`.
    pub fn capacity_factor(&self) -> f64 {
        self.experts() as f64 / 4.0
    }

    /// The route configuration every executor must use.
    pub fn route_config(&self) -> RouteConfig {
        RouteConfig {
            k: Self::TOP_K,
            capacity: tutel_gate::CapacityPolicy::Fixed(self.capacity_factor()),
            bpr: false,
            normalize_gates: true,
        }
    }

    /// Deterministic shared parameters and per-rank data: the router,
    /// the global expert block, and per-rank `(input, upstream)`
    /// pairs. Every executor derives its view from these tensors.
    pub fn materialize(&self) -> Fixture {
        let mut rng = Rng::seed(self.seed);
        let router = LinearRouter::new(Self::MODEL_DIM, self.experts(), &mut rng);
        let experts =
            ExpertsBlock::new(self.experts(), Self::MODEL_DIM, Self::HIDDEN_DIM, &mut rng);
        let per_rank = (0..self.world)
            .map(|_| {
                let x = rng.normal_tensor(&[Self::TOKENS, Self::MODEL_DIM], 0.0, 1.0);
                let d_out = rng.normal_tensor(&[Self::TOKENS, Self::MODEL_DIM], 0.0, 1.0);
                (x, d_out)
            })
            .collect();
        Fixture {
            router,
            experts,
            per_rank,
        }
    }
}

/// Materialized shared state for one problem instance.
pub struct Fixture {
    /// Shared (replicated) router.
    pub router: LinearRouter,
    /// The global expert parameters `(E, ·)`.
    pub experts: ExpertsBlock,
    /// Per-rank `(input, upstream gradient)`, both `(T, M)`.
    pub per_rank: Vec<(Tensor, Tensor)>,
}

/// What one rank's execution produced: the quantities the matrix
/// compares.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// Layer output `(T, M)`, flattened.
    pub output: Vec<f32>,
    /// Input gradient `(T, M)`, flattened.
    pub d_x: Vec<f32>,
    /// Auxiliary load-balancing loss.
    pub aux: f32,
}

/// Runs gate → encode on one rank's input; shared verbatim by the
/// reference and the distributed executor so the routing decision is
/// identical by construction.
pub fn gate_and_encode(
    problem: &Problem,
    fixture: &Fixture,
    rank: usize,
) -> (Tensor, Routing, Tensor) {
    let (x, _) = &fixture.per_rank[rank];
    let probs = fixture
        .router
        .logits(x)
        .expect("router dims fixed by Problem")
        .softmax_last();
    let routing = route(&probs, &problem.route_config()).expect("capacity factor is positive");
    assert_eq!(
        routing.capacity,
        Problem::CAPACITY,
        "Problem dims must pin capacity"
    );
    let enc = fast_encode(x, &routing).expect("encode dims fixed by routing");
    (probs, routing, enc)
}

/// The gate-side backward chain — decode gate gradients through gate
/// normalization, aux loss, softmax, and the router — mirrored from
/// `MoeLayer::backward`. Returns `d_x` (router term included).
pub fn gate_backward(
    fixture: &Fixture,
    rank: usize,
    probs: &Tensor,
    routing: &Routing,
    d_gates: &[Vec<f32>],
    d_x_encode: Tensor,
) -> Tensor {
    let (x, _) = &fixture.per_rank[rank];
    let mut d_probs = Tensor::zeros(probs.dims());
    for (t, (experts, dg)) in routing.expert_of.iter().zip(d_gates).enumerate() {
        if Problem::TOP_K > 1 {
            let vals: Vec<f32> = experts.iter().map(|&e| probs.at(&[t, e])).collect();
            let s: f32 = vals.iter().sum::<f32>().max(1e-9);
            let gates: Vec<f32> = vals.iter().map(|v| v / s).collect();
            let dot: f32 = dg.iter().zip(&gates).map(|(d, g)| d * g).sum();
            for (i, &e) in experts.iter().enumerate() {
                d_probs.set(&[t, e], (dg[i] - dot) / s);
            }
        } else if let (Some(&e), Some(&d)) = (experts.first(), dg.first()) {
            d_probs.set(&[t, e], d);
        }
    }
    let d_aux = aux_loss_grad(probs, routing).expect("aux grad dims fixed");
    d_probs
        .axpy(Problem::AUX_WEIGHT, &d_aux)
        .expect("aux grad shape matches probs");
    let d_logits = probs
        .softmax_last_backward(&d_probs)
        .expect("softmax backward dims fixed");
    // The shared router is read-only; clone so gradient accumulation
    // stays local to this rank's execution.
    let mut router = fixture.router.clone();
    let d_x_router = router
        .backward(x, &d_logits)
        .expect("router backward dims fixed");
    let mut d_x = d_x_encode;
    d_x.axpy(1.0, &d_x_router).expect("d_x shapes match");
    d_x
}

/// Executes the reference forward + backward for every rank of the
/// problem, single-threaded.
pub fn run_reference(problem: &Problem, fixture: &Fixture) -> Vec<RankResult> {
    with_parallelism_limit(REF_THREADS, || {
        (0..problem.world)
            .map(|rank| run_reference_rank(problem, fixture, rank))
            .collect()
    })
}

fn run_reference_rank(problem: &Problem, fixture: &Fixture, rank: usize) -> RankResult {
    let (_, d_out) = &fixture.per_rank[rank];
    let (probs, routing, enc) = gate_and_encode(problem, fixture, rank);

    // A private copy of the global block so forward caches (needed by
    // backward) stay local to this rank's execution.
    let (w1, b1, w2, b2) = fixture.experts.weights();
    let mut experts = ExpertsBlock::from_weights(w1.clone(), b1.clone(), w2.clone(), b2.clone())
        .expect("weights round-trip");
    let expert_out = experts.forward(&enc).expect("expert dims fixed");
    let output = fast_decode(&expert_out, &routing, Problem::TOKENS).expect("decode dims fixed");
    let aux = aux_loss(&probs, &routing).expect("aux dims fixed");

    // Backward, mirroring MoeLayer::backward operation for operation.
    let (d_expert_out, d_gates) =
        fast_decode_backward(d_out, &expert_out, &routing).expect("decode backward dims fixed");
    let d_dispatched = experts
        .backward(&d_expert_out)
        .expect("expert backward dims fixed");
    let d_x_encode = fast_encode_backward(&d_dispatched, &routing, Problem::TOKENS)
        .expect("encode backward dims fixed");
    let d_x = gate_backward(fixture, rank, &probs, &routing, &d_gates, d_x_encode);

    RankResult {
        output: output.as_slice().to_vec(),
        d_x: d_x.as_slice().to_vec(),
        aux,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let problem = Problem { world: 2, seed: 7 };
        let fixture = problem.materialize();
        let a = run_reference(&problem, &fixture);
        let b = run_reference(&problem, &fixture);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.output, rb.output);
            assert_eq!(ra.d_x, rb.d_x);
            assert_eq!(ra.aux.to_bits(), rb.aux.to_bits());
        }
    }

    #[test]
    fn capacity_is_pinned_for_all_world_sizes() {
        for world in [1, 2, 4] {
            let problem = Problem { world, seed: 3 };
            let fixture = problem.materialize();
            let (_, routing, _) = gate_and_encode(&problem, &fixture, 0);
            assert_eq!(routing.capacity, Problem::CAPACITY, "world {world}");
            const {
                assert!(
                    Problem::CAPACITY.is_multiple_of(8),
                    "capacity must divide the max pipeline degree"
                );
            }
        }
    }

    #[test]
    fn gradients_are_nonzero() {
        let problem = Problem { world: 1, seed: 11 };
        let fixture = problem.materialize();
        let results = run_reference(&problem, &fixture);
        assert!(results[0].d_x.iter().any(|&v| v != 0.0));
        assert!(results[0].aux > 0.0);
    }
}
