//! The conformance-matrix driver: cross product of every strategy
//! knob, each point compared against the single-rank reference under
//! the crate-level ULP tolerance policy.

use crate::dist::run_distributed;
use crate::reference::{run_reference, Problem, RankResult};
use crate::{max_scaled_ulp, max_ulp, A2aAlgo, Config, Strategy};

/// The axes of the full matrix.
pub const STRATEGIES: [Strategy; 2] = [Strategy::P1, Strategy::P2];
/// All-to-All algorithms.
pub const ALGOS: [A2aAlgo; 2] = [A2aAlgo::Linear, A2aAlgo::TwoDh];
/// Pipeline degrees (all divide [`Problem::CAPACITY`]).
pub const DEGREES: [usize; 4] = [1, 2, 4, 8];
/// Simulated world sizes.
pub const WORLDS: [usize; 3] = [1, 2, 4];
/// Per-rank compute thread limits (`TUTEL_THREADS`-equivalent).
pub const THREADS: [usize; 2] = [1, 4];

/// Matrix mode: the smoke subset keeps one representative
/// `(degree, threads)` pair per corner of the pipeline axis; the full
/// mode runs the entire cross product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ~1/3 of the matrix, for CI.
    Smoke,
    /// Every configuration.
    Full,
}

impl Mode {
    /// Name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Full => "full",
        }
    }
}

/// The configurations the mode selects, in stable order.
pub fn configs(mode: Mode) -> Vec<Config> {
    let mut out = Vec::new();
    for world in WORLDS {
        for strategy in STRATEGIES {
            for algo in ALGOS {
                for degree in DEGREES {
                    for threads in THREADS {
                        let keep = match mode {
                            Mode::Full => true,
                            // One bitwise-eligible point (d1 t1), the
                            // executed-overlap ladder at single-thread
                            // bitwise eligibility (d4 t1, d8 t1), and
                            // one mid multi-thread point (d2 t4).
                            Mode::Smoke => {
                                matches!((degree, threads), (1, 1) | (2, 4) | (4, 1) | (8, 1))
                            }
                        };
                        if keep {
                            out.push(Config {
                                strategy,
                                algo,
                                degree,
                                world,
                                threads,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Verdict for one matrix point.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The configuration that ran.
    pub config: Config,
    /// Whether outputs and gradients matched bitwise on every rank.
    pub bitwise: bool,
    /// Largest output scale-aware ULP error across ranks.
    pub output_ulp: f64,
    /// Largest input-gradient scale-aware ULP error across ranks.
    pub d_x_ulp: f64,
    /// Whether the aux loss matched bitwise on every rank.
    pub aux_bitwise: bool,
    /// Whether the point passed its budget.
    pub pass: bool,
}

impl Verdict {
    fn judge(config: Config, reference: &[RankResult], got: &[RankResult]) -> Self {
        let mut bitwise = got.len() == reference.len();
        let mut output_ulp = 0.0f64;
        let mut d_x_ulp = 0.0f64;
        let mut aux_bitwise = got.len() == reference.len();
        for (g, r) in got.iter().zip(reference) {
            bitwise &= max_ulp(&g.output, &r.output) == 0 && max_ulp(&g.d_x, &r.d_x) == 0;
            output_ulp = output_ulp.max(max_scaled_ulp(&g.output, &r.output));
            d_x_ulp = d_x_ulp.max(max_scaled_ulp(&g.d_x, &r.d_x));
            aux_bitwise &= g.aux.to_bits() == r.aux.to_bits();
        }
        let budget = config.ulp_budget();
        let within_budget = if budget == 0 {
            bitwise
        } else {
            output_ulp <= f64::from(budget) && d_x_ulp <= f64::from(budget)
        };
        let pass = within_budget && aux_bitwise;
        Verdict {
            config,
            bitwise,
            output_ulp,
            d_x_ulp,
            aux_bitwise,
            pass,
        }
    }
}

/// Runs the matrix for `mode` and returns one verdict per
/// configuration, in [`configs`] order. The reference and fixture are
/// built once per world size from `seed` so every configuration of a
/// world compares against the identical baseline.
pub fn run_matrix(mode: Mode, seed: u64) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for &world in &WORLDS {
        let problem = Problem { world, seed };
        let fixture = problem.materialize();
        let reference = run_reference(&problem, &fixture);
        for config in configs(mode).into_iter().filter(|c| c.world == world) {
            let got = run_distributed(&problem, &fixture, &config);
            verdicts.push(Verdict::judge(config, &reference, &got));
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_a_strict_subset_of_full() {
        let smoke = configs(Mode::Smoke);
        let full = configs(Mode::Full);
        assert!(smoke.len() < full.len());
        assert_eq!(full.len(), 2 * 2 * 4 * 3 * 2);
        assert_eq!(smoke.len(), 2 * 2 * 4 * 3);
        for c in &smoke {
            assert!(full.contains(c), "{} missing from full", c.label());
        }
    }

    #[test]
    fn smoke_covers_every_strategy_algo_world() {
        let smoke = configs(Mode::Smoke);
        for world in WORLDS {
            for strategy in STRATEGIES {
                for algo in ALGOS {
                    assert!(
                        smoke
                            .iter()
                            .any(|c| c.world == world && c.strategy == strategy && c.algo == algo),
                        "smoke misses {}/{} w{}",
                        strategy.label(),
                        algo.label(),
                        world
                    );
                }
            }
        }
    }
}
