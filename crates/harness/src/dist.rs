//! The distributed executor: the same MoE layer as [`crate::reference`],
//! run over the threaded `comm::runtime` under every combination of
//! strategy knobs — P1/P2 parallelism, linear/2DH All-to-All, pipeline
//! degree, world size, and per-rank compute thread limit.
//!
//! Every rank is an OS thread with a real mailbox-based communicator.
//! The forward pass pipelines the capacity dimension into
//! `Config::degree` chunks driven through the **executed** overlap
//! schedule ([`tutel::overlap::run_overlapped`]): chunk `i+1`'s
//! dispatch All-to-All is in flight on the comm threads while chunk
//! `i`'s expert FFN runs, and combines drain non-blockingly behind
//! the compute (Section 3.3's multi-stream pipelining, executed
//! rather than chunk-serial). Backward runs the mirrored wire format
//! in reverse through the same schedule. Overlap only reorders *when*
//! exchanges progress — every chunk's arithmetic is identical to the
//! serial path, so the conformance budgets are unchanged.

use tutel::overlap::run_overlapped;
use tutel_comm::runtime::{run_threaded, run_threaded_traced, Communicator};
use tutel_experts::{ExpertsBlock, ShardedExpertParams};
use tutel_kernels::{fast_decode, fast_decode_backward, fast_encode_backward};
use tutel_obs::trace::{TraceHub, TRACK_MAIN};
use tutel_rt::with_parallelism_limit;
use tutel_simgpu::Topology;
use tutel_tensor::Tensor;

use crate::reference::{gate_and_encode, gate_backward, Fixture, Problem, RankResult};
use crate::{Config, Strategy};

/// The topology used for each simulated world size: single node for
/// `w = 1`, and a 2-node hierarchy otherwise so 2DH exercises both
/// intra- and inter-node phases.
pub fn topology_for(world: usize) -> Topology {
    match world {
        1 => Topology::single_node(1),
        2 => Topology::new(2, 1),
        w => Topology::new(2, w / 2),
    }
}

/// This rank's expert parameters in the form the strategy executes:
/// P1 gathers the full local block; P2 keeps per-shard slices and sums
/// their partial outputs.
enum RankExperts {
    Full(Box<ExpertsBlock>),
    Sharded(ShardedExpertParams),
}

impl RankExperts {
    fn for_rank(fixture: &Fixture, strategy: Strategy, world: usize, rank: usize) -> Self {
        let (w1, b1, w2, b2) = fixture.experts.weights();
        let slice =
            |t: &Tensor| t.split_axis(0, world).expect("E divisible by world")[rank].clone();
        let local = ExpertsBlock::from_weights(slice(w1), slice(b1), slice(w2), slice(b2))
            .expect("sliced weights stay consistent");
        match strategy {
            Strategy::P1 => RankExperts::Full(Box::new(local)),
            Strategy::P2 => RankExperts::Sharded(
                ShardedExpertParams::from_block(&local, Problem::SHARDS)
                    .expect("hidden dim divisible by SHARDS"),
            ),
        }
    }

    /// Fresh runnable block(s) for one pipeline chunk. Each chunk gets
    /// its own blocks so forward activations stay cached per chunk for
    /// the backward pass.
    fn chunk_blocks(&self) -> Vec<ExpertsBlock> {
        match self {
            RankExperts::Full(block) => {
                let (w1, b1, w2, b2) = block.weights();
                vec![
                    ExpertsBlock::from_weights(w1.clone(), b1.clone(), w2.clone(), b2.clone())
                        .expect("weights round-trip"),
                ]
            }
            RankExperts::Sharded(params) => (0..params.shards())
                .map(|r| params.shard_block(r))
                .collect(),
        }
    }
}

/// Dispatch side of the wire, comm-free half: rebuild the expert-side
/// `(ΔE, W·cc, M)` batch from a received origin-major wire buffer.
fn flex_from_wire(received: Vec<f32>, world: usize, cc: usize) -> Tensor {
    let recv = Tensor::from_vec(
        received,
        &[world, Problem::LOCAL_EXPERTS, cc, Problem::MODEL_DIM],
    )
    .expect("wire chunk has fixed dims");
    recv.permute(&[1, 0, 2, 3])
        .expect("rank-major permute")
        .reshape(&[Problem::LOCAL_EXPERTS, world * cc, Problem::MODEL_DIM])
        .expect("contiguous reshape")
}

/// Combine side of the wire, comm-free half: lay an expert-side
/// `(ΔE, W·cc, M)` batch out rank-major for the return All-to-All.
fn wire_from_batch(batch: &Tensor, world: usize, cc: usize) -> Vec<f32> {
    batch
        .reshape(&[Problem::LOCAL_EXPERTS, world, cc, Problem::MODEL_DIM])
        .expect("batch has fixed dims")
        .permute(&[1, 0, 2, 3])
        .expect("rank-major permute")
        .as_slice()
        .to_vec()
}

/// Rebuild the origin-side `(E, cc, M)` chunk from a combined wire
/// buffer.
fn chunk_from_wire(combined: Vec<f32>, world: usize, cc: usize) -> Tensor {
    Tensor::from_vec(
        combined,
        &[Problem::LOCAL_EXPERTS * world, cc, Problem::MODEL_DIM],
    )
    .expect("wire chunk has fixed dims")
}

/// Runs the full forward + backward under `cfg` on every rank and
/// returns the per-rank results (index = rank).
///
/// # Panics
///
/// Panics if any rank hits a communication error — conformance runs
/// are fault-free, so an error here is itself a conformance failure.
pub fn run_distributed(problem: &Problem, fixture: &Fixture, cfg: &Config) -> Vec<RankResult> {
    run_distributed_impl(problem, fixture, cfg, None)
}

/// [`run_distributed`] with every rank wired to a tracer from `hub`:
/// the run leaves a causal trace (main-track phase spans, the overlap
/// schedule's two streams, and cross-rank flow edges) on the hub's
/// shared timebase.
///
/// # Panics
///
/// As [`run_distributed`].
pub fn run_distributed_traced(
    problem: &Problem,
    fixture: &Fixture,
    cfg: &Config,
    hub: &TraceHub,
) -> Vec<RankResult> {
    run_distributed_impl(problem, fixture, cfg, Some(hub))
}

fn run_distributed_impl(
    problem: &Problem,
    fixture: &Fixture,
    cfg: &Config,
    hub: Option<&TraceHub>,
) -> Vec<RankResult> {
    assert_eq!(cfg.world, problem.world, "config/problem world mismatch");
    assert_eq!(
        Problem::CAPACITY % cfg.degree,
        0,
        "pipeline degree must divide capacity"
    );
    let topo = topology_for(cfg.world);
    assert_eq!(topo.world_size(), cfg.world, "topology/world mismatch");
    let cfg = *cfg;
    match hub {
        Some(hub) => run_threaded_traced(topo, hub, move |comm| {
            with_parallelism_limit(cfg.threads, || run_rank(problem, fixture, &cfg, comm))
        }),
        None => run_threaded(topo, move |comm| {
            with_parallelism_limit(cfg.threads, || run_rank(problem, fixture, &cfg, comm))
        }),
    }
}

fn run_rank(
    problem: &Problem,
    fixture: &Fixture,
    cfg: &Config,
    mut comm: Communicator,
) -> RankResult {
    let rank = comm.rank();
    let world = cfg.world;
    let cc = Problem::CAPACITY / cfg.degree;
    let (_, d_out) = &fixture.per_rank[rank];

    // Phase spans on the main track bound the causal trace's critical
    // path; the forward/backward exchanges inside them land on the
    // overlap stream tracks instead.
    let tracer = comm.tracer().clone();
    let _step = tracer.span(TRACK_MAIN, "step");

    // Gate + encode, rank-local and identical to the reference by
    // construction.
    let gate_t0 = tracer.now_us();
    let (probs, routing, enc) = gate_and_encode(problem, fixture, rank);
    let experts = RankExperts::for_rank(fixture, cfg.strategy, world, rank);
    tracer.span_at(TRACK_MAIN, "gate_encode", gate_t0, tracer.now_us());

    // Forward: the executed overlap schedule over the capacity
    // dimension. Each chunk keeps its own expert block(s) so
    // activations stay cached for backward.
    let enc_chunks = enc
        .split_axis(1, cfg.degree)
        .expect("degree divides capacity");
    let enc_wire: Vec<Vec<f32>> = enc_chunks.iter().map(|c| c.as_slice().to_vec()).collect();
    let mut chunk_state: Vec<Vec<ExpertsBlock>> = Vec::with_capacity(cfg.degree);
    let fwd = run_overlapped(&mut comm, cfg.algo.comm_algo(), &enc_wire, |_, received| {
        let flex = flex_from_wire(received, world, cc);
        let mut blocks = experts.chunk_blocks();
        let mut partial: Option<Tensor> = None;
        for block in &mut blocks {
            let y = block.forward(&flex).expect("expert dims fixed");
            partial = Some(match partial {
                None => y,
                Some(mut acc) => {
                    acc.axpy(1.0, &y).expect("shard outputs share dims");
                    acc
                }
            });
        }
        let expert_out = partial.expect("at least one block per chunk");
        chunk_state.push(blocks);
        wire_from_batch(&expert_out, world, cc)
    })
    .expect("fault-free overlapped forward");
    let out_chunks: Vec<Tensor> = fwd
        .combined
        .into_iter()
        .map(|w| chunk_from_wire(w, world, cc))
        .collect();
    let combined = Tensor::concat_axis(&out_chunks, 1).expect("chunks tile the capacity dim");
    let decode_t0 = tracer.now_us();
    let output = fast_decode(&combined, &routing, Problem::TOKENS).expect("decode dims fixed");
    let aux = tutel_gate::aux_loss(&probs, &routing).expect("aux dims fixed");
    tracer.span_at(TRACK_MAIN, "decode", decode_t0, tracer.now_us());

    // Backward: mirror the wire format in reverse, chunk by chunk.
    let (d_combined, d_gates) =
        fast_decode_backward(d_out, &combined, &routing).expect("decode backward dims fixed");
    let d_chunks = d_combined
        .split_axis(1, cfg.degree)
        .expect("degree divides capacity");
    let d_wire: Vec<Vec<f32>> = d_chunks.iter().map(|c| c.as_slice().to_vec()).collect();
    let bwd = run_overlapped(&mut comm, cfg.algo.comm_algo(), &d_wire, |i, received| {
        let d_flex = flex_from_wire(received, world, cc);
        let mut d_batch: Option<Tensor> = None;
        for block in chunk_state[i].iter_mut() {
            let d = block.backward(&d_flex).expect("expert backward dims fixed");
            d_batch = Some(match d_batch {
                None => d,
                Some(mut acc) => {
                    acc.axpy(1.0, &d).expect("shard grads share dims");
                    acc
                }
            });
        }
        let d_batch = d_batch.expect("at least one block per chunk");
        wire_from_batch(&d_batch, world, cc)
    })
    .expect("fault-free overlapped backward");
    let d_disp_chunks: Vec<Tensor> = bwd
        .combined
        .into_iter()
        .map(|w| chunk_from_wire(w, world, cc))
        .collect();
    let d_dispatched =
        Tensor::concat_axis(&d_disp_chunks, 1).expect("chunks tile the capacity dim");
    let grad_t0 = tracer.now_us();
    let d_x_encode = fast_encode_backward(&d_dispatched, &routing, Problem::TOKENS)
        .expect("encode backward dims fixed");
    let d_x = gate_backward(fixture, rank, &probs, &routing, &d_gates, d_x_encode);
    tracer.span_at(TRACK_MAIN, "gate_backward", grad_t0, tracer.now_us());

    RankResult {
        output: output.as_slice().to_vec(),
        d_x: d_x.as_slice().to_vec(),
        aux,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::{max_scaled_ulp, max_ulp, A2aAlgo, Strategy};

    #[test]
    fn p1_single_thread_is_bitwise_identical() {
        let problem = Problem { world: 2, seed: 5 };
        let fixture = problem.materialize();
        let reference = run_reference(&problem, &fixture);
        let cfg = Config {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: 2,
            world: 2,
            threads: crate::reference::REF_THREADS,
        };
        let got = run_distributed(&problem, &fixture, &cfg);
        for (rank, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(max_ulp(&g.output, &r.output), 0, "rank {rank} output");
            assert_eq!(max_ulp(&g.d_x, &r.d_x), 0, "rank {rank} d_x");
            assert_eq!(g.aux.to_bits(), r.aux.to_bits(), "rank {rank} aux");
        }
    }

    #[test]
    fn p2_stays_within_ulp_budget() {
        let problem = Problem { world: 2, seed: 9 };
        let fixture = problem.materialize();
        let reference = run_reference(&problem, &fixture);
        let cfg = Config {
            strategy: Strategy::P2,
            algo: A2aAlgo::TwoDh,
            degree: 4,
            world: 2,
            threads: 4,
        };
        let got = run_distributed(&problem, &fixture, &cfg);
        let budget = f64::from(cfg.ulp_budget());
        for (rank, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert!(
                max_scaled_ulp(&g.output, &r.output) <= budget,
                "rank {rank} output exceeds budget: {} scaled ULP",
                max_scaled_ulp(&g.output, &r.output)
            );
            assert!(
                max_scaled_ulp(&g.d_x, &r.d_x) <= budget,
                "rank {rank} d_x exceeds budget: {} scaled ULP",
                max_scaled_ulp(&g.d_x, &r.d_x)
            );
            assert_eq!(g.aux.to_bits(), r.aux.to_bits(), "rank {rank} aux");
        }
    }
}
