//! Differential conformance harness for the adaptive strategy space.
//!
//! Tutel's core claim is that every adaptive choice — P1 vs P2
//! parallelism, pipelining degree, linear vs 2DH All-to-All — is a
//! zero-cost *equivalent* execution of the same MoE layer. This crate
//! proves it differentially:
//!
//! * [`reference`] is a single-threaded, single-rank executor for the
//!   full layer (gate → capacity → dispatch → FFN → combine → aux
//!   loss, forward **and** backward) with no strategy knobs at all;
//! * [`dist`] executes the same layer over the threaded
//!   `comm::runtime` under every combination of strategy knobs;
//! * [`matrix`] drives the cross-product and compares outputs,
//!   input gradients, and aux loss against the reference under the
//!   [ULP tolerance policy](#ulp-tolerance-policy);
//! * [`faults`] replays seeded [`tutel_comm::FaultPlan`]s against each
//!   collective, asserting graceful degradation (bounded retries
//!   recover bit-identical results) and clean failure (typed
//!   `CommError`, never a hang or corrupted tensor).
//!
//! # ULP tolerance policy
//!
//! * **Bitwise** (0 ULP) when the configuration is algebraically
//!   identical to the reference: P1 parallelism (experts apply their
//!   full, gathered weights) at the same effective thread count —
//!   dispatch order, pipeline chunking, and All-to-All algorithm
//!   permute *rows*, and every per-row kernel reduces in a fixed
//!   order, so not even the last bit may differ.
//! * **≤ 4 ULP at the tensor's scale** otherwise: P2 re-associates
//!   the final sum over hidden shards (`Σ_r x·W1_r·W2_r` instead of
//!   `x·W1·W2`), which is exact per partial product but reorders one
//!   addition chain. The error is measured by [`max_scaled_ulp`] —
//!   `|got − ref| / (ε·max|ref|)` — rather than element-wise
//!   [`ulp_diff`], because re-association perturbs a sum relative to
//!   the magnitude of its *inputs*: on an output element that nearly
//!   cancels, a harmless last-bit reordering error is millions of
//!   element-wise ULPs but still ≤ 4 ULPs at the tensor's scale.
//!
//! Aux loss is compared bitwise always: it is computed rank-locally
//! from the routing alone and no strategy knob may touch it.
//!
//! [`kernels`] crosses a second, orthogonal grid — {scalar, simd} ×
//! {f32, bf16} kernel modes — with two contracts of its own: flipping
//! the SIMD table is **bitwise** (0 ULP, any strategy, any thread
//! count), while bf16-storage weights are budgeted at
//! [`kernels::BF16_ULP_BUDGET`] scaled ULPs against the f32 twin
//! (weight rounding is a ≤ 2⁻⁹ relative perturbation, far outside the
//! 4-ULP strategy budget but tightly bounded at the tensor's scale).
//!
//! [`race`] additionally runs the combined overlap+pool+comm surface
//! on real OS threads under the happens-before race checker
//! (`tutel_check::race`), landing any finding in the telemetry audit
//! ring as a typed anomaly.
//!
//! [`serve`] extends the same oracle to the serving tier: seeded
//! request mixes flow through `tutel-serve`'s continuous batcher and
//! every completed request must reproduce its *solo* reference run —
//! bitwise for P1 at [`reference::REF_THREADS`], ≤ 4 scaled ULP for
//! P2 — for every batch composition the scheduler composes, including
//! under a seeded `FaultPlan` replay on the step's All-to-All.
//!
//! [`grouped`] diff-tests the dropless ragged path specifically: the
//! grouped-GEMM serving step against both the per-row reference and
//! its padded capacity twin across {P1, P2} × {lin, 2DH} × degree ×
//! world (bitwise for P1 at `REF_THREADS`, ≤ 4 scaled ULP for P2, and
//! always bitwise against the twin), plus a seeded fault replay on
//! the ragged v-All-to-Alls.

pub mod dist;
pub mod faults;
pub mod grouped;
pub mod kernels;
pub mod matrix;
pub mod race;
pub mod reference;
pub mod serve;
pub mod trace;

/// Expert-parallelism strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Expert + data parallelism: each rank gathers its experts' full
    /// parameters and applies them in one block.
    P1,
    /// Expert + model parallelism: parameters stay sharded along the
    /// hidden dimension; per-shard partial outputs are summed.
    P2,
}

impl Strategy {
    /// Short label for the pass/fail grid.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::P1 => "P1",
            Strategy::P2 => "P2",
        }
    }
}

/// All-to-All algorithm under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum A2aAlgo {
    /// NCCL-style linear point-to-point loop (Algorithm 1).
    Linear,
    /// Two-Dimensional Hierarchical All-to-All (Algorithm 3).
    TwoDh,
}

impl A2aAlgo {
    /// Short label for the pass/fail grid.
    pub fn label(&self) -> &'static str {
        match self {
            A2aAlgo::Linear => "lin",
            A2aAlgo::TwoDh => "2dh",
        }
    }

    /// The `tutel-comm` algorithm this knob selects, for the executed
    /// overlap path.
    pub fn comm_algo(&self) -> tutel_comm::AllToAllAlgo {
        match self {
            A2aAlgo::Linear => tutel_comm::AllToAllAlgo::Linear,
            A2aAlgo::TwoDh => tutel_comm::AllToAllAlgo::TwoDh,
        }
    }
}

/// One point of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// P1 or P2 expert parallelism.
    pub strategy: Strategy,
    /// Linear or 2DH exchange.
    pub algo: A2aAlgo,
    /// Pipelining degree: the capacity dimension is split into this
    /// many chunks, each dispatched/computed/combined independently.
    pub degree: usize,
    /// Simulated world size (ranks = OS threads).
    pub world: usize,
    /// `TUTEL_THREADS`-equivalent per-rank compute parallelism limit.
    pub threads: usize,
}

impl Config {
    /// Grid label, e.g. `P2/2dh d4 w4 t1`.
    pub fn label(&self) -> String {
        format!(
            "{}/{} d{} w{} t{}",
            self.strategy.label(),
            self.algo.label(),
            self.degree,
            self.world,
            self.threads
        )
    }

    /// The ULP budget for this configuration (see the
    /// [crate-level policy](crate#ulp-tolerance-policy)).
    pub fn ulp_budget(&self) -> u32 {
        if self.strategy == Strategy::P1 && self.threads == reference::REF_THREADS {
            0
        } else {
            4
        }
    }
}

/// Distance between two floats in units of last place, on the
/// monotone ordered-integer mapping; `u32::MAX` if either is NaN.
pub fn ulp_diff(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    fn ordered(x: f32) -> i64 {
        let i = x.to_bits() as i32;
        // Map negative floats below the positives, preserving order.
        i64::from(if i < 0 { i32::MIN - i } else { i })
    }
    ordered(a).abs_diff(ordered(b)).min(u64::from(u32::MAX)) as u32
}

/// Largest element-wise [`ulp_diff`] between two equal-length slices;
/// `u32::MAX` on length mismatch.
pub fn max_ulp(a: &[f32], b: &[f32]) -> u32 {
    if a.len() != b.len() {
        return u32::MAX;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_diff(x, y))
        .max()
        .unwrap_or(0)
}

/// Largest element-wise error between `got` and `reference`, in units
/// of last place **at the reference tensor's scale**: the absolute
/// difference divided by `ε·max|reference|` (ε = f32 machine epsilon).
///
/// This is the tolerance the non-bitwise arm of the policy uses:
/// plain element-wise ULP distance explodes on elements that nearly
/// cancel (a re-association error of one part in 2²³ of the *sum's
/// inputs* can be millions of ULPs of a near-zero *result*), while
/// scale-aware ULPs measure what re-association can actually perturb.
/// `infinity` on length mismatch or NaN; `0` when both are empty or
/// the reference is identically zero and `got` matches bitwise.
pub fn max_scaled_ulp(got: &[f32], reference: &[f32]) -> f64 {
    if got.len() != reference.len() {
        return f64::INFINITY;
    }
    let scale = reference.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let mut worst = 0.0f64;
    for (&g, &r) in got.iter().zip(reference) {
        if g.is_nan() || r.is_nan() {
            return f64::INFINITY;
        }
        let diff = f64::from(g) - f64::from(r);
        if diff == 0.0 {
            continue;
        }
        if scale == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max(diff.abs() / (f64::from(f32::EPSILON) * f64::from(scale)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(0.0, -0.0), 0, "signed zeros compare equal");
        assert_eq!(ulp_diff(f32::NAN, 1.0), u32::MAX);
        // Order-preserving across the sign boundary.
        assert!(ulp_diff(-1e-38, 1e-38) > 1);
    }

    #[test]
    fn max_ulp_flags_length_mismatch() {
        assert_eq!(max_ulp(&[1.0], &[1.0, 2.0]), u32::MAX);
        assert_eq!(max_ulp(&[1.0, 2.0], &[1.0, 2.0]), 0);
    }

    #[test]
    fn scaled_ulp_measures_at_tensor_scale() {
        assert_eq!(max_scaled_ulp(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // One element-ULP of error at the scale element = 1 scaled ULP.
        let bumped = f32::from_bits(2.0f32.to_bits() + 1);
        let got = max_scaled_ulp(&[1.0, bumped], &[1.0, 2.0]);
        assert!((got - 1.0).abs() < 1e-9, "got {got}");
        // A near-zero element with a tiny absolute error is huge in
        // element-wise ULPs but small at the tensor's scale.
        let near_zero = 2.0 * f32::EPSILON * 1e-3;
        assert!(ulp_diff(near_zero, 0.0) > 1000);
        assert!(max_scaled_ulp(&[near_zero, 2.0], &[0.0, 2.0]) < 0.01);
        // Length mismatch and NaN are infinite.
        assert!(max_scaled_ulp(&[1.0], &[1.0, 2.0]).is_infinite());
        assert!(max_scaled_ulp(&[f32::NAN], &[1.0]).is_infinite());
    }

    #[test]
    fn ulp_budget_policy() {
        let mut c = Config {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: 1,
            world: 2,
            threads: reference::REF_THREADS,
        };
        assert_eq!(c.ulp_budget(), 0);
        c.strategy = Strategy::P2;
        assert_eq!(c.ulp_budget(), 4);
        c.strategy = Strategy::P1;
        c.threads = 4;
        assert_eq!(c.ulp_budget(), 4);
    }
}
