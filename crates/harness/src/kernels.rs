//! Kernel-mode conformance: the {scalar, simd} × {f32, bf16} grid.
//!
//! The strategy matrix in [`crate::matrix`] varies *where* arithmetic
//! happens (parallelism, exchange algorithm, pipeline chunking); this
//! grid varies *how* it happens — which kernel table executes the
//! arithmetic and at what storage precision the expert weights rest —
//! and holds each axis to its own contract:
//!
//! * **scalar vs SIMD is bitwise.** The AVX2 `f32x8` kernels share the
//!   scalar kernels' reduction trees and never emit FMA, so flipping
//!   `TUTEL_SIMD` may not change a single bit of any output, gradient,
//!   or aux loss — under *any* strategy configuration. Each `simd/*`
//!   cell is compared against its `scalar/*` twin with [`max_ulp`]
//!   `== 0`.
//! * **bf16 vs f32 is budgeted, scale-aware.** bf16-storage rounds
//!   each expert weight to 8 mantissa bits (≤ 2⁻⁹ relative
//!   perturbation) while all arithmetic stays f32, so outputs move by
//!   roughly the weights' relative perturbation *at the tensor's
//!   scale* — which is exactly what [`max_scaled_ulp`] measures. The
//!   budget [`BF16_ULP_BUDGET`] is 2¹⁷ scaled ULPs ≈ 2⁻⁶ relative:
//!   one bf16 rounding is at most 2⁻⁹ relative = 2¹⁴ scaled ULPs, and
//!   the worst observed compounding through the two-GEMM forward plus
//!   the mirrored backward chain is ≈ 2.3× that (≈ 3.8·10⁴ scaled
//!   ULPs at this grid's seeds), leaving > 3× headroom — which the
//!   tests assert stays ≥ 2×. A kernel regression (e.g. accumulating
//!   in bf16 instead of f32) overshoots the budget by orders of
//!   magnitude, since every *intermediate* would then round.
//! * **aux loss is bitwise across every cell.** Routing runs on the
//!   f32 router regardless of expert-weight storage, and the gate
//!   kernels are bitwise across SIMD modes, so not even bf16 cells may
//!   move the aux loss.
//!
//! Each cell additionally replays the seeded fault scenarios for the
//! overlap executor's non-blocking All-to-All, proving the
//! retry/recovery machinery is indifferent to the kernel mode.

use tutel_experts::ExpertsBlock;
use tutel_tensor::{dispatch, Precision};

use crate::dist::run_distributed;
use crate::faults::{run_fault_scenarios, Collective};
use crate::reference::{Fixture, Problem, RankResult};
use crate::{max_scaled_ulp, max_ulp, A2aAlgo, Config, Strategy};

/// Scale-aware ULP budget for bf16-storage cells against their f32
/// twins: 2¹⁷ scaled ULPs ≈ 2⁻⁶ relative error at the tensor's scale
/// (see the module docs for the derivation).
pub const BF16_ULP_BUDGET: f64 = 131072.0;

/// One cell of the kernel-mode grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCell {
    /// Whether the AVX2 kernel table is forced (clamped to scalar on
    /// hosts without AVX2+FMA, where the bitwise check is vacuous).
    pub simd: bool,
    /// Expert-weight storage precision.
    pub precision: Precision,
}

impl KernelCell {
    /// Grid label, e.g. `simd/bf16`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            if self.simd { "simd" } else { "scalar" },
            self.precision.label()
        )
    }
}

/// The full grid, in report order: the scalar/f32 baseline first, then
/// each twin along one axis. The SIMD flag is the low bit so a cell's
/// scalar twin is at `index & !1` and its f32 twin at `index & 1`.
pub const KERNEL_CELLS: [KernelCell; 4] = [
    KernelCell {
        simd: false,
        precision: Precision::F32,
    },
    KernelCell {
        simd: true,
        precision: Precision::F32,
    },
    KernelCell {
        simd: false,
        precision: Precision::Bf16,
    },
    KernelCell {
        simd: true,
        precision: Precision::Bf16,
    },
];

/// The strategy configurations each cell executes: one bitwise-eligible
/// point (P1, single-threaded) and one fully adaptive point (P2 + 2DH +
/// deep pipeline + thread pool), so both arms of the strategy ULP
/// policy are crossed with both kernel axes.
pub fn kernel_configs() -> [Config; 2] {
    [
        Config {
            strategy: Strategy::P1,
            algo: A2aAlgo::Linear,
            degree: 2,
            world: 2,
            threads: 1,
        },
        Config {
            strategy: Strategy::P2,
            algo: A2aAlgo::TwoDh,
            degree: 4,
            world: 2,
            threads: 4,
        },
    ]
}

/// Verdict for one kernel-mode cell.
#[derive(Debug, Clone)]
pub struct KernelVerdict {
    /// The cell that ran.
    pub cell: KernelCell,
    /// SIMD cells: outputs, gradients, and aux matched the scalar twin
    /// bitwise on every config and rank. Scalar cells: trivially true.
    pub simd_bitwise: bool,
    /// bf16 cells: worst [`max_scaled_ulp`] against the f32 twin over
    /// configs, ranks, and both compared tensors. f32 cells: 0.
    pub precision_ulp: f64,
    /// Whether the aux loss matched the scalar/f32 baseline bitwise.
    pub aux_bitwise: bool,
    /// Whether the seeded fault scenarios passed under this mode.
    pub fault_pass: bool,
    /// Overall verdict.
    pub pass: bool,
}

/// The bf16 fixture: identical router and per-rank data, expert
/// weights rounded to the bf16 grid (the rest-point invariant the
/// storage mode maintains during training).
fn bf16_fixture(f32_fixture: &Fixture) -> Fixture {
    let (w1, b1, w2, b2) = f32_fixture.experts.weights();
    let experts = ExpertsBlock::from_weights(w1.clone(), b1.clone(), w2.clone(), b2.clone())
        .expect("weights round-trip")
        .with_storage_precision(Precision::Bf16);
    Fixture {
        router: f32_fixture.router.clone(),
        experts,
        per_rank: f32_fixture.per_rank.clone(),
    }
}

/// True iff every rank of every config matched bitwise (outputs,
/// gradients, and aux).
fn all_bitwise(got: &[Vec<RankResult>], twin: &[Vec<RankResult>]) -> bool {
    got.iter().zip(twin).all(|(g_ranks, t_ranks)| {
        g_ranks.len() == t_ranks.len()
            && g_ranks.iter().zip(t_ranks).all(|(g, t)| {
                max_ulp(&g.output, &t.output) == 0
                    && max_ulp(&g.d_x, &t.d_x) == 0
                    && g.aux.to_bits() == t.aux.to_bits()
            })
    })
}

/// Worst scale-aware ULP error across configs, ranks, and both
/// compared tensors.
fn worst_scaled_ulp(got: &[Vec<RankResult>], twin: &[Vec<RankResult>]) -> f64 {
    got.iter()
        .zip(twin)
        .flat_map(|(g_ranks, t_ranks)| g_ranks.iter().zip(t_ranks))
        .map(|(g, t)| max_scaled_ulp(&g.output, &t.output).max(max_scaled_ulp(&g.d_x, &t.d_x)))
        .fold(0.0f64, f64::max)
}

/// Runs the kernel-mode grid and returns one verdict per cell, in
/// [`KERNEL_CELLS`] order. Every cell executes the same seeded problem
/// under [`kernel_configs`] with its kernel table pinned via
/// [`dispatch::with_simd_mode`], then replays the seeded fault
/// scenarios for the non-blocking All-to-All under the same mode.
pub fn run_kernel_matrix(seed: u64, fault_seed: u64) -> Vec<KernelVerdict> {
    let problem = Problem { world: 2, seed };
    let f32_fix = problem.materialize();
    let bf16_fix = bf16_fixture(&f32_fix);
    let configs = kernel_configs();

    let mut runs: Vec<Vec<Vec<RankResult>>> = Vec::with_capacity(KERNEL_CELLS.len());
    let mut fault_passes: Vec<bool> = Vec::with_capacity(KERNEL_CELLS.len());
    for cell in KERNEL_CELLS {
        let fixture = if cell.precision == Precision::Bf16 {
            &bf16_fix
        } else {
            &f32_fix
        };
        let (cell_runs, fault) = dispatch::with_simd_mode(Some(cell.simd), || {
            let cell_runs: Vec<Vec<RankResult>> = configs
                .iter()
                .map(|c| run_distributed(&problem, fixture, c))
                .collect();
            let fault = run_fault_scenarios(Collective::IAllToAll, fault_seed);
            (cell_runs, fault)
        });
        runs.push(cell_runs);
        fault_passes.push(fault.pass);
    }

    KERNEL_CELLS
        .iter()
        .enumerate()
        .map(|(i, &cell)| {
            let scalar_twin = i & !1;
            let f32_twin = i & 1;
            let simd_bitwise = !cell.simd || all_bitwise(&runs[i], &runs[scalar_twin]);
            let precision_ulp = if cell.precision == Precision::F32 {
                0.0
            } else {
                worst_scaled_ulp(&runs[i], &runs[f32_twin])
            };
            let aux_bitwise = runs[i].iter().zip(&runs[0]).all(|(g_ranks, b_ranks)| {
                g_ranks
                    .iter()
                    .zip(b_ranks)
                    .all(|(g, b)| g.aux.to_bits() == b.aux.to_bits())
            });
            let within_budget = match cell.precision {
                Precision::F32 => precision_ulp == 0.0,
                _ => precision_ulp <= BF16_ULP_BUDGET,
            };
            let fault_pass = fault_passes[i];
            let pass = simd_bitwise && within_budget && aux_bitwise && fault_pass;
            KernelVerdict {
                cell,
                simd_bitwise,
                precision_ulp,
                aux_bitwise,
                fault_pass,
                pass,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_both_axes_and_twin_indexing_holds() {
        for (i, cell) in KERNEL_CELLS.iter().enumerate() {
            assert_eq!(cell.simd, i & 1 == 1, "SIMD must be the low bit");
            assert_eq!(KERNEL_CELLS[i & !1].precision, cell.precision);
            assert_eq!(KERNEL_CELLS[i & 1].simd, cell.simd);
            assert_eq!(KERNEL_CELLS[i & 1].precision, Precision::F32);
        }
    }

    #[test]
    fn kernel_matrix_passes_and_bf16_error_is_nonzero() {
        let verdicts = run_kernel_matrix(42, 0xFA17);
        assert_eq!(verdicts.len(), KERNEL_CELLS.len());
        for v in &verdicts {
            assert!(v.pass, "{} failed: {v:?}", v.cell.label());
            assert!(v.aux_bitwise, "{} aux moved", v.cell.label());
        }
        // The bf16 comparison must not be vacuous: rounding the
        // weights has to move the outputs (else the budget tests
        // nothing), and stay under budget with real headroom.
        for v in verdicts
            .iter()
            .filter(|v| v.cell.precision == Precision::Bf16)
        {
            assert!(
                v.precision_ulp > 0.0,
                "{}: bf16 rounding moved nothing",
                v.cell.label()
            );
            assert!(
                v.precision_ulp <= BF16_ULP_BUDGET / 2.0,
                "{}: {} scaled ULP leaves < 2x headroom",
                v.cell.label(),
                v.precision_ulp
            );
        }
    }

    #[test]
    fn both_bf16_cells_report_the_same_error() {
        // SIMD is bitwise, so the two bf16 cells' precision errors must
        // agree exactly — a cheap cross-check that the twin indexing
        // compares what it claims to.
        let verdicts = run_kernel_matrix(7, 0xFA17);
        assert_eq!(
            verdicts[2].precision_ulp.to_bits(),
            verdicts[3].precision_ulp.to_bits()
        );
        assert!(verdicts[2].precision_ulp > 0.0);
    }
}
