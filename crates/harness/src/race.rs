//! The combined-surface race scenario: `core::overlap`'s two-stream
//! executor on the **real** threaded comm runtime, each chunk's
//! compute parallelized on the **real** `rt` work-stealing pool
//! through the global arena, all recorded under a
//! `tutel_rt::chk` session and replayed through the happens-before
//! analyzer.
//!
//! Where `tutel-check --race` explores *simulated* schedules by seed,
//! this scenario checks one *actual* OS-thread interleaving end to
//! end — real steals, real non-blocking collectives, real arena
//! recycling — and lands every finding in the telemetry audit ring as
//! a typed [`AnomalyRecord`](tutel_obs::AnomalyRecord)
//! (`kind = "check.<rule>"`, replay seed in `step`) next to the
//! stragglers and imbalance records, via
//! [`tutel_check::finding_to_anomaly`].

use tutel_check::explore::Finding;
use tutel_check::race::analyze;
use tutel_comm::runtime::run_threaded;
use tutel_comm::{linear_all_to_all, AllToAllAlgo, RankBuffers};
use tutel_obs::Telemetry;
use tutel_rt::chk;
use tutel_simgpu::Topology;

/// Outcome of one combined-surface run.
#[derive(Debug)]
pub struct RaceSurface {
    /// Analyzer findings (empty on a clean run).
    pub findings: Vec<Finding>,
    /// Events the session recorded.
    pub events: usize,
    /// True iff every rank's combined output matched the sequential
    /// reference bit-for-bit.
    pub outputs_match: bool,
}

impl RaceSurface {
    pub fn passed(&self) -> bool {
        self.findings.is_empty() && self.outputs_match
    }
}

/// Per-element compute stand-in (must match the oracle below).
fn f(x: f32, chunk: usize) -> f32 {
    x * 1.5 + chunk as f32
}

/// Runs the combined surface once on real threads: 2×2 topology,
/// degree-2 overlap, pool-parallel compute through the global arena.
/// `seed` only labels the run's findings (a real interleaving has no
/// replay seed); structural determinism across seeds is the simulated
/// sweep's job (`tutel-check --race`).
#[allow(clippy::needless_range_loop)] // the oracle walks [rank][chunk] grids
pub fn run_race_surface(seed: u64, tel: &Telemetry) -> RaceSurface {
    let topo = Topology::new(2, 2);
    let world = topo.world_size();
    let degree = 2;
    let per = 3;
    let len = world * per;

    // Deterministic inputs, [rank][chunk][elem].
    let inputs: Vec<RankBuffers> = (0..world)
        .map(|rank| {
            (0..degree)
                .map(|c| {
                    (0..len)
                        .map(|j| (rank * 1000 + c * 100 + j) as f32 * 1e-3)
                        .collect()
                })
                .collect()
        })
        .collect();

    // Sequential oracle: all-to-all, compute, all-to-all — per chunk.
    let expect: Vec<RankBuffers> = {
        let mut per_rank: Vec<RankBuffers> = vec![Vec::new(); world];
        for c in 0..degree {
            let dispatch: RankBuffers = (0..world).map(|r| inputs[r][c].clone()).collect();
            let computed: RankBuffers = linear_all_to_all(&dispatch)
                .into_iter()
                .map(|b| b.into_iter().map(|x| f(x, c)).collect())
                .collect();
            for (r, out) in linear_all_to_all(&computed).into_iter().enumerate() {
                per_rank[r].push(out);
            }
        }
        per_rank
    };

    let session = chk::Session::begin();
    let results = run_threaded(topo, |mut comm| {
        let rank = comm.rank();
        chk::with_logical_thread(rank + 1, || {
            tutel::overlap::run_overlapped(
                &mut comm,
                AllToAllAlgo::Linear,
                &inputs[rank],
                |c, flex| {
                    chk::note_access(&flex, false);
                    let n = flex.len();
                    let mut out = tutel_rt::arena().take_raw(n);
                    let out_id = out.as_ptr() as usize;
                    {
                        let flex_ref: &[f32] = &flex;
                        tutel_rt::parallel_chunks(&mut out, 2, |ci, chunk| {
                            chk::note_access_id(out_id, true);
                            let i0 = ci * 2;
                            for (k, o) in chunk.iter_mut().enumerate() {
                                *o = f(flex_ref[i0 + k], c);
                            }
                        });
                    }
                    chk::order_mark("harness.compute", c as u64);
                    tutel_rt::arena().put(flex);
                    out
                },
            )
        })
    });
    let events = session.finish();

    let mut findings = analyze(&events, seed).findings;
    let mut outputs_match = true;
    for (rank, res) in results.iter().enumerate() {
        match res {
            Err(e) => {
                outputs_match = false;
                findings.push(Finding::new(
                    "rank-error",
                    seed,
                    format!("combined surface: rank {rank}: {e}"),
                ));
            }
            Ok(run) => {
                if run.combined != expect[rank] {
                    outputs_match = false;
                    findings.push(Finding::new(
                        "corruption",
                        seed,
                        format!(
                            "combined surface: rank {rank} diverged from the \
                             sequential reference"
                        ),
                    ));
                }
            }
        }
    }

    for finding in &findings {
        tel.anomaly(tutel_check::finding_to_anomaly(finding));
    }
    RaceSurface {
        findings,
        events: events.len(),
        outputs_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_thread_surface_is_race_free_and_correct() {
        let tel = Telemetry::enabled();
        let surface = run_race_surface(7, &tel);
        assert!(surface.events > 0, "session recorded nothing");
        assert!(
            surface.passed(),
            "combined surface failed: {:?}",
            surface.findings
        );
        assert!(tel.anomalies().is_empty());
    }
}
