//! Causal-trace scenarios over the distributed executor.
//!
//! Two scenarios back the observability claims end to end:
//!
//! * [`run_trace_smoke`] — a clean 4-rank overlapped run of the full
//!   MoE forward + backward with every rank traced. It exports the
//!   per-rank JSONL buffers and the merged Perfetto-loadable
//!   `.trace.json`, then asserts the structural invariants: every
//!   flow edge binds exactly one send/recv pair, cross-rank edges
//!   exist, both overlap streams recorded spans, and the 2DH
//!   promotion instant is present.
//! * [`run_straggler_scenario`] — a seeded [`FaultPlan`] delays every
//!   data send from one known rank while that rank also stalls
//!   between issuing and waiting on a non-blocking All-to-All. The
//!   analyzer must attribute the step to that rank from the trace
//!   alone (delivery-latency signal, not wall clock — the victims'
//!   walls are just as long), and the resulting [`AnomalyRecord`]s
//!   land in the telemetry audit ring next to the adaptive decisions.
//!
//! [`AnomalyRecord`]: tutel_obs::AnomalyRecord

use std::thread;
use std::time::Duration;

use tutel_comm::runtime::run_threaded_reliable_traced;
use tutel_comm::{FaultPlan, ReliableConfig, RetryPolicy};
use tutel_obs::trace::{TraceHub, TraceInvariants, TRACK_STREAM_COMM, TRACK_STREAM_COMPUTE};
use tutel_obs::{analyze, Analysis, AnalyzerConfig, Telemetry, TraceEvent};
use tutel_simgpu::Topology;

use crate::dist::run_distributed_traced;
use crate::reference::Problem;
use crate::{A2aAlgo, Config, Strategy};

/// Outcome of the clean traced smoke run.
#[derive(Debug, Clone)]
pub struct TraceSmoke {
    /// Structural facts from the invariant checker.
    pub invariants: TraceInvariants,
    /// Per-rank JSONL paths, rank order.
    pub rank_paths: Vec<String>,
    /// The merged Chrome `trace_events` file.
    pub trace_path: String,
    /// The analyzer's text report for the run.
    pub report: String,
}

/// How long the straggler scenario's culprit stalls between issuing
/// and waiting on its exchange — far above the analyzer's
/// delivery-latency floor, far below the retry timeout.
const STRAGGLER_STALL: Duration = Duration::from_millis(12);

/// Runs the 4-rank, 4-thread, degree-2 overlapped conformance
/// workload traced, writes `{prefix}.rank{r}.jsonl` per rank and the
/// merged `{prefix}.trace.json`, and checks the trace's structural
/// invariants.
///
/// # Errors
///
/// Returns a description of the first failed export or violated
/// invariant.
pub fn run_trace_smoke(prefix: &str) -> Result<TraceSmoke, String> {
    let problem = Problem { world: 4, seed: 42 };
    let fixture = problem.materialize();
    let cfg = Config {
        strategy: Strategy::P2,
        algo: A2aAlgo::TwoDh,
        degree: 2,
        world: 4,
        threads: 4,
    };
    let hub = TraceHub::new(cfg.world);
    run_distributed_traced(&problem, &fixture, &cfg, &hub);

    let rank_paths = hub
        .export_rank_jsonls(prefix)
        .map_err(|e| format!("exporting rank JSONLs under {prefix}: {e}"))?;
    let merged = hub.merged();
    let invariants = merged.check_invariants()?;
    if invariants.cross_rank_edges == 0 {
        return Err("traced run produced no cross-rank flow edges".to_string());
    }
    for (track, name) in [
        (TRACK_STREAM_COMPUTE, "compute stream"),
        (TRACK_STREAM_COMM, "comm stream"),
    ] {
        let seen = merged.ranks.iter().any(|r| {
            r.events
                .iter()
                .any(|ev| matches!(ev, TraceEvent::Span { track: t, .. } if *t == track))
        });
        if !seen {
            return Err(format!("no {name} spans — overlap streams missing"));
        }
    }
    let promoted = merged.ranks.iter().all(|r| {
        r.events
            .iter()
            .any(|ev| matches!(ev, TraceEvent::Instant { name, .. } if name == "2dh.promote"))
    });
    if !promoted {
        return Err("a rank never promoted its 2DH exchange to the inter phase".to_string());
    }

    let trace_path = format!("{prefix}.trace.json");
    merged
        .write_chrome_to(&trace_path)
        .map_err(|e| format!("writing {trace_path}: {e}"))?;
    let analysis = analyze(&merged, &AnalyzerConfig::default());
    Ok(TraceSmoke {
        invariants,
        rank_paths,
        trace_path,
        report: tutel_obs::analyze::report(&analysis),
    })
}

/// Stages a known straggler and checks the analyzer names it.
///
/// Four ranks run a reliable, traced non-blocking All-to-All; the
/// seeded plan delays every data send from `culprit`, and `culprit`
/// stalls [`STRAGGLER_STALL`] between issue and wait, so its delayed
/// payloads only flush when it re-enters the runtime. Every rank's
/// *wall* is equally long (the victims block on the late data), so
/// only the sender-attributed delivery-latency signal can name the
/// culprit. The anomalies are recorded into `tel`'s audit ring.
///
/// # Errors
///
/// Returns a description of the failure when any rank's exchange
/// errors, the trace is structurally broken, or the analyzer blames
/// the wrong rank (or no rank).
pub fn run_straggler_scenario(
    seed: u64,
    culprit: usize,
    tel: &Telemetry,
) -> Result<Analysis, String> {
    let topo = Topology::new(2, 2);
    let world = topo.world_size();
    assert!(culprit < world, "culprit must be a rank");
    let hub = TraceHub::new(world);
    let cfg = ReliableConfig {
        // A timeout far above the stall: the delayed copies themselves
        // are the accepted deliveries, not retransmissions of them.
        policy: RetryPolicy {
            timeout: Duration::from_millis(500),
            max_retries: 2,
            backoff: 2,
        },
        plan: Some(FaultPlan::new(seed).with_delays(100, 2).only_from(culprit)),
        telemetry: tel.clone(),
    };
    let results = run_threaded_reliable_traced(topo, cfg, &hub, move |mut comm| {
        let input: Vec<f32> = (0..world * 2)
            .map(|i| (comm.rank() * world * 2 + i) as f32)
            .collect();
        let handle = comm.ialltoall(&input)?;
        if comm.rank() == culprit {
            thread::sleep(STRAGGLER_STALL);
        }
        handle.wait(&mut comm)
    });
    for (rank, result) in results.iter().enumerate() {
        if let Err(e) = result {
            return Err(format!("rank {rank} failed under the delay plan: {e:?}"));
        }
    }

    let merged = hub.merged();
    merged.check_invariants()?;
    let analysis = analyze(&merged, &AnalyzerConfig::default());
    match analysis.straggler() {
        Some(rank) if rank == culprit => {}
        Some(rank) => {
            return Err(format!(
                "analyzer blamed rank {rank}, but the delay plan targets rank {culprit}"
            ))
        }
        None => {
            return Err(format!(
                "analyzer saw no straggler despite rank {culprit}'s delayed sends"
            ))
        }
    }
    analysis.record_into(tel);
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_smoke_round_trips_and_passes_invariants() {
        let dir = std::env::temp_dir().join(format!("tutel-trace-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let prefix = dir.join("smoke").to_string_lossy().into_owned();
        let smoke = run_trace_smoke(&prefix).expect("trace smoke");
        assert_eq!(smoke.rank_paths.len(), 4);
        assert!(smoke.invariants.cross_rank_edges > 0);
        assert!(!smoke.invariants.truncated, "ring buffers overflowed");
        // Round trip: the exported JSONLs parse back, re-merge, and
        // still satisfy every structural invariant.
        let parsed: Vec<_> = smoke
            .rank_paths
            .iter()
            .enumerate()
            .map(|(rank, path)| {
                let text = std::fs::read_to_string(path).expect("rank JSONL");
                let trace = tutel_obs::trace::parse_rank_trace(&text).expect("parse");
                assert_eq!(trace.rank, rank);
                assert!(!trace.events.is_empty());
                trace
            })
            .collect();
        let remerged = tutel_obs::MergedTrace::from_ranks(parsed);
        let reinv = remerged.check_invariants().expect("re-merged invariants");
        assert_eq!(reinv, smoke.invariants);
        // Track ids are stable across ranks: one span name, one track.
        let mut name_track = std::collections::HashMap::new();
        for rank in &remerged.ranks {
            for ev in &rank.events {
                if let TraceEvent::Span { track, name, .. } = ev {
                    let prev = name_track.insert(name.clone(), *track);
                    assert!(
                        prev.is_none_or(|t| t == *track),
                        "span {name:?} moved tracks across ranks"
                    );
                }
            }
        }
        let chrome = std::fs::read_to_string(&smoke.trace_path).expect("chrome JSON");
        assert!(chrome.contains("traceEvents"));
        assert!(smoke.report.contains("critical path"), "{}", smoke.report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delayed_rank_is_flagged_as_the_straggler() {
        let tel = Telemetry::enabled();
        let analysis = run_straggler_scenario(0xFA17, 1, &tel).expect("straggler scenario");
        assert_eq!(analysis.straggler(), Some(1));
        // The anomaly landed in the audit ring next to the decisions.
        let recorded = tel.anomalies();
        assert!(
            recorded
                .iter()
                .any(|a| a.kind == "straggler" && a.rank == Some(1)),
            "audit ring is missing the straggler record: {recorded:?}"
        );
    }
}
