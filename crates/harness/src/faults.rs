//! Seeded fault-injection scenarios for each collective.
//!
//! Two properties are asserted per collective, both replayable from a
//! single `--fault-seed`:
//!
//! * **graceful degradation** — under a mixed drop/duplicate/delay
//!   [`FaultPlan`] and a non-zero retry budget, the reliable runtime
//!   recovers *bitwise identical* results to a fault-free run, and the
//!   telemetry proves faults were actually injected;
//! * **clean failure** — when the budget cannot cover the plan (100%
//!   drops, zero retries), every rank surfaces a typed
//!   [`CommError::Timeout`] within the policy's bounded wait — never a
//!   hang, never a partially-written tensor, never a leaked mailbox
//!   message.
//!
//! A third scenario runs the deterministic scheduler with delivery-time
//! drops and asserts the wedge is *detected* (typed deadlock carrying
//! the replay seed) rather than silent.

use std::time::{Duration, Instant};

use tutel_comm::runtime::{run_threaded, run_threaded_reliable, Communicator};
use tutel_comm::sched::run_sched_faulty;
use tutel_comm::{CommError, FaultPlan, ReliableConfig, RetryPolicy};
use tutel_obs::Telemetry;
use tutel_simgpu::Topology;

/// The collectives under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Linear All-to-All.
    AllToAll,
    /// Two-Dimensional Hierarchical All-to-All.
    AllToAll2dh,
    /// Non-blocking linear All-to-All (handle issued, then waited) —
    /// the overlap executor's dispatch/combine primitive.
    IAllToAll,
    /// Ring all-gather.
    AllGather,
    /// Ring all-reduce (sum).
    AllReduceSum,
}

/// Every collective, in report order.
pub const COLLECTIVES: [Collective; 5] = [
    Collective::AllToAll,
    Collective::AllToAll2dh,
    Collective::IAllToAll,
    Collective::AllGather,
    Collective::AllReduceSum,
];

impl Collective {
    /// Name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Collective::AllToAll => "all_to_all",
            Collective::AllToAll2dh => "all_to_all_2dh",
            Collective::IAllToAll => "ialltoall",
            Collective::AllGather => "all_gather",
            Collective::AllReduceSum => "all_reduce_sum",
        }
    }

    fn invoke(&self, comm: &mut Communicator, input: &[f32]) -> Result<Vec<f32>, CommError> {
        match self {
            Collective::AllToAll => comm.all_to_all(input),
            Collective::AllToAll2dh => comm.all_to_all_2dh(input),
            Collective::IAllToAll => {
                let handle = comm.ialltoall(input)?;
                handle.wait(comm)
            }
            Collective::AllGather => comm.all_gather(input),
            Collective::AllReduceSum => comm.all_reduce_sum(input),
        }
    }
}

/// Outcome of the three scenarios for one collective.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The collective exercised.
    pub collective: Collective,
    /// Recovery: faulted results matched the fault-free run bitwise.
    pub recovered_identical: bool,
    /// Recovery: number of faults the plan actually injected (> 0 or
    /// the scenario is vacuous).
    pub injected: u64,
    /// Recovery: retransmissions served (the retry path actually ran).
    pub retransmits: u64,
    /// Clean failure: every rank got a typed timeout.
    pub failed_typed: bool,
    /// Clean failure: no rank ended with parked mailbox messages.
    pub no_leak: bool,
    /// Clean failure: wall time stayed within the bounded budget.
    pub bounded: bool,
    /// Sched: delivery-time drops were detected as a typed deadlock.
    pub sched_detected: bool,
    /// Overall verdict.
    pub pass: bool,
}

/// World-size-4 topology with a real inter-node axis so 2DH runs both
/// phases.
fn fault_topology() -> Topology {
    Topology::new(2, 2)
}

/// Per-rank input: `world` chunks of two distinct values so any
/// corruption or misdelivery changes the output.
fn fault_input(rank: usize, world: usize) -> Vec<f32> {
    (0..world * 2)
        .map(|i| (rank * world * 2 + i) as f32 * 0.5 + 1.0)
        .collect()
}

fn retry_counter(t: &Telemetry, name: &str) -> u64 {
    t.counter_value(name).unwrap_or(0)
}

/// Runs all three scenarios for one collective under `fault_seed`.
pub fn run_fault_scenarios(collective: Collective, fault_seed: u64) -> FaultReport {
    let topo = fault_topology();
    let world = topo.world_size();

    // Fault-free baseline.
    let program = move |mut comm: Communicator| {
        let input = fault_input(comm.rank(), world);
        let out = collective.invoke(&mut comm, &input);
        let parked = comm.parked_messages();
        (out, parked)
    };
    let plain = run_threaded(topo, program);

    // Scenario 1: graceful degradation. A mixed recoverable plan plus
    // a retry budget must reproduce the baseline bitwise.
    let telemetry = Telemetry::enabled();
    let cfg = ReliableConfig {
        policy: RetryPolicy {
            timeout: Duration::from_millis(20),
            max_retries: 6,
            backoff: 2,
        },
        plan: Some(
            FaultPlan::new(fault_seed)
                .with_drops(20)
                .with_duplicates(20)
                .with_delays(20, 2),
        ),
        telemetry: telemetry.clone(),
    };
    let recovered = run_threaded_reliable(topo, cfg, program);
    let recovered_identical = recovered == plain;
    let injected = retry_counter(&telemetry, "comm.retry.injected_drops")
        + retry_counter(&telemetry, "comm.retry.injected_dups")
        + retry_counter(&telemetry, "comm.retry.injected_delays");
    let retransmits = retry_counter(&telemetry, "comm.retry.retransmits");

    // Scenario 2: clean failure. An unrecoverable plan with a zero
    // retry budget must produce a typed timeout on every rank, leave
    // no mailbox residue, and return within a bounded wait.
    let fail_telemetry = Telemetry::enabled();
    let fail_cfg = ReliableConfig {
        policy: RetryPolicy {
            timeout: Duration::from_millis(10),
            max_retries: 0,
            backoff: 2,
        },
        plan: Some(FaultPlan::new(fault_seed ^ 0xDEAD).with_drops(100)),
        telemetry: fail_telemetry.clone(),
    };
    let started = Instant::now();
    let failed = run_threaded_reliable(topo, fail_cfg, program);
    let bounded = started.elapsed() < Duration::from_secs(10);
    let failed_typed = failed
        .iter()
        .all(|(r, _)| matches!(r, Err(CommError::Timeout { .. })));
    let no_leak = failed.iter().all(|&(_, parked)| parked == 0);

    // Scenario 3: delivery-time drops under the deterministic
    // scheduler must surface as a *detected* deadlock, replayable from
    // the same seed.
    let sched_program = move |comm: &mut Communicator| {
        let input = fault_input(comm.rank(), world);
        collective.invoke(comm, &input)
    };
    let (results, report) = run_sched_faulty(
        topo,
        fault_seed,
        FaultPlan::new(fault_seed).with_drops(100),
        sched_program,
    );
    let sched_detected = report.deadlock.is_some()
        && report.injected_drops > 0
        && results
            .iter()
            .all(|r| matches!(r, Err(CommError::Deadlock { .. })));

    let pass =
        recovered_identical && injected > 0 && failed_typed && no_leak && bounded && sched_detected;
    FaultReport {
        collective,
        recovered_identical,
        injected,
        retransmits,
        failed_typed,
        no_leak,
        bounded,
        sched_detected,
        pass,
    }
}

/// Runs the scenarios for every collective.
pub fn run_fault_suite(fault_seed: u64) -> Vec<FaultReport> {
    COLLECTIVES
        .iter()
        .map(|&c| run_fault_scenarios(c, fault_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_passes_for_all_to_all() {
        let report = run_fault_scenarios(Collective::AllToAll, 0xFA17);
        assert!(report.pass, "all_to_all fault scenarios failed: {report:?}");
    }

    #[test]
    fn default_seed_passes_for_nonblocking_all_to_all() {
        // The overlap executor's primitive goes through the same three
        // replayed scenarios: recover bitwise under a mixed plan, fail
        // typed under an unrecoverable one, wedge detectably under the
        // deterministic scheduler.
        let report = run_fault_scenarios(Collective::IAllToAll, 0xFA17);
        assert!(report.pass, "ialltoall fault scenarios failed: {report:?}");
    }

    #[test]
    fn replaying_a_seed_is_deterministic() {
        let a = run_fault_scenarios(Collective::AllGather, 77);
        let b = run_fault_scenarios(Collective::AllGather, 77);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.pass, b.pass);
    }
}
