//! `harness` — run the differential conformance matrix and the seeded
//! fault-injection suite, print a pass/fail grid, and emit a machine-
//! readable benchmark record.
//!
//! ```text
//! harness [--smoke | --full] [--seed N] [--fault-seed N] [--json PATH] [--trace PREFIX]
//! ```
//!
//! `--trace PREFIX` additionally runs the traced 4-rank smoke (per-rank
//! JSONLs + merged `PREFIX.trace.json`, gated by the trace invariant
//! checker) and the staged straggler scenario (the analyzer must name
//! the delayed rank).
//!
//! Exit code 0 iff every matrix point, every fault scenario, every
//! serving-grid point (with its fault replay), and (when requested)
//! both trace scenarios passed.

use std::process::ExitCode;
use std::time::Instant;

use tutel_harness::faults::{run_fault_suite, FaultReport};
use tutel_harness::grouped::{run_grouped_fault, run_grouped_suite, GroupedVerdict};
use tutel_harness::kernels::{run_kernel_matrix, KernelVerdict, BF16_ULP_BUDGET};
use tutel_harness::matrix::{configs, run_matrix, Mode, Verdict};
use tutel_harness::race::run_race_surface;
use tutel_harness::serve::{run_serve_fault, run_serve_suite, ServeVerdict};
use tutel_harness::trace::{run_straggler_scenario, run_trace_smoke};
use tutel_obs::Telemetry;

/// Default problem seed (parameters + inputs).
const DEFAULT_SEED: u64 = 42;
/// Default fault-plan seed; replay any failure with `--fault-seed`.
const DEFAULT_FAULT_SEED: u64 = 0xFA17;

struct Args {
    mode: Mode,
    seed: u64,
    fault_seed: u64,
    json: Option<String>,
    trace: Option<String>,
}

/// Parses a seed in decimal or `0x`-prefixed hex (the grid prints
/// fault seeds in hex, so they must paste back).
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("invalid seed {s:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: if std::env::var("HARNESS_FULL").is_ok_and(|v| v == "1") {
            Mode::Full
        } else {
            Mode::Smoke
        },
        seed: DEFAULT_SEED,
        fault_seed: DEFAULT_FAULT_SEED,
        json: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |what: &str| it.next().ok_or_else(|| format!("{what} requires a value"));
        match arg.as_str() {
            "--smoke" => args.mode = Mode::Smoke,
            "--full" => args.mode = Mode::Full,
            "--seed" => args.seed = parse_seed(&take("--seed")?)?,
            "--fault-seed" => args.fault_seed = parse_seed(&take("--fault-seed")?)?,
            "--json" => args.json = Some(take("--json")?),
            "--trace" => args.trace = Some(take("--trace")?),
            "--help" | "-h" => {
                return Err(
                    "usage: harness [--smoke | --full] [--seed N] [--fault-seed N] \
                     [--json PATH] [--trace PREFIX]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn print_matrix(verdicts: &[Verdict]) {
    println!("conformance matrix ({} configurations):", verdicts.len());
    println!(
        "  {:<18} {:>10} {:>8} {:>8} {:>6}  verdict",
        "config", "budget", "out", "d_x", "aux"
    );
    for v in verdicts {
        println!(
            "  {:<18} {:>7} ULP {:>8.2} {:>8.2} {:>6}  {}",
            v.config.label(),
            v.config.ulp_budget(),
            v.output_ulp,
            v.d_x_ulp,
            if v.aux_bitwise { "bit" } else { "DIFF" },
            if v.pass {
                if v.bitwise {
                    "pass (bitwise)"
                } else {
                    "pass"
                }
            } else {
                "FAIL"
            }
        );
    }
}

fn print_faults(reports: &[FaultReport]) {
    println!("fault-injection suite:");
    println!(
        "  {:<16} {:>9} {:>11} {:>8} {:>7} {:>8} {:>6}  verdict",
        "collective", "injected", "retransmits", "recover", "typed", "no-leak", "sched"
    );
    for r in reports {
        let yn = |b: bool| if b { "yes" } else { "NO" };
        println!(
            "  {:<16} {:>9} {:>11} {:>8} {:>7} {:>8} {:>6}  {}",
            r.collective.label(),
            r.injected,
            r.retransmits,
            yn(r.recovered_identical),
            yn(r.failed_typed && r.bounded),
            yn(r.no_leak),
            yn(r.sched_detected),
            if r.pass { "pass" } else { "FAIL" }
        );
    }
}

fn print_kernels(verdicts: &[KernelVerdict]) {
    println!("kernel-mode matrix ({} cells):", verdicts.len());
    println!(
        "  {:<12} {:>8} {:>14} {:>9} {:>6} {:>7}  verdict",
        "cell", "simd", "vs-f32 ULP", "budget", "aux", "faults"
    );
    for v in verdicts {
        let budget = if v.cell.precision == tutel_tensor::Precision::F32 {
            "0".to_string()
        } else {
            format!("{BF16_ULP_BUDGET:.0}")
        };
        println!(
            "  {:<12} {:>8} {:>14.2} {:>9} {:>6} {:>7}  {}",
            v.cell.label(),
            if !v.cell.simd {
                "base"
            } else if v.simd_bitwise {
                "bit"
            } else {
                "DIFF"
            },
            v.precision_ulp,
            budget,
            if v.aux_bitwise { "bit" } else { "DIFF" },
            if v.fault_pass { "pass" } else { "FAIL" },
            if v.pass { "pass" } else { "FAIL" }
        );
    }
}

/// Prints the serving grid and the fault-replay verdict; returns
/// whether every point (and the replay) passed, plus summary counts
/// for the JSON record.
fn run_serve_section(seed: u64, fault_seed: u64) -> (bool, usize, usize, f64) {
    let results = run_serve_suite(seed);
    println!("serving grid ({} cases):", results.len());
    println!(
        "  {:<14} {:>9} {:>6} {:>10} {:>12}  verdict",
        "case", "completed", "steps", "ulp", "scaled-ulp"
    );
    let mut pass = 0usize;
    let mut worst_scaled = 0.0f64;
    let mut all_ok = true;
    for res in &results {
        match res {
            Ok(v) => {
                let ServeVerdict {
                    case_,
                    completed,
                    offered,
                    steps,
                    worst_ulp,
                    worst_scaled_ulp,
                    budget,
                    pass: ok,
                } = v;
                println!(
                    "  {:<14} {:>5}/{:<3} {:>6} {:>10} {:>12.2}  {}",
                    case_.label(),
                    completed,
                    offered,
                    steps,
                    worst_ulp,
                    worst_scaled_ulp,
                    if *ok {
                        if *budget == 0 {
                            "pass (bitwise)"
                        } else {
                            "pass"
                        }
                    } else {
                        "FAIL"
                    }
                );
                worst_scaled = worst_scaled.max(*worst_scaled_ulp);
                if *ok {
                    pass += 1;
                } else {
                    all_ok = false;
                }
            }
            Err(e) => {
                println!("  ERROR: {e}");
                all_ok = false;
            }
        }
    }
    match run_serve_fault(fault_seed) {
        Ok(v) => {
            println!(
                "serve fault replay: {} injected, {} retransmits, outputs {} — {}",
                v.injected,
                v.retransmits,
                if v.identical { "bitwise" } else { "DIVERGED" },
                if v.pass { "pass" } else { "FAIL" }
            );
            all_ok &= v.pass;
        }
        Err(e) => {
            eprintln!("serve fault replay FAILED: {e}");
            all_ok = false;
        }
    }
    (all_ok, pass, results.len(), worst_scaled)
}

/// Prints the dropless grouped grid (vs reference and vs the padded
/// capacity twin) and the ragged fault replay; returns overall pass
/// plus summary counts for the JSON record.
fn run_grouped_section(seed: u64, fault_seed: u64) -> (bool, usize, usize, f64) {
    let results = run_grouped_suite(seed);
    println!("dropless grouped grid ({} cases):", results.len());
    println!(
        "  {:<14} {:>6} {:>12} {:>6} {:>16}  verdict",
        "case", "ulp", "scaled-ulp", "twin", "wire (vs padded)"
    );
    let mut pass = 0usize;
    let mut worst_scaled = 0.0f64;
    let mut all_ok = true;
    for res in &results {
        match res {
            Ok(v) => {
                let GroupedVerdict {
                    case_,
                    worst_ulp,
                    worst_scaled_ulp,
                    twin_bitwise,
                    wire_grouped,
                    wire_padded,
                    budget,
                    pass: ok,
                } = v;
                println!(
                    "  {:<14} {:>6} {:>12.2} {:>6} {:>7}/{:<8} {}",
                    case_.label(),
                    worst_ulp,
                    worst_scaled_ulp,
                    if *twin_bitwise { "bit" } else { "DIFF" },
                    wire_grouped,
                    wire_padded,
                    if *ok {
                        if *budget == 0 {
                            "pass (bitwise)"
                        } else {
                            "pass"
                        }
                    } else {
                        "FAIL"
                    }
                );
                worst_scaled = worst_scaled.max(*worst_scaled_ulp);
                if *ok {
                    pass += 1;
                } else {
                    all_ok = false;
                }
            }
            Err(e) => {
                println!("  ERROR: {e}");
                all_ok = false;
            }
        }
    }
    match run_grouped_fault(fault_seed) {
        Ok(v) => {
            println!(
                "ragged a2a fault replay: {} injected, {} retransmits, outputs {} — {}",
                v.injected,
                v.retransmits,
                if v.identical { "bitwise" } else { "DIVERGED" },
                if v.pass { "pass" } else { "FAIL" }
            );
            all_ok &= v.pass;
        }
        Err(e) => {
            eprintln!("ragged a2a fault replay FAILED: {e}");
            all_ok = false;
        }
    }
    (all_ok, pass, results.len(), worst_scaled)
}

fn write_json(
    path: &str,
    args: &Args,
    verdicts: &[Verdict],
    reports: &[FaultReport],
    kernels: &[KernelVerdict],
    // Serving grid and dropless grouped grid summaries, each
    // (pass, cases, worst scaled ULP).
    sections: [(usize, usize, f64); 2],
    wall: [f64; 5],
) -> std::io::Result<()> {
    let [matrix_secs, fault_secs, kernel_secs, serve_secs, grouped_secs] = wall;
    let [(serve_pass, serve_cases, serve_worst_scaled), (grouped_pass, grouped_cases, grouped_worst_scaled)] =
        sections;
    let matrix_pass = verdicts.iter().filter(|v| v.pass).count();
    let fault_pass = reports.iter().filter(|r| r.pass).count();
    let kernel_pass = kernels.iter().filter(|v| v.pass).count();
    let worst_ulp = verdicts
        .iter()
        .map(|v| v.output_ulp.max(v.d_x_ulp))
        .fold(0.0f64, f64::max);
    let worst_bf16_ulp = kernels
        .iter()
        .map(|v| v.precision_ulp)
        .fold(0.0f64, f64::max);
    let body = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"harness\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"fault_seed\": {},\n",
            "  \"matrix_configs\": {},\n",
            "  \"matrix_pass\": {},\n",
            "  \"matrix_worst_ulp\": {:.3},\n",
            "  \"matrix_wall_s\": {:.3},\n",
            "  \"fault_collectives\": {},\n",
            "  \"fault_pass\": {},\n",
            "  \"fault_wall_s\": {:.3},\n",
            "  \"kernel_cells\": {},\n",
            "  \"kernel_pass\": {},\n",
            "  \"kernel_worst_bf16_ulp\": {:.3},\n",
            "  \"kernel_bf16_budget\": {:.0},\n",
            "  \"kernel_wall_s\": {:.3},\n",
            "  \"serve_cases\": {},\n",
            "  \"serve_pass\": {},\n",
            "  \"serve_worst_scaled_ulp\": {:.3},\n",
            "  \"serve_wall_s\": {:.3},\n",
            "  \"grouped_cases\": {},\n",
            "  \"grouped_pass\": {},\n",
            "  \"grouped_worst_scaled_ulp\": {:.3},\n",
            "  \"grouped_wall_s\": {:.3}\n",
            "}}\n"
        ),
        args.mode.label(),
        args.seed,
        args.fault_seed,
        verdicts.len(),
        matrix_pass,
        worst_ulp,
        matrix_secs,
        reports.len(),
        fault_pass,
        fault_secs,
        kernels.len(),
        kernel_pass,
        worst_bf16_ulp,
        BF16_ULP_BUDGET,
        kernel_secs,
        serve_cases,
        serve_pass,
        serve_worst_scaled,
        serve_secs,
        grouped_cases,
        grouped_pass,
        grouped_worst_scaled,
        grouped_secs,
    );
    std::fs::write(path, body)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "harness: {} matrix ({} configs), seed {}, fault seed {:#x}",
        args.mode.label(),
        configs(args.mode).len(),
        args.seed,
        args.fault_seed
    );

    let t0 = Instant::now();
    let verdicts = run_matrix(args.mode, args.seed);
    let matrix_secs = t0.elapsed().as_secs_f64();
    print_matrix(&verdicts);

    let t1 = Instant::now();
    let reports = run_fault_suite(args.fault_seed);
    let fault_secs = t1.elapsed().as_secs_f64();
    print_faults(&reports);

    let t2 = Instant::now();
    let kernel_verdicts = run_kernel_matrix(args.seed, args.fault_seed);
    let kernel_secs = t2.elapsed().as_secs_f64();
    print_kernels(&kernel_verdicts);

    let t3 = Instant::now();
    let (serve_ok, serve_pass, serve_cases, serve_worst_scaled) =
        run_serve_section(args.seed, args.fault_seed);
    let serve_secs = t3.elapsed().as_secs_f64();

    let t4 = Instant::now();
    let (grouped_ok, grouped_pass, grouped_cases, grouped_worst_scaled) =
        run_grouped_section(args.seed, args.fault_seed);
    let grouped_secs = t4.elapsed().as_secs_f64();

    let trace_ok = match &args.trace {
        None => true,
        Some(prefix) => run_trace_scenarios(prefix, args.fault_seed),
    };

    let race_ok = run_race_scenario(args.seed);

    let matrix_ok = verdicts.iter().all(|v| v.pass);
    let faults_ok = reports.iter().all(|r| r.pass);
    let kernels_ok = kernel_verdicts.iter().all(|v| v.pass);
    println!(
        "matrix: {}/{} pass in {:.2}s; faults: {}/{} pass in {:.2}s; kernels: {}/{} pass in \
         {:.2}s; serve: {}/{} pass in {:.2}s; grouped: {}/{} pass in {:.2}s",
        verdicts.iter().filter(|v| v.pass).count(),
        verdicts.len(),
        matrix_secs,
        reports.iter().filter(|r| r.pass).count(),
        reports.len(),
        fault_secs,
        kernel_verdicts.iter().filter(|v| v.pass).count(),
        kernel_verdicts.len(),
        kernel_secs,
        serve_pass,
        serve_cases,
        serve_secs,
        grouped_pass,
        grouped_cases,
        grouped_secs
    );

    if let Some(path) = &args.json {
        if let Err(e) = write_json(
            path,
            &args,
            &verdicts,
            &reports,
            &kernel_verdicts,
            [
                (serve_pass, serve_cases, serve_worst_scaled),
                (grouped_pass, grouped_cases, grouped_worst_scaled),
            ],
            [
                matrix_secs,
                fault_secs,
                kernel_secs,
                serve_secs,
                grouped_secs,
            ],
        ) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if matrix_ok && faults_ok && kernels_ok && serve_ok && grouped_ok && trace_ok && race_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the combined-surface race scenario (real threads under the
/// happens-before checker); prints the verdict and any finding.
fn run_race_scenario(seed: u64) -> bool {
    let tel = Telemetry::enabled();
    let surface = run_race_surface(seed, &tel);
    println!(
        "race surface: {} events recorded, {} finding(s), outputs {} — {}",
        surface.events,
        surface.findings.len(),
        if surface.outputs_match {
            "match reference"
        } else {
            "DIVERGED"
        },
        if surface.passed() { "pass" } else { "FAIL" }
    );
    for f in &surface.findings {
        println!("  {}", f.summary());
    }
    surface.passed()
}

/// Runs both trace scenarios under `prefix`, printing the analyzer
/// reports; returns whether both passed.
fn run_trace_scenarios(prefix: &str, fault_seed: u64) -> bool {
    let smoke_ok = match run_trace_smoke(prefix) {
        Ok(smoke) => {
            println!(
                "trace smoke: {} events, {} spans, {} flow edges ({} cross-rank, {} retry) \
                 -> {}",
                smoke.invariants.events,
                smoke.invariants.spans,
                smoke.invariants.edges,
                smoke.invariants.cross_rank_edges,
                smoke.invariants.retry_edges,
                smoke.trace_path
            );
            print!("{}", smoke.report);
            true
        }
        Err(e) => {
            eprintln!("trace smoke FAILED: {e}");
            false
        }
    };
    let tel = Telemetry::enabled();
    let straggler_ok = match run_straggler_scenario(fault_seed, 1, &tel) {
        Ok(analysis) => {
            println!(
                "trace straggler: analyzer names rank {} from the delivery-latency signal",
                analysis.straggler().unwrap_or(usize::MAX)
            );
            true
        }
        Err(e) => {
            eprintln!("trace straggler FAILED: {e}");
            false
        }
    };
    smoke_ok && straggler_ok
}
