//! Property-based tests: P1/P2 equivalence over random shapes and the
//! parallelism router's decision consistency.

use proptest::prelude::*;
use tutel_comm::{CollectiveTiming, World};
use tutel_experts::{
    p1_forward, p2_forward, ExpertPlacement, ExpertsBlock, InlineParallelismRouter, MoeDims,
    ShardedExpertParams,
};
use tutel_tensor::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn p1_p2_agree_over_random_shapes(
        de in 1usize..4,
        m in 1usize..6,
        v_base in 1usize..5,
        shards in 1usize..5,
        c in 1usize..6,
        seed in any::<u64>(),
    ) {
        let v = v_base * shards; // divisible hidden dim
        let mut rng = Rng::seed(seed);
        let full = ExpertsBlock::new(de, m, v, &mut rng);
        let params = ShardedExpertParams::from_block(&full, shards).unwrap();
        let x = rng.normal_tensor(&[de, c, m], 0.0, 1.0);
        let reference = full.infer(&x).unwrap();
        let y1 = p1_forward(&params, &x).unwrap();
        let y2 = p2_forward(&params, &x).unwrap();
        prop_assert!(reference.sub(&y1).unwrap().max_abs() < 1e-3);
        prop_assert!(reference.sub(&y2).unwrap().max_abs() < 1e-3);
    }

    #[test]
    fn sharding_conserves_parameter_bytes(
        de in 1usize..4, m in 1usize..6, v_base in 1usize..5, shards in 1usize..5,
    ) {
        let v = v_base * shards;
        let mut rng = Rng::seed(42);
        let full = ExpertsBlock::new(de, m, v, &mut rng);
        let params = ShardedExpertParams::from_block(&full, shards).unwrap();
        // Regathering is lossless.
        let back = params.gather().unwrap();
        let (w1a, _, w2a, _) = full.weights();
        let (w1b, _, w2b, _) = back.weights();
        prop_assert_eq!(w1a, w1b);
        prop_assert_eq!(w2a, w2b);
    }

    #[test]
    fn placement_partitions_experts(
        x in -4i64..5, world_pow in 0u32..4,
    ) {
        let world = 1usize << world_pow;
        if x == 0 {
            prop_assert!(ExpertPlacement::from_count_per_node(0, world).is_err());
            return Ok(());
        }
        let p = match ExpertPlacement::from_count_per_node(x, world) {
            Ok(p) => p,
            Err(_) => return Ok(()), // indivisible negative x — rejected
        };
        let mut coverage = vec![0usize; p.global_experts()];
        for r in 0..world {
            for e in p.experts_on(r) {
                coverage[e] += 1;
            }
        }
        prop_assert!(coverage.iter().all(|&c| c == p.shards_per_expert()));
        // owners_of and experts_on are consistent.
        for e in 0..p.global_experts() {
            for r in p.owners_of(e) {
                prop_assert!(p.experts_on(r).contains(&e));
            }
        }
    }

    #[test]
    fn router_choice_minimizes_its_own_costs(
        experts in 1usize..9,
        tokens_pow in 8u32..16,
        f in 0.25f64..16.0,
        hidden_pow in 10u32..14,
    ) {
        let router = InlineParallelismRouter::new(CollectiveTiming::new(World::azure(8)));
        let dims = MoeDims {
            world: 8,
            global_experts: experts,
            tokens: 1 << tokens_pow,
            k: 2,
            capacity_factor: f,
            model_dim: 2048,
            hidden_dim: 1 << hidden_pow,
            weight_precision: tutel_tensor::Precision::F32,
        };
        let choice = router.choose(&dims);
        let chosen = router.cost_of(choice, &dims);
        prop_assert!(chosen <= router.p1_cost(&dims) + 1e-15);
        prop_assert!(chosen <= router.p2_cost(&dims) + 1e-15);
        prop_assert!(chosen > 0.0);
    }
}
