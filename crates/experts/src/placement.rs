//! Expert distribution control: the `count_per_node` argument of
//! Figure 17.

use std::fmt;

/// How global experts are laid out over GPUs.
///
/// Mirrors the paper's `count_per_node = x` API: a positive `x` gives
/// every GPU `x` local experts; a negative `x` splits every expert
/// across `-x` GPUs (each GPU handling `1/(-x)` of that expert's
/// input). `count_per_node` only affects throughput — the training
/// algorithm is unchanged.
///
/// # Example
///
/// ```
/// use tutel_experts::ExpertPlacement;
///
/// // Figure 17a: #GPU = 2, count_per_node = 2 → 4 global experts.
/// let p = ExpertPlacement::from_count_per_node(2, 2).unwrap();
/// assert_eq!(p.global_experts(), 4);
/// assert_eq!(p.owners_of(3), vec![1]);
///
/// // Figure 17b: #GPU = 8, count_per_node = -2 → 4 experts, 2 GPUs each.
/// let p = ExpertPlacement::from_count_per_node(-2, 8).unwrap();
/// assert_eq!(p.global_experts(), 4);
/// assert_eq!(p.owners_of(2), vec![4, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpertPlacement {
    world: usize,
    /// Experts per GPU (≥ 1) — `Some` for positive `count_per_node`.
    local_experts: Option<usize>,
    /// GPUs per expert (≥ 1) — `Some` for negative `count_per_node`.
    shards_per_expert: Option<usize>,
}

impl ExpertPlacement {
    /// Parses a `count_per_node` value for a world of `world` GPUs.
    ///
    /// # Errors
    ///
    /// Returns an error string if `x == 0`, or a negative `x` does not
    /// divide the world size.
    pub fn from_count_per_node(x: i64, world: usize) -> Result<Self, String> {
        if world == 0 {
            return Err("world size must be positive".into());
        }
        match x.cmp(&0) {
            std::cmp::Ordering::Greater => Ok(ExpertPlacement {
                world,
                local_experts: Some(x as usize),
                shards_per_expert: None,
            }),
            std::cmp::Ordering::Less => {
                let shards = (-x) as usize;
                if !world.is_multiple_of(shards) {
                    return Err(format!(
                        "count_per_node = {x}: {shards} GPUs per expert does not divide world {world}"
                    ));
                }
                Ok(ExpertPlacement {
                    world,
                    local_experts: None,
                    shards_per_expert: Some(shards),
                })
            }
            std::cmp::Ordering::Equal => Err("count_per_node must be nonzero".into()),
        }
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Total number of global experts under this placement.
    pub fn global_experts(&self) -> usize {
        match (self.local_experts, self.shards_per_expert) {
            (Some(le), _) => le * self.world,
            (_, Some(sh)) => self.world / sh,
            _ => unreachable!("one of the two modes is always set"),
        }
    }

    /// Local experts per GPU, as a (possibly fractional) `ΔE`.
    pub fn local_experts_fraction(&self) -> f64 {
        self.global_experts() as f64 / self.world as f64
    }

    /// GPUs into which each expert is sharded (1 when unsharded) —
    /// "n-sharded" in the paper's P2 description.
    pub fn shards_per_expert(&self) -> usize {
        self.shards_per_expert.unwrap_or(1)
    }

    /// The GPUs owning (a shard of) expert `e`, in shard order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= global_experts()`.
    pub fn owners_of(&self, e: usize) -> Vec<usize> {
        assert!(e < self.global_experts(), "expert {e} out of range");
        match (self.local_experts, self.shards_per_expert) {
            (Some(le), _) => vec![e / le],
            (_, Some(sh)) => (e * sh..(e + 1) * sh).collect(),
            _ => unreachable!("one of the two modes is always set"),
        }
    }

    /// The experts (ids) whose parameters live (possibly as shards) on
    /// `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world()`.
    pub fn experts_on(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.world, "rank {rank} out of range");
        match (self.local_experts, self.shards_per_expert) {
            (Some(le), _) => (rank * le..(rank + 1) * le).collect(),
            (_, Some(sh)) => vec![rank / sh],
            _ => unreachable!("one of the two modes is always set"),
        }
    }
}

impl fmt::Display for ExpertPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.local_experts, self.shards_per_expert) {
            (Some(le), _) => write!(f, "{} GPUs × {le} local experts", self.world),
            (_, Some(sh)) => {
                write!(
                    f,
                    "{} experts × {sh}-way sharded over {} GPUs",
                    self.global_experts(),
                    self.world
                )
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_count_per_node_figure17a() {
        let p = ExpertPlacement::from_count_per_node(2, 2).unwrap();
        assert_eq!(p.global_experts(), 4);
        assert_eq!(p.experts_on(0), vec![0, 1]);
        assert_eq!(p.experts_on(1), vec![2, 3]);
        assert_eq!(p.owners_of(0), vec![0]);
        assert_eq!(p.shards_per_expert(), 1);
    }

    #[test]
    fn negative_count_per_node_figure17b() {
        let p = ExpertPlacement::from_count_per_node(-2, 8).unwrap();
        assert_eq!(p.global_experts(), 4);
        assert_eq!(p.owners_of(0), vec![0, 1]);
        assert_eq!(p.owners_of(3), vec![6, 7]);
        assert_eq!(p.experts_on(5), vec![2]);
        assert_eq!(p.shards_per_expert(), 2);
        assert!((p.local_experts_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_arguments() {
        assert!(ExpertPlacement::from_count_per_node(0, 4).is_err());
        assert!(ExpertPlacement::from_count_per_node(-3, 8).is_err());
        assert!(ExpertPlacement::from_count_per_node(1, 0).is_err());
    }

    #[test]
    fn ownership_is_a_partition() {
        for (x, w) in [(2i64, 4usize), (-2, 8), (1, 8), (-4, 8)] {
            let p = ExpertPlacement::from_count_per_node(x, w).unwrap();
            let mut seen = vec![0usize; p.global_experts()];
            for r in 0..w {
                for e in p.experts_on(r) {
                    seen[e] += 1;
                }
            }
            // Each expert appears on exactly shards_per_expert ranks.
            assert!(seen.iter().all(|&c| c == p.shards_per_expert()), "{x} {w}");
        }
    }
}
