//! ZeRO-style sharded expert parameters and the two switchable
//! parallelism executions (Section 3.2, Figures 11–12).
//!
//! The crucial design point making P1 and P2 *switchable at zero cost*
//! is that they share one parameter placement: every rank of a replica
//! group permanently owns a `1/R` hidden-dimension slice of its
//! experts' weights. P1 temporarily materializes the full weights via
//! all-gather (Expert + Data parallelism); P2 uses the slice directly
//! in tensor-parallel style against replicated tokens (Expert + Model
//! parallelism). Switching between them changes only the communication
//! plan — no parameter migration ever happens.

use tutel_tensor::{dispatch, Precision, Rng, Tensor, TensorError};

use crate::ExpertsBlock;

/// Expert parameters sharded across the `R` ranks of one replica group.
///
/// Sharding is along the hidden dimension `V`: rank `r` owns columns
/// `[r·V/R, (r+1)·V/R)` of `W1`/`b1` and the matching rows of `W2`
/// (the classic Megatron column/row-parallel split). `b2` belongs to
/// shard 0 so the cross-shard sum adds it exactly once.
///
/// # Example
///
/// ```
/// use tutel_experts::{p1_forward, p2_forward, ShardedExpertParams};
/// use tutel_tensor::Rng;
///
/// let mut rng = Rng::seed(0);
/// let params = ShardedExpertParams::new(1, 8, 16, 4, &mut rng)?;
/// let x = rng.normal_tensor(&[1, 6, 8], 0.0, 1.0);
/// let y1 = p1_forward(&params, &x)?;
/// let y2 = p2_forward(&params, &x)?;
/// assert!(y1.sub(&y2)?.max_abs() < 1e-4); // identical math, either path
/// # Ok::<(), tutel_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedExpertParams {
    local_experts: usize,
    model_dim: usize,
    hidden_dim: usize,
    shards: usize,
    /// Weight storage format — determines bytes per element on the
    /// wire for the P1 parameter all-gather.
    precision: Precision,
    /// Per-shard parameter slices, index = rank within the group.
    slices: Vec<ShardSlice>,
}

#[derive(Debug, Clone, PartialEq)]
struct ShardSlice {
    /// `(ΔE, M, V/R)`.
    w1: Tensor,
    /// `(ΔE, V/R)`.
    b1: Tensor,
    /// `(ΔE, V/R, M)`.
    w2: Tensor,
    /// `(ΔE, M)` — real values on shard 0, zeros elsewhere.
    b2: Tensor,
}

impl ShardedExpertParams {
    /// Creates randomly initialized sharded parameters for
    /// `local_experts` experts of dims `model_dim → hidden_dim`,
    /// sharded `shards` ways.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `hidden_dim` is not divisible by
    /// `shards`.
    pub fn new(
        local_experts: usize,
        model_dim: usize,
        hidden_dim: usize,
        shards: usize,
        rng: &mut Rng,
    ) -> Result<Self, TensorError> {
        if shards == 0 || !hidden_dim.is_multiple_of(shards) {
            return Err(TensorError::InvalidArgument(format!(
                "hidden dim {hidden_dim} not divisible into {shards} shards"
            )));
        }
        let full = ExpertsBlock::new(local_experts, model_dim, hidden_dim, rng);
        Self::from_block(&full, shards)
    }

    /// Shards an existing full-parameter block.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if the hidden dim is not divisible by
    /// `shards`.
    pub fn from_block(full: &ExpertsBlock, shards: usize) -> Result<Self, TensorError> {
        let (w1, b1, w2, b2) = full.weights();
        let v = full.hidden_dim();
        if shards == 0 || !v.is_multiple_of(shards) {
            return Err(TensorError::InvalidArgument(format!(
                "hidden dim {v} not divisible into {shards} shards"
            )));
        }
        // Column-split W1/b1 along V (axis 2 / axis 1), row-split W2
        // along V (axis 1).
        let w1s = w1.split_axis(2, shards)?;
        let b1s = b1.split_axis(1, shards)?;
        let w2s = w2.split_axis(1, shards)?;
        let slices = (0..shards)
            .map(|r| ShardSlice {
                w1: w1s[r].clone(),
                b1: b1s[r].clone(),
                w2: w2s[r].clone(),
                b2: if r == 0 {
                    b2.clone()
                } else {
                    Tensor::zeros(b2.dims())
                },
            })
            .collect();
        Ok(ShardedExpertParams {
            local_experts: full.local_experts(),
            model_dim: full.model_dim(),
            hidden_dim: v,
            shards,
            precision: full.storage_precision(),
            slices,
        })
    }

    /// Switches the storage precision, rounding every shard's slice to
    /// the new format in place (no parameter migration — sharding is
    /// untouched).
    pub fn with_storage_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        if precision != Precision::F32 {
            for s in &mut self.slices {
                tutel_tensor::quantize_in_place(s.w1.as_mut_slice(), precision);
                tutel_tensor::quantize_in_place(s.b1.as_mut_slice(), precision);
                tutel_tensor::quantize_in_place(s.w2.as_mut_slice(), precision);
                tutel_tensor::quantize_in_place(s.b2.as_mut_slice(), precision);
            }
        }
        self
    }

    /// The weight storage format.
    pub fn storage_precision(&self) -> Precision {
        self.precision
    }

    /// Number of shards (`R`, the "n-sharded" of the paper).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Local experts per group (`ΔE`).
    pub fn local_experts(&self) -> usize {
        self.local_experts
    }

    /// Model dimension `M`.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Hidden dimension `V` (full, before sharding).
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Parameter bytes held by one shard (and sent by it per ring
    /// all-gather hop) at the storage precision — half the `f32`
    /// figure under bf16.
    pub fn shard_bytes(&self) -> u64 {
        let s = &self.slices[0];
        ((s.w1.len() + s.b1.len() + s.w2.len() + s.b2.len()) * self.precision.storage_bytes())
            as u64
    }

    /// The tensor-parallel slice owned by rank `r` of the group, as a
    /// runnable block (what P2 executes directly).
    ///
    /// # Panics
    ///
    /// Panics if `r >= shards()`.
    pub fn shard_block(&self, r: usize) -> ExpertsBlock {
        let s = &self.slices[r];
        ExpertsBlock::from_weights(s.w1.clone(), s.b1.clone(), s.w2.clone(), s.b2.clone())
            // check:allow(no_panic, shard slices were validated when the slab was partitioned)
            .expect("shard slices are internally consistent")
            // Slices are already on the storage grid, so this re-round
            // is an exact no-op on values; it only tags the block.
            .with_storage_precision(self.precision)
    }

    /// Materializes the full parameters via (functional) all-gather —
    /// what P1 executes.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if concatenation fails (cannot happen
    /// for internally consistent shards).
    pub fn gather(&self) -> Result<ExpertsBlock, TensorError> {
        let w1: Vec<Tensor> = self.slices.iter().map(|s| s.w1.clone()).collect();
        let b1: Vec<Tensor> = self.slices.iter().map(|s| s.b1.clone()).collect();
        let w2: Vec<Tensor> = self.slices.iter().map(|s| s.w2.clone()).collect();
        let full_w1 = Tensor::concat_axis(&w1, 2)?;
        let full_b1 = Tensor::concat_axis(&b1, 1)?;
        let full_w2 = Tensor::concat_axis(&w2, 1)?;
        Ok(
            ExpertsBlock::from_weights(full_w1, full_b1, full_w2, self.slices[0].b2.clone())?
                .with_storage_precision(self.precision),
        )
    }

    /// [`ShardedExpertParams::gather`] through the *wire format*, with
    /// collective telemetry: under bf16 storage each slice is packed
    /// into 2-byte values before "transmission" and unpacked on
    /// arrival — an exact round trip because stored weights always sit
    /// on the storage grid — and the recorded `all_gather` bytes are
    /// the packed ones, i.e. half the `f32` figure.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if concatenation fails (cannot happen
    /// for internally consistent shards).
    pub fn gather_observed(&self, tel: &tutel_obs::Telemetry) -> Result<ExpertsBlock, TensorError> {
        if tel.is_enabled() && self.shards > 1 {
            tel.collective(
                "all_gather",
                &format!("params/{}/{}", self.precision.label(), self.shards),
                (self.shard_bytes() * (self.shards as u64 - 1)) as f64,
                0.0,
            );
        }
        if self.precision != Precision::Bf16 {
            return self.gather();
        }
        let through_wire = |t: &Tensor| {
            let kt = dispatch::table();
            let mut packed = vec![0u16; t.len()];
            (kt.bf16_pack)(t.as_slice(), &mut packed);
            let mut out = t.clone();
            (kt.bf16_unpack)(&packed, out.as_mut_slice());
            out
        };
        let w1: Vec<Tensor> = self.slices.iter().map(|s| through_wire(&s.w1)).collect();
        let b1: Vec<Tensor> = self.slices.iter().map(|s| through_wire(&s.b1)).collect();
        let w2: Vec<Tensor> = self.slices.iter().map(|s| through_wire(&s.w2)).collect();
        let full_w1 = Tensor::concat_axis(&w1, 2)?;
        let full_b1 = Tensor::concat_axis(&b1, 1)?;
        let full_w2 = Tensor::concat_axis(&w2, 1)?;
        Ok(
            ExpertsBlock::from_weights(
                full_w1,
                full_b1,
                full_w2,
                through_wire(&self.slices[0].b2),
            )?
            .with_storage_precision(self.precision),
        )
    }

    /// A fingerprint of the per-shard parameter bytes, used to assert
    /// that switching parallelism never migrates parameters.
    pub fn placement_fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |t: &Tensor| {
            for v in t.as_slice() {
                h ^= v.to_bits() as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for s in &self.slices {
            mix(&s.w1);
            mix(&s.b1);
            mix(&s.w2);
            mix(&s.b2);
        }
        h
    }
}

/// P1 — Switchable Expert + Data Parallelism (Figure 11): all-gather
/// the sharded parameters into full experts, then compute locally.
///
/// # Errors
///
/// Returns a [`TensorError`] if `x` is not `(ΔE, C, M)`.
pub fn p1_forward(params: &ShardedExpertParams, x: &Tensor) -> Result<Tensor, TensorError> {
    params.gather()?.infer(x)
}

/// P2 — Switchable Expert + Model Parallelism (Figure 12): every shard
/// computes on the (replicated) tokens with its local slice; partial
/// outputs are sum-reduced.
///
/// # Errors
///
/// Returns a [`TensorError`] if `x` is not `(ΔE, C, M)`.
pub fn p2_forward(params: &ShardedExpertParams, x: &Tensor) -> Result<Tensor, TensorError> {
    let mut acc: Option<Tensor> = None;
    for r in 0..params.shards() {
        let partial = params.shard_block(r).infer(x)?;
        acc = Some(match acc {
            None => partial,
            Some(a) => a.add(&partial)?,
        });
    }
    // check:allow(no_panic, shards() >= 1 is a SlabParams invariant)
    Ok(acc.expect("at least one shard"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_and_p2_compute_identical_outputs() {
        let mut rng = Rng::seed(1);
        for shards in [1, 2, 4] {
            let params = ShardedExpertParams::new(2, 6, 8, shards, &mut rng).unwrap();
            let x = rng.normal_tensor(&[2, 5, 6], 0.0, 1.0);
            let y1 = p1_forward(&params, &x).unwrap();
            let y2 = p2_forward(&params, &x).unwrap();
            assert!(y1.sub(&y2).unwrap().max_abs() < 1e-4, "shards {shards}");
        }
    }

    #[test]
    fn gather_reconstructs_the_original_block() {
        let mut rng = Rng::seed(2);
        let full = ExpertsBlock::new(3, 4, 8, &mut rng);
        let sharded = ShardedExpertParams::from_block(&full, 4).unwrap();
        let regathered = sharded.gather().unwrap();
        let (w1a, b1a, w2a, b2a) = full.weights();
        let (w1b, b1b, w2b, b2b) = regathered.weights();
        assert_eq!(w1a, w1b);
        assert_eq!(b1a, b1b);
        assert_eq!(w2a, w2b);
        assert_eq!(b2a, b2b);
    }

    #[test]
    fn switching_does_not_migrate_parameters() {
        let mut rng = Rng::seed(3);
        let params = ShardedExpertParams::new(1, 4, 8, 2, &mut rng).unwrap();
        let x = rng.normal_tensor(&[1, 3, 4], 0.0, 1.0);
        let fp0 = params.placement_fingerprint();
        let _ = p1_forward(&params, &x).unwrap();
        let fp1 = params.placement_fingerprint();
        let _ = p2_forward(&params, &x).unwrap();
        let fp2 = params.placement_fingerprint();
        let _ = p1_forward(&params, &x).unwrap();
        let fp3 = params.placement_fingerprint();
        assert!(fp0 == fp1 && fp1 == fp2 && fp2 == fp3, "parameters moved");
    }

    #[test]
    fn shard_bytes_divide_evenly() {
        let mut rng = Rng::seed(4);
        let full = ExpertsBlock::new(1, 4, 8, &mut rng);
        let total = (full.num_params() * 4) as u64;
        let sharded = ShardedExpertParams::from_block(&full, 2).unwrap();
        // Shards split W1/b1/W2; b2 rides on shard 0 (zeros elsewhere),
        // so each shard stores slightly more than total/R.
        assert!(sharded.shard_bytes() >= total / 2 - 64);
        assert!(sharded.shard_bytes() <= total / 2 + 64);
    }

    #[test]
    fn bf16_halves_shard_bytes_and_wire_gather_is_exact() {
        let mut rng = Rng::seed(7);
        let f32_params = ShardedExpertParams::new(2, 4, 8, 2, &mut rng).unwrap();
        let f32_bytes = f32_params.shard_bytes();
        let params = f32_params.with_storage_precision(Precision::Bf16);
        assert_eq!(params.shard_bytes() * 2, f32_bytes);

        // Stored slices sit on the bf16 grid, so the packed 2-byte
        // wire format loses nothing: gather-through-wire == gather.
        let tel = tutel_obs::Telemetry::enabled();
        let direct = params.gather().unwrap();
        let wired = params.gather_observed(&tel).unwrap();
        let (w1a, b1a, w2a, b2a) = direct.weights();
        let (w1b, b1b, w2b, b2b) = wired.weights();
        assert_eq!(w1a, w1b);
        assert_eq!(b1a, b1b);
        assert_eq!(w2a, w2b);
        assert_eq!(b2a, b2b);

        // And the telemetry records the halved byte count.
        let recorded: Vec<_> = tel
            .events()
            .into_iter()
            .filter_map(|e| match e {
                tutel_obs::Event::Collective(c) if c.op == "all_gather" => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(recorded.len(), 1);
        assert_eq!(
            recorded[0].bytes,
            (params.shard_bytes() * (params.shards() as u64 - 1)) as f64
        );
        assert!(recorded[0].algo.contains("bf16"));
    }

    #[test]
    fn bf16_p1_and_p2_still_agree() {
        let mut rng = Rng::seed(8);
        let params = ShardedExpertParams::new(2, 6, 8, 2, &mut rng)
            .unwrap()
            .with_storage_precision(Precision::Bf16);
        let x = rng.normal_tensor(&[2, 5, 6], 0.0, 1.0);
        let y1 = p1_forward(&params, &x).unwrap();
        let y2 = p2_forward(&params, &x).unwrap();
        assert!(y1.sub(&y2).unwrap().max_abs() < 1e-4);
    }

    #[test]
    fn rejects_indivisible_hidden_dim() {
        let mut rng = Rng::seed(5);
        assert!(ShardedExpertParams::new(1, 4, 6, 4, &mut rng).is_err());
        assert!(ShardedExpertParams::new(1, 4, 6, 0, &mut rng).is_err());
    }

    #[test]
    fn single_shard_is_the_trivial_case() {
        let mut rng = Rng::seed(6);
        let params = ShardedExpertParams::new(2, 4, 8, 1, &mut rng).unwrap();
        let x = rng.normal_tensor(&[2, 3, 4], 0.0, 1.0);
        let y1 = p1_forward(&params, &x).unwrap();
        let y2 = p2_forward(&params, &x).unwrap();
        assert_eq!(y1, y2);
    }
}
