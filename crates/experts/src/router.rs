//! The inline parallelism router (Section 3.2).
//!
//! P1 and P2 have theoretically equivalent local computation, so the
//! router only compares their *communication* volumes — an O(1)
//! decision made fresh every iteration from the current `top-k` and
//! capacity factor:
//!
//! * `T_data  = O(ΔE·C·M) + O(parameters_in_single_expert)` (P1)
//! * `T_model = O(n_sharded · ΔE·C·M)` (P2)

use tutel_comm::CollectiveTiming;
use tutel_simgpu::{Protocol, Seconds};
use tutel_tensor::Precision;

/// Which switchable parallelism executes the expert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Expert + Data parallelism with ZeRO-sharded weights (Figure 11).
    P1,
    /// Expert + Model parallelism with replicated tokens (Figure 12).
    P2,
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::P1 => write!(f, "P1 (EP+DP)"),
            Parallelism::P2 => write!(f, "P2 (EP+MP)"),
        }
    }
}

/// The per-iteration MoE dimensions the router's cost function needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeDims {
    /// World size `W`.
    pub world: usize,
    /// Global experts `E`.
    pub global_experts: usize,
    /// Tokens per step `T` (across the world).
    pub tokens: usize,
    /// Top-k.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
    /// Model (channel) dimension `M`.
    pub model_dim: usize,
    /// Expert hidden dimension `V`.
    pub hidden_dim: usize,
    /// Storage format of the expert weights. Token activations stay
    /// `f32` on the wire, but P1's parameter all-gather moves weight
    /// bytes — bf16 storage halves them and so shifts the P1/P2
    /// crossover.
    pub weight_precision: Precision,
}

impl MoeDims {
    /// Replication / sharding factor `R = W / E` (1 when `E ≥ W`).
    pub fn shards(&self) -> usize {
        (self.world / self.global_experts.max(1)).max(1)
    }

    /// Global per-expert capacity `C = k·f·T/E`.
    pub fn capacity(&self) -> usize {
        tutel_gate::expert_capacity(
            self.k,
            self.capacity_factor,
            self.tokens,
            self.global_experts,
        )
    }

    /// Bytes of one expert's parameters (two `M×V` matrices + biases)
    /// at the weights' storage precision.
    pub fn expert_param_bytes(&self) -> f64 {
        ((2 * self.model_dim * self.hidden_dim + self.model_dim + self.hidden_dim)
            * self.weight_precision.storage_bytes()) as f64
    }

    /// Bytes per GPU of one *un-replicated* token All-to-All: each GPU
    /// ends up with `ΔE·C/R` rows of `M` floats under P1.
    pub fn token_a2a_bytes_p1(&self) -> f64 {
        let local_rows = self.capacity() as f64 * self.global_experts as f64 / self.world as f64;
        local_rows * self.model_dim as f64 * 4.0
    }

    /// Bytes per GPU of the P2 token All-to-All: tokens are repeated
    /// `n_sharded` times, so every shard sees the full capacity.
    pub fn token_a2a_bytes_p2(&self) -> f64 {
        self.token_a2a_bytes_p1() * self.shards() as f64
    }
}

/// O(1) communication-cost router between [`Parallelism::P1`] and
/// [`Parallelism::P2`].
///
/// # Example
///
/// ```
/// use tutel_comm::{CollectiveTiming, World};
/// use tutel_experts::{InlineParallelismRouter, MoeDims, Parallelism};
///
/// let router = InlineParallelismRouter::new(CollectiveTiming::new(World::azure(8)));
/// let mut dims = MoeDims {
///     world: 8, global_experts: 2, tokens: 2048, k: 2,
///     capacity_factor: 1.0, model_dim: 2048, hidden_dim: 8192,
///     weight_precision: tutel_tensor::Precision::F32,
/// };
/// // Small workload: avoid moving the big expert weights → P2.
/// assert_eq!(router.choose(&dims), Parallelism::P2);
/// // 16× the workload: token traffic dominates → P1.
/// dims.capacity_factor = 16.0;
/// assert_eq!(router.choose(&dims), Parallelism::P1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InlineParallelismRouter {
    timing: CollectiveTiming,
    /// All-to-All passes per iteration (dispatch + combine, forward and
    /// backward).
    a2a_passes: f64,
    /// Parameter-collective passes per iteration for P1 (all-gather in
    /// forward + reduce-scatter of gradients in backward).
    param_passes: f64,
}

impl InlineParallelismRouter {
    /// Creates a router pricing on `timing`.
    pub fn new(timing: CollectiveTiming) -> Self {
        InlineParallelismRouter {
            timing,
            a2a_passes: 4.0,
            param_passes: 2.0,
        }
    }

    /// Estimated per-iteration communication cost of P1.
    pub fn p1_cost(&self, dims: &MoeDims) -> Seconds {
        let token = self.a2a_passes
            * self
                .timing
                .linear_time(dims.token_a2a_bytes_p1(), Protocol::Simple);
        let shards = dims.shards();
        let param = if shards > 1 {
            self.param_passes
                * self
                    .timing
                    .all_gather_time(dims.expert_param_bytes() / shards as f64, shards)
        } else {
            0.0
        };
        token + param
    }

    /// Estimated per-iteration communication cost of P2.
    ///
    /// Includes the *local* data movement P2's dispatch requires: the
    /// `n_sharded`-way token repeat before the All-to-All and the sum
    /// reduction after combine (Figure 12) — both HBM-bound copies over
    /// the replicated volume.
    pub fn p2_cost(&self, dims: &MoeDims) -> Seconds {
        let bytes = dims.token_a2a_bytes_p2();
        let a2a = self.a2a_passes * self.timing.linear_time(bytes, Protocol::Simple);
        let local = if dims.shards() > 1 {
            // Repeat: read bytes/R, write bytes; reduce: read bytes,
            // write bytes/R → (2 + 2/R) passes over HBM.
            let passes = 2.0 + 2.0 / dims.shards() as f64;
            passes * self.timing.world().gpu().copy_time(bytes)
        } else {
            0.0
        };
        a2a + local
    }

    /// Picks the cheaper strategy for this iteration's dimensions.
    pub fn choose(&self, dims: &MoeDims) -> Parallelism {
        if self.p1_cost(dims) <= self.p2_cost(dims) {
            Parallelism::P1
        } else {
            Parallelism::P2
        }
    }

    /// [`InlineParallelismRouter::choose`] that also appends an
    /// adaptive-decision audit record (both candidate costs and the
    /// winner) to `tel`.
    pub fn choose_observed(&self, dims: &MoeDims, tel: &tutel_obs::Telemetry) -> Parallelism {
        let choice = self.choose(dims);
        if tel.is_enabled() {
            let p1 = self.p1_cost(dims);
            let p2 = self.p2_cost(dims);
            tel.decision(tutel_obs::DecisionRecord {
                kind: "parallelism".to_string(),
                capacity_factor: dims.capacity_factor,
                candidates: vec![("P1".to_string(), p1), ("P2".to_string(), p2)],
                chosen: choice.to_string(),
                predicted_s: Some(p1.min(p2)),
                measured_s: None,
                cause: None,
                precision: Some(dims.weight_precision.label().to_string()),
                dropless: dims.capacity_factor == 0.0,
                step: None,
            });
        }
        choice
    }

    /// The cost of a *static* choice, for computing the adaptive
    /// improvement of Table 5.
    pub fn cost_of(&self, p: Parallelism, dims: &MoeDims) -> Seconds {
        match p {
            Parallelism::P1 => self.p1_cost(dims),
            Parallelism::P2 => self.p2_cost(dims),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tutel_comm::World;

    fn router() -> InlineParallelismRouter {
        InlineParallelismRouter::new(CollectiveTiming::new(World::azure(8)))
    }

    fn dims(experts: usize, tokens: usize, hidden: usize, f: f64) -> MoeDims {
        MoeDims {
            world: 8,
            global_experts: experts,
            tokens,
            k: 2,
            capacity_factor: f,
            model_dim: 2048,
            hidden_dim: hidden,
            weight_precision: Precision::F32,
        }
    }

    #[test]
    fn small_f_prefers_p2_large_f_prefers_p1() {
        // Table 5a setting: E2, S2K, V8K, sweep f.
        let r = router();
        assert_eq!(r.choose(&dims(2, 2048, 8192, 1.0)), Parallelism::P2);
        assert_eq!(r.choose(&dims(2, 2048, 8192, 16.0)), Parallelism::P1);
        // The choice flips exactly once as f grows.
        let mut flips = 0;
        let mut last = r.choose(&dims(2, 2048, 8192, 0.5));
        for i in 1..64 {
            let cur = r.choose(&dims(2, 2048, 8192, 0.5 * i as f64));
            if cur != last {
                flips += 1;
                last = cur;
            }
        }
        assert_eq!(flips, 1, "cost curves must cross exactly once");
    }

    #[test]
    fn large_tokens_prefer_p1() {
        // Table 5b: f1,E2,S16K,V2K and S32K → P1.
        let r = router();
        assert_eq!(r.choose(&dims(2, 16384, 2048, 1.0)), Parallelism::P1);
        assert_eq!(r.choose(&dims(2, 32768, 2048, 1.0)), Parallelism::P1);
    }

    #[test]
    fn large_hidden_dim_prefers_p2() {
        // Table 5b: f1,E4,S1K,V4K / V8K → P2 (parameter traffic hurts P1).
        let r = router();
        assert_eq!(r.choose(&dims(4, 1024, 4096, 1.0)), Parallelism::P2);
        assert_eq!(r.choose(&dims(4, 1024, 8192, 1.0)), Parallelism::P2);
    }

    #[test]
    fn fewer_experts_hurt_p2() {
        // Table 5b: f1,E4,S4K,V8K → P2 but f1,E1,S4K,V8K → P1, because
        // E = 1 forces 8-way sharding (8× token replication).
        let r = router();
        assert_eq!(r.choose(&dims(4, 4096, 8192, 1.0)), Parallelism::P2);
        assert_eq!(r.choose(&dims(1, 4096, 8192, 1.0)), Parallelism::P1);
    }

    #[test]
    fn unsharded_case_p1_has_no_param_cost_and_wins() {
        // E = W: no replication, P1 pays no parameter collective and
        // P2's "sharding" degenerates to 1 — identical costs, P1 picked
        // by tie-break.
        let r = router();
        let d = dims(8, 4096, 4096, 1.0);
        assert_eq!(d.shards(), 1);
        assert!((r.p1_cost(&d) - r.p2_cost(&d)).abs() < 1e-12);
        assert_eq!(r.choose(&d), Parallelism::P1);
    }

    #[test]
    fn bf16_weights_shift_the_p1_p2_crossover() {
        // bf16 storage halves P1's parameter all-gather bytes while
        // leaving token traffic (f32 activations) untouched, so the
        // crossover capacity factor must move *down*: some f that
        // picks P2 under f32 pricing flips to P1 under bf16.
        let r = router();
        let mut flipped_at = None;
        for i in 1..256 {
            let f = 0.125 * i as f64;
            let mut d = dims(2, 2048, 8192, f);
            let f32_choice = r.choose(&d);
            d.weight_precision = Precision::Bf16;
            let bf16_choice = r.choose(&d);
            if f32_choice == Parallelism::P2 && bf16_choice == Parallelism::P1 {
                flipped_at = Some(f);
                break;
            }
            assert_eq!(
                f32_choice, bf16_choice,
                "cheaper params can only ever favor P1, f = {f}"
            );
        }
        let f = flipped_at.expect("re-priced params must flip some decision");

        // The audit trail shows the flip: same dims, two precision
        // modes, two different winners — each record tagged with the
        // price book it used.
        let tel = tutel_obs::Telemetry::enabled();
        let mut d = dims(2, 2048, 8192, f);
        assert_eq!(r.choose_observed(&d, &tel), Parallelism::P2);
        d.weight_precision = Precision::Bf16;
        assert_eq!(r.choose_observed(&d, &tel), Parallelism::P1);
        let decisions = tel.decisions();
        assert_eq!(decisions.len(), 2);
        assert_eq!(decisions[0].precision.as_deref(), Some("f32"));
        assert_eq!(decisions[1].precision.as_deref(), Some("bf16"));
        assert_ne!(decisions[0].chosen, decisions[1].chosen);
    }

    #[test]
    fn cost_of_matches_choose() {
        let r = router();
        for f in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let d = dims(2, 2048, 8192, f);
            let best = r.choose(&d);
            assert!(r.cost_of(best, &d) <= r.cost_of(Parallelism::P1, &d) + 1e-15);
            assert!(r.cost_of(best, &d) <= r.cost_of(Parallelism::P2, &d) + 1e-15);
        }
    }
}
