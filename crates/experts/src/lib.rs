//! Expert FFNs and switchable parallelism for the tutel-rs MoE stack
//! (Section 3.2 of the Tutel paper).
//!
//! Provides:
//!
//! * [`ExpertsBlock`] — the batched two-layer feed-forward network
//!   (`fflayer`) computed per local expert, forward and backward;
//! * [`ExpertPlacement`] — the `count_per_node` distribution control of
//!   Figure 17 (positive: experts per GPU; negative: GPUs per expert);
//! * [`ShardedExpertParams`] — the ZeRO-style parameter placement that
//!   both parallelism strategies share, making them switchable at zero
//!   migration cost;
//! * [`p1_forward`] / [`p2_forward`] — functional implementations of
//!   Switchable Expert + Data Parallelism (P1: all-gather parameters,
//!   keep tokens put) and Switchable Expert + Model Parallelism (P2:
//!   replicate tokens, keep parameter slices put);
//! * [`InlineParallelismRouter`] — the O(1) cost-function router that
//!   picks P1 or P2 each iteration from communication volume alone.

mod ffn;
mod placement;
mod router;
mod sharded;

pub use ffn::ExpertsBlock;
pub use placement::ExpertPlacement;
pub use router::{InlineParallelismRouter, MoeDims, Parallelism};
pub use sharded::{p1_forward, p2_forward, ShardedExpertParams};
